#!/usr/bin/env python3
"""Open-loop Poisson load generator for the localization service.

A thin CLI over :func:`repro.serve.loadgen.run_open_loop`, meant to run
as its **own process** so the sender's clock and JSON work never share a
GIL with the server, router, or bench harness — a load generator that
competes with the system under test for one interpreter lock is a
closed loop in disguise.

Feature rows come from a ``.npy`` file (``--features``, 2-D float
array), or are drawn at random when only ``--n-features`` is given —
random rows are fine for latency work because the kernels are
data-oblivious.  The report prints as one JSON object on stdout, so a
parent bench can ``subprocess.run(...)`` this script and parse the
result.

Usage::

    PYTHONPATH=src python scripts/serve_load.py \
        --host 127.0.0.1 --port 8790 --rate 600 --requests 4000 \
        --features rows.npy --json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.serve.loadgen import run_open_loop  # noqa: E402


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1", help="server or router host")
    parser.add_argument("--port", type=int, required=True, help="server or router port")
    parser.add_argument("--rate", type=float, required=True,
                        help="offered Poisson arrival rate (requests/second)")
    parser.add_argument("--requests", type=int, required=True,
                        help="measured request count (excludes warmup)")
    parser.add_argument("--clients", type=int, default=4,
                        help="TCP connections to spread requests over")
    parser.add_argument("--warmup", type=int, default=32,
                        help="unmeasured closed-loop priming requests")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed of the arrival schedule")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline forwarded to the server")
    parser.add_argument("--inference", default=None,
                        choices=["independent", "crf"],
                        help="aggregation mode forwarded to the server")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="wait bound for the final stragglers (seconds)")
    parser.add_argument("--features", metavar="ROWS.npy", default=None,
                        help="2-D float array of feature rows to cycle through")
    parser.add_argument("--n-features", type=int, default=None,
                        help="draw 64 random rows of this width instead")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as one JSON line")
    args = parser.parse_args()
    if (args.features is None) == (args.n_features is None):
        parser.error("exactly one of --features / --n-features is required")
    return args


def load_rows(args: argparse.Namespace) -> np.ndarray:
    if args.features is not None:
        rows = np.load(args.features)
        if rows.ndim != 2 or rows.shape[0] < 1:
            raise SystemExit(f"--features must be a non-empty 2-D array, "
                             f"got shape {rows.shape}")
        return rows
    return np.random.default_rng(args.seed).normal(
        size=(64, args.n_features)
    )


def main() -> int:
    args = parse_args()
    rows = load_rows(args)
    report = run_open_loop(
        args.host,
        args.port,
        rows,
        rate_rps=args.rate,
        n_requests=args.requests,
        clients=args.clients,
        deadline_ms=args.deadline_ms,
        inference=args.inference,
        warmup=args.warmup,
        seed=args.seed,
        timeout=args.timeout,
    )
    if args.json:
        print(json.dumps(report))
    else:
        latency = report["latency_ms"]
        print(f"offered {report['offered_rps']} rps, "
              f"achieved {report['achieved_rps']} rps, "
              f"completed {report['completed']}/{report['n_requests']}")
        print(f"latency ms: p50={latency.get('p50')} p95={latency.get('p95')} "
              f"p99={latency.get('p99')} max={latency.get('max')}")
        if report["errors"]:
            print(f"errors: {report['errors']}")
    return 0 if report["completed"] == report["n_requests"] else 1


if __name__ == "__main__":
    sys.exit(main())
