#!/usr/bin/env python3
"""CI smoke for the localization service, end to end through a real process.

Boots ``repro serve`` as a subprocess on an ephemeral port, fires a block
of concurrent ``localize`` requests through :class:`repro.serve.ServeClient`,
and asserts the operational claims the serving layer makes:

* every request is answered, and answered within its deadline
  (p99 end-to-end latency under the per-request budget);
* the dynamic micro-batcher actually coalesces under concurrent load
  (server-side batch-size histogram mean > 1);
* with ``--workers N`` (N > 1) the shared-memory cluster comes up with
  every worker process healthy behind the router;
* SIGTERM drains gracefully: the process exits 0 after finishing
  admitted work (a cluster additionally unlinks its segments).

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py --profile profile.pkl --workers 2
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", required=True, metavar="PROFILE.pkl",
                        help="trained profile artifact to serve")
    parser.add_argument("--requests", type=int, default=50,
                        help="total concurrent localize requests")
    parser.add_argument("--clients", type=int, default=5,
                        help="concurrent client threads")
    parser.add_argument("--deadline-ms", type=float, default=5000.0,
                        help="per-request deadline every reply must beat")
    parser.add_argument("--workers", type=int, default=1,
                        help="serve worker processes (>1 exercises the "
                             "shared-memory cluster behind the router)")
    parser.add_argument("--startup-timeout", type=float, default=120.0)
    return parser.parse_args()


def start_server(
    profile: str, timeout: float, workers: int = 1
) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` and wait for its 'serving on' line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--profile", profile,
         "--port", "0", "--max-wait-ms", "10", "--workers", str(workers)],
        stdout=subprocess.PIPE,
        text=True,
        env=os.environ,
    )
    deadline = time.monotonic() + timeout
    port = None
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        print(f"server: {line.rstrip()}")
        match = re.match(r"serving on .*:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        raise SystemExit("server never reported its port")
    return proc, port


def main() -> int:
    from repro.serve import ServeClient

    args = parse_args()
    proc, port = start_server(args.profile, args.startup_timeout, args.workers)
    failures: list[str] = []
    try:
        with ServeClient("127.0.0.1", port) as client:
            health = client.health()
            n_features = health["n_features"]
            print(f"health: {health['status']}, model {health['model']['name']} "
                  f"({health['model']['etag'][:15]}…), {n_features} features")
            if args.workers > 1:
                router = health.get("router", {})
                print(f"router: {router.get('healthy_workers', 0)}/"
                      f"{router.get('n_workers', 0)} workers healthy")
                if router.get("n_workers") != args.workers:
                    failures.append(
                        f"router reports {router.get('n_workers')} workers, "
                        f"expected {args.workers}"
                    )
                if router.get("healthy_workers") != args.workers:
                    failures.append(
                        f"only {router.get('healthy_workers')} of "
                        f"{args.workers} workers healthy"
                    )

            rng = np.random.default_rng(0)
            rows = rng.normal(0.0, 1.0, size=(args.requests, n_features))
            per_client = args.requests // args.clients
            replies: list = []
            lock = threading.Lock()

            def drive(worker: int) -> None:
                with ServeClient("127.0.0.1", port) as c:
                    block = rows[worker * per_client:(worker + 1) * per_client]
                    got = c.localize_many(block, deadline_ms=args.deadline_ms)
                with lock:
                    replies.extend(got)

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(args.clients)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0

            leftovers = rows[args.clients * per_client:]
            if len(leftovers):
                replies.extend(
                    client.localize_many(leftovers, deadline_ms=args.deadline_ms)
                )

            latencies = sorted(r.elapsed_ms for r in replies)
            p99 = latencies[min(len(latencies) - 1,
                                int(0.99 * (len(latencies) - 1)))]
            mean_batch = float(np.mean([r.batch_size for r in replies]))
            snapshot = client.health()["metrics"]
            hist_mean = snapshot["histograms"]["serve_batch_size"]["mean"]
            print(
                f"{len(replies)} replies in {wall:.2f}s "
                f"({len(replies) / wall:.0f} req/s), p99 {p99:.1f} ms, "
                f"mean batch (replies) {mean_batch:.2f}, "
                f"mean batch (server hist) {hist_mean:.2f}"
            )

            if len(replies) != args.requests:
                failures.append(
                    f"expected {args.requests} replies, got {len(replies)}"
                )
            if p99 > args.deadline_ms:
                failures.append(
                    f"p99 {p99:.1f} ms exceeds deadline {args.deadline_ms} ms"
                )
            if hist_mean <= 1.0:
                failures.append(
                    f"batch-size histogram mean {hist_mean:.2f} <= 1 — "
                    "micro-batching never coalesced"
                )
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("server did not drain within 30s of SIGTERM")
            code = proc.wait()
    tail = proc.stdout.read() if proc.stdout else ""
    if tail.strip():
        print(f"server: {tail.strip()}")
    if code != 0:
        failures.append(f"server exited {code} after SIGTERM (expected 0)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("serve smoke PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
