#!/usr/bin/env python3
"""Fail CI when a re-measured benchmark regresses past the committed baseline.

Compares one benchmark's ``mean_seconds`` between the committed
``BENCH_pipeline.json`` and a freshly measured report (written by
``repro bench --phase1``).  Exit code 1 means the fresh timing exceeds
the committed one by more than ``--max-regression`` (default 25%) —
generous enough for shared-runner noise, tight enough to catch a real
perf loss in the training engine.

Usage::

    python scripts/check_bench_regression.py BENCH_pipeline.json BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys


def mean_seconds(path: str, name: str) -> float | None:
    """The named benchmark's mean from a ``repro bench`` report, if present."""
    with open(path) as handle:
        report = json.load(handle)
    entries = report.get("pytest_benchmarks")
    if not isinstance(entries, list):
        return None
    for entry in entries:
        if entry.get("name") == name:
            return float(entry["mean_seconds"])
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate a fresh benchmark timing against the committed one"
    )
    parser.add_argument("committed", help="baseline report (committed in-repo)")
    parser.add_argument("fresh", help="freshly measured report")
    parser.add_argument(
        "--benchmark",
        default="test_phase1_profile_training",
        help="benchmark name to compare (default: Phase-I training)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs the committed mean (default 0.25)",
    )
    args = parser.parse_args(argv)

    committed = mean_seconds(args.committed, args.benchmark)
    fresh = mean_seconds(args.fresh, args.benchmark)
    if committed is None:
        print(
            f"{args.benchmark} not in {args.committed}; nothing to gate against"
        )
        return 0
    if fresh is None:
        print(f"{args.benchmark} missing from {args.fresh}; did the run fail?")
        return 1

    limit = committed * (1.0 + args.max_regression)
    ok = fresh <= limit
    print(
        f"{args.benchmark}: committed {committed:.3f}s, fresh {fresh:.3f}s, "
        f"limit {limit:.3f}s -> {'OK' if ok else 'REGRESSION'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
