#!/usr/bin/env python3
"""Fail CI when a re-measured benchmark regresses past the committed baseline.

Compares benchmark timings between the committed
``BENCH_pipeline.json`` and a freshly measured report (written by
``repro bench --phase1`` / ``--phase2`` / ``--steady``).  Exit code 1
means a fresh timing exceeds the committed one by more than
``--max-regression`` (default 25%) — generous enough for shared-runner
noise, tight enough to catch a real perf loss.

``--benchmark`` accepts either a pytest-benchmark entry name (looked up
in the report's ``pytest_benchmarks`` list by its ``mean_seconds``) or a
dotted path into the report's nested sections, e.g.
``phase2.crf.batch_seconds`` or ``steady.steady_city10k_seconds``.  It
may be repeated; every named benchmark is gated and the worst outcome
wins.

``--slo NAME=LIMIT`` adds an *absolute* ceiling on a value in the fresh
report (same dotted-path addressing), independent of the committed
baseline — this is how the serving tier's latency objective is enforced
as a number, not a ratio: a slow committed run must not launder a slow
fresh run.

``--floor NAME=LIMIT`` is the mirror image: the fresh value must be at
*least* ``LIMIT``.  Quality metrics (the robustness campaign's nominal
hit@1) are gated this way so an accuracy collapse fails CI even though
it makes every timing gate happier.

Usage::

    python scripts/check_bench_regression.py BENCH_pipeline.json BENCH_fresh.json
    python scripts/check_bench_regression.py BENCH_pipeline.json BENCH_fresh.json \\
        --benchmark phase2.crf.batch_seconds --max-regression 0.5
    python scripts/check_bench_regression.py BENCH_pipeline.json BENCH_fresh.json \\
        --benchmark steady.steady_city10k_seconds \\
        --benchmark steady.eps_city10k_seconds
    python scripts/check_bench_regression.py BENCH_pipeline.json BENCH_fresh.json \\
        --benchmark serve.latency_ms.p99 --slo serve.latency_ms.p99=50
    python scripts/check_bench_regression.py BENCH_pipeline.json BENCH_fresh.json \\
        --benchmark robustness.seconds_per_draw \\
        --floor robustness.hit1_nominal=0.3
"""

from __future__ import annotations

import argparse
import json
import sys


def mean_seconds(path: str, name: str) -> float | None:
    """The named benchmark's value from a ``repro bench`` report, if present.

    Names with dots resolve as a key path through the report's nested
    sections (``phase2.crf.batch_seconds``, ``serve.latency_ms.p99``);
    plain names are looked up in the ``pytest_benchmarks`` list by
    their ``mean_seconds``.
    """
    with open(path) as handle:
        report = json.load(handle)
    if "." in name:
        node = report
        for key in name.split("."):
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        return float(node) if isinstance(node, (int, float)) else None
    entries = report.get("pytest_benchmarks")
    if not isinstance(entries, list):
        return None
    for entry in entries:
        if entry.get("name") == name:
            return float(entry["mean_seconds"])
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate a fresh benchmark timing against the committed one"
    )
    parser.add_argument("committed", help="baseline report (committed in-repo)")
    parser.add_argument("fresh", help="freshly measured report")
    parser.add_argument(
        "--benchmark",
        action="append",
        default=None,
        help="benchmark name to gate; repeatable "
             "(default: Phase-I training)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs the committed mean (default 0.25)",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="NAME=LIMIT",
        help="absolute ceiling on a fresh-report value (dotted path), "
             "e.g. serve.latency_ms.p99=50; repeatable",
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=None,
        metavar="NAME=LIMIT",
        help="absolute floor on a fresh-report value (dotted path), "
             "e.g. robustness.hit1_nominal=0.3; repeatable",
    )
    args = parser.parse_args(argv)
    names = args.benchmark or ["test_phase1_profile_training"]

    worst = 0
    for flag, specs, ceiling in (
        ("--slo", args.slo or [], True),
        ("--floor", args.floor or [], False),
    ):
        for spec in specs:
            name, sep, limit_text = spec.partition("=")
            if not sep:
                print(f"{flag} {spec!r} is not NAME=LIMIT")
                return 2
            limit = float(limit_text)
            fresh = mean_seconds(args.fresh, name)
            if fresh is None:
                print(f"{name} missing from {args.fresh}; did the run fail?")
                worst = 1
                continue
            ok = fresh <= limit if ceiling else fresh >= limit
            kind = "SLO ceiling" if ceiling else "floor"
            bad = "SLO VIOLATION" if ceiling else "BELOW FLOOR"
            print(f"{name}: fresh {fresh:g}, {kind} {limit:g} -> {'OK' if ok else bad}")
            worst = max(worst, 0 if ok else 1)
    for name in names:
        committed = mean_seconds(args.committed, name)
        fresh = mean_seconds(args.fresh, name)
        if committed is None:
            print(f"{name} not in {args.committed}; nothing to gate against")
            continue
        if fresh is None:
            print(f"{name} missing from {args.fresh}; did the run fail?")
            worst = 1
            continue
        limit = committed * (1.0 + args.max_regression)
        ok = fresh <= limit
        print(
            f"{name}: committed {committed:.3f}s, fresh {fresh:.3f}s, "
            f"limit {limit:.3f}s -> {'OK' if ok else 'REGRESSION'}"
        )
        worst = max(worst, 0 if ok else 1)
    return worst


if __name__ == "__main__":
    sys.exit(main())
