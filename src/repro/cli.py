"""Command-line interface: ``python -m repro <command>``.

Commands mirror how a utility would operate the system:

* ``networks``    — list/describe the built-in evaluation networks;
* ``simulate``    — run an extended-period simulation, optionally with
  injected leaks, and print a hydraulic summary;
* ``generate``    — build a training dataset and save it to disk;
* ``train``       — train a profile model on a dataset and save it;
* ``localize``    — run Phase II on a simulated scenario with a saved
  profile;
* ``infer``       — Phase II on a simulated scenario comparing the
  aggregation modes: paper-greedy (``independent``) vs factor-graph
  message passing (``crf``), with BP diagnostics;
* ``experiment``  — run a paper-figure experiment and print its table;
* ``flood``       — predict flooding from specified leak events;
* ``stream``      — run the always-on streaming runtime on simulated
  live feeds: online trigger detection + localization + metrics.
* ``serve``       — run the localization service: an asyncio TCP
  JSON-lines server with dynamic micro-batching, a versioned model
  registry with hot-swap, and admission control / load shedding.
* ``verify``      — run the correctness sweep (``repro.verify``):
  physics-invariant oracles, differential oracles, golden snapshots,
  and deterministic property fuzzing.
* ``bench``       — time the scenario engine and the ``benchmarks/``
  perf suite, writing a ``BENCH_pipeline.json`` report.
"""

from __future__ import annotations

import argparse
import sys



def _add_networks(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser("networks", help="list/describe evaluation networks")
    parser.add_argument("--name", help="describe one network in detail")


def _add_simulate(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser("simulate", help="run an extended-period simulation")
    parser.add_argument("--network", default="epanet")
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument(
        "--leak",
        action="append",
        default=[],
        metavar="NODE:EC[:START_SLOT]",
        help="inject a leak, e.g. --leak J12:0.002:4 (repeatable)",
    )
    parser.add_argument("--write-inp", metavar="PATH", help="also write the INP file")


def _add_generate(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser("generate", help="generate a training dataset")
    parser.add_argument("--network", default="epanet")
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument(
        "--kind", choices=("single", "multi", "low-temperature"), default="multi"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine", choices=("sequential", "batched"), default="sequential",
        help="scenario engine; both produce bit-identical datasets "
             "(batched solves scenario chunks as stacked Newton lanes)",
    )
    parser.add_argument("--out", required=True, metavar="PATH.npz")


def _add_train(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser("train", help="train and save a profile model")
    parser.add_argument("--network", default="epanet")
    parser.add_argument("--dataset", metavar="PATH.npz", help="saved dataset; generated on the fly when omitted")
    parser.add_argument("--samples", type=int, default=1000, help="samples when generating")
    parser.add_argument(
        "--kind", choices=("single", "multi", "low-temperature"), default="multi"
    )
    parser.add_argument("--classifier", default="hybrid-rsl")
    parser.add_argument("--iot-percent", type=float, default=100.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, metavar="PROFILE.pkl")


def _add_localize(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "localize", help="localize a simulated failure with a saved profile"
    )
    parser.add_argument("--profile", required=True, metavar="PROFILE.pkl")
    parser.add_argument(
        "--kind", choices=("single", "multi", "low-temperature"), default="multi"
    )
    parser.add_argument("--sources", default="all",
                        choices=("iot", "iot+temp", "iot+human", "all"))
    parser.add_argument("--elapsed-slots", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)


def _add_infer(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "infer",
        help="compare aggregation modes (independent vs crf) on a scenario",
    )
    parser.add_argument("--profile", required=True, metavar="PROFILE.pkl")
    parser.add_argument(
        "--kind", choices=("single", "multi", "low-temperature"), default="multi"
    )
    parser.add_argument("--sources", default="all",
                        choices=("iot", "iot+temp", "iot+human", "all"))
    parser.add_argument("--elapsed-slots", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--inference", choices=("independent", "crf", "both"), default="both",
        help="aggregation mode(s) to run (default: both, side by side)",
    )
    parser.add_argument(
        "--pairwise-strength", type=float, default=None,
        help="override the CRF's Potts coupling along pipes",
    )
    parser.add_argument(
        "--clique-penalty-scale", type=float, default=None,
        help="override the CRF's human-report clique penalty scale",
    )


def _add_experiment(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser("experiment", help="run a paper-figure experiment")
    parser.add_argument(
        "figure",
        choices=(
            "fig02", "fig03", "fig05", "fig06", "fig07",
            "fig08", "fig09", "fig10", "fig11",
        ),
    )


def _add_isolate(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "isolate", help="shutdown plan for a failing node or link"
    )
    parser.add_argument("--network", default="wssc")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--node", help="failing junction")
    group.add_argument("--link", help="failing pipe")


def _add_resilience(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "resilience", help="resilience report, optionally under leaks"
    )
    parser.add_argument("--network", default="epanet")
    parser.add_argument(
        "--leak", action="append", default=[], metavar="NODE:EC",
        help="active leak (repeatable)",
    )
    parser.add_argument("--required-pressure", type=float, default=20.0)


def _add_flood(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser("flood", help="predict flooding from leak events")
    parser.add_argument("--network", default="wssc")
    parser.add_argument(
        "--leak", action="append", required=True, metavar="NODE:EC",
        help="burst location and size (repeatable)",
    )
    parser.add_argument("--hours", type=float, default=4.0)
    parser.add_argument("--cell-size", type=float, default=40.0)


def _add_stream(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "stream", help="online leak detection/localization on live feeds"
    )
    parser.add_argument("--network", default="epanet")
    parser.add_argument(
        "--preset",
        choices=("no-leak", "single-leak", "multi-leak", "cold-snap"),
        default="multi-leak",
    )
    parser.add_argument("--slots", type=int, default=24, help="slots per feed (15 min each)")
    parser.add_argument("--feeds", type=int, default=1, help="concurrent network feeds")
    parser.add_argument("--workers", type=int, default=1, help="localization worker threads")
    parser.add_argument("--dropout", type=float, default=0.0,
                        help="per-slot sensor dropout probability")
    parser.add_argument("--onset-slot", type=int, default=None,
                        help="failure onset slot (default: a third into the window)")
    parser.add_argument("--iot-percent", type=float, default=40.0)
    parser.add_argument("--classifier", default="hybrid-rsl")
    parser.add_argument("--train-samples", type=int, default=400,
                        help="Phase-I scenarios when no profile is given")
    parser.add_argument("--profile", metavar="PROFILE.pkl",
                        help="saved trained model (skips Phase I)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json-logs", action="store_true",
                        help="structured logs as JSON lines")


def _add_serve(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "serve", help="always-on localization service (TCP JSON lines)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7711,
                        help="bind port (0 = ephemeral; the bound port is printed)")
    parser.add_argument(
        "--profile", action="append", default=[], metavar="PROFILE.pkl",
        help="saved trained model to register (repeatable; the first one "
             "is activated). Trains on the fly when omitted.",
    )
    parser.add_argument("--network", default="epanet",
                        help="network for on-the-fly training")
    parser.add_argument("--classifier", default="hybrid-rsl")
    parser.add_argument("--iot-percent", type=float, default=100.0)
    parser.add_argument("--train-samples", type=int, default=400,
                        help="Phase-I scenarios when no profile is given")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch-size", type=int, default=8,
                        help="micro-batch dispatch threshold")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="micro-batch hold ceiling after the first request")
    parser.add_argument("--fixed-batching", action="store_true",
                        help="always hold partial batches the full "
                             "--max-wait-ms instead of scaling the hold "
                             "with the arrival-rate EWMA")
    parser.add_argument("--inference-workers", type=int, default=2,
                        help="thread-pool size for kernel calls")
    parser.add_argument("--workers", type=int, default=1,
                        help="serve worker processes; >1 publishes the "
                             "model(s) into shared memory and fronts the "
                             "workers with a consistent-hash router on "
                             "--port")
    parser.add_argument("--load-factor", type=float, default=1.25,
                        help="bounded-load spill threshold of the router "
                             "(multi-worker only)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="admission window (in-flight request ceiling)")
    parser.add_argument("--deadline-ms", type=float, default=2000.0,
                        help="default per-request deadline")
    parser.add_argument("--json-logs", action="store_true",
                        help="structured logs as JSON lines")


def _add_verify(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "verify",
        help="run the correctness sweep: invariants, differentials, goldens, fuzz",
    )
    parser.add_argument(
        "--network",
        action="append",
        default=[],
        help="verify one network (repeatable; default: the whole catalog)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized sweep: fewer scenarios, skip the accuracy golden",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-fuzz", action="store_true",
        help="skip the property-fuzzing pass",
    )
    parser.add_argument(
        "--update-golden", action="store_true",
        help="regenerate golden snapshots instead of failing against them",
    )
    parser.add_argument("--workers", type=int, default=4)


def _add_robustness(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "robustness",
        help="Monte Carlo robustness campaigns and localization-aware placement",
    )
    actions = parser.add_subparsers(dest="action", required=True)

    run = actions.add_parser(
        "run", help="sweep the perturbation axes and emit a robustness report"
    )
    run.add_argument("--network", default="epanet")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--workers", type=int, default=1,
        help="campaign process-pool width (bit-identical to serial)",
    )
    run.add_argument(
        "--quick", action="store_true",
        help="CI-sized sweep: trimmed axes and draw caps",
    )
    run.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the JSON report here",
    )
    run.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of the table",
    )

    report = actions.add_parser(
        "report", help="render a previously written robustness report"
    )
    report.add_argument("path", help="JSON report written by `robustness run`")

    place = actions.add_parser(
        "place", help="greedily add the sensors that most improve campaign hit@1"
    )
    place.add_argument("--network", default="epanet")
    place.add_argument("--add", type=int, default=2, metavar="N")
    place.add_argument("--seed", type=int, default=0)
    place.add_argument(
        "--quick", action="store_true",
        help="CI-sized evaluation sweep",
    )
    place.add_argument(
        "--iot-percent", type=float, default=10.0,
        help="starting k-medoids deployment penetration",
    )
    place.add_argument("--max-candidates", type=int, default=24)
    place.add_argument("--draws-per-cell", type=int, default=6)
    place.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the JSON placement trace here",
    )
    place.add_argument(
        "--json", action="store_true",
        help="print the JSON trace instead of the table",
    )


def _add_bench(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "bench", help="run the perf suite and write BENCH_pipeline.json"
    )
    parser.add_argument("--network", default="epanet")
    parser.add_argument(
        "--samples", type=int, default=200,
        help="scenario count for the dataset-generation timing",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workload and only the cheap pytest benchmarks",
    )
    parser.add_argument("--out", default="BENCH_pipeline.json", metavar="PATH")
    parser.add_argument(
        "--skip-pytest", action="store_true",
        help="only time the scenario engine, skip benchmarks/test_perf_*",
    )
    parser.add_argument(
        "--phase1", action="store_true",
        help="only run the Phase-I training benchmark and merge its timing "
             "into an existing report at --out (CI regression gate)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="only run the serving benchmark (multi-worker cluster + "
             "open-loop Poisson load) and merge it into --out",
    )
    parser.add_argument(
        "--serve-rate", type=float, default=None, metavar="RPS",
        help="offered Poisson arrival rate for --serve "
             "(default: 450, quick: 250)",
    )
    parser.add_argument(
        "--serve-workers", type=int, default=2,
        help="serve worker processes for --serve",
    )
    parser.add_argument(
        "--phase2", action="store_true",
        help="only run the Phase-II aggregation benchmark (CRF vs "
             "independent: batched latency + multi-leak accuracy) and "
             "merge it into --out",
    )
    parser.add_argument(
        "--steady", action="store_true",
        help="only benchmark the sparse Schur solver core (warm/cold "
             "steady solves, leak sweep, EPS) against the pre-PR "
             "coo_matrix+spsolve path on --network and merge it into "
             "--out (use --network city10k for the city-scale numbers)",
    )
    parser.add_argument(
        "--batched", action="store_true",
        help="only benchmark the batched (scenario-axis vectorized) "
             "dataset engine against the sequential engine on --network "
             "and merge it into --out",
    )
    parser.add_argument(
        "--robustness", action="store_true",
        help="only run the robustness campaign benchmark (wall time, "
             "seconds per draw, nominal hit@1, pass/fail) and merge it "
             "into --out",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AquaSCALE reproduction: leak localization for water networks",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_networks(sub)
    _add_simulate(sub)
    _add_generate(sub)
    _add_train(sub)
    _add_localize(sub)
    _add_infer(sub)
    _add_experiment(sub)
    _add_isolate(sub)
    _add_resilience(sub)
    _add_flood(sub)
    _add_stream(sub)
    _add_serve(sub)
    _add_verify(sub)
    _add_robustness(sub)
    _add_bench(sub)
    return parser


def _parse_leak(token: str, with_slot: bool = True):
    from .failures import LeakEvent

    parts = token.split(":")
    if len(parts) < 2:
        raise SystemExit(f"bad --leak {token!r}: expected NODE:EC[:START_SLOT]")
    node, ec = parts[0], float(parts[1])
    slot = int(parts[2]) if with_slot and len(parts) > 2 else 0
    return LeakEvent(location=node, size=ec, start_slot=slot)


# ----------------------------------------------------------------------
def cmd_networks(args) -> int:
    """List or describe the built-in networks."""
    from .networks import available_networks, build_network, large_networks

    if args.name:
        network = build_network(args.name)
        print(f"{network.name}:")
        for key, value in network.describe().items():
            print(f"  {key:12s} {value}")
        return 0
    for name in available_networks():
        network = build_network(name)
        counts = network.describe()
        print(
            f"{name:10s} nodes={counts['nodes']:4d} links={counts['links']:4d} "
            f"pumps={counts['pumps']} valves={counts['valves']} tanks={counts['tanks']}"
        )
    # City-scale networks are built on demand, never eagerly here.
    print(f"large (build-on-demand): {', '.join(large_networks())}")
    return 0


def cmd_simulate(args) -> int:
    """Run an EPS and print a hydraulic summary."""
    from .hydraulics import write_inp
    from .hydraulics.simulation import simulate
    from .networks import build_network

    network = build_network(args.network)
    step = network.options.hydraulic_timestep
    leaks = [
        _parse_leak(token).to_timed_leak(step) for token in args.leak
    ]
    results = simulate(network, duration=args.hours * 3600.0, leaks=leaks or None)
    pressures = results.pressure[:, [results.node_column(j) for j in network.junction_names()]]
    print(f"simulated {results.n_timesteps} steps of {step:.0f}s on {network.name}")
    print(f"  junction pressure: min={pressures.min():.1f} "
          f"mean={pressures.mean():.1f} max={pressures.max():.1f} m")
    loss = results.total_water_loss()
    if loss > 0:
        print(f"  water lost to leaks: {loss:.1f} m^3")
    if args.write_inp:
        write_inp(network, args.write_inp)
        print(f"  wrote {args.write_inp}")
    return 0


def cmd_generate(args) -> int:
    """Generate a training dataset and save it."""
    from .datasets import generate_dataset, save_dataset
    from .networks import build_network

    network = build_network(args.network)
    dataset = generate_dataset(
        network, args.samples, kind=args.kind, seed=args.seed,
        engine=args.engine,
    )
    save_dataset(dataset, args.out)
    print(
        f"wrote {args.out}: {dataset.n_samples} samples x "
        f"{dataset.X_candidates.shape[1]} candidate features"
    )
    return 0


def cmd_train(args) -> int:
    """Train a profile model and save it."""
    from .core import AquaScale
    from .datasets import generate_dataset, load_dataset, save_profile
    from .networks import build_network

    network = build_network(args.network)
    model = AquaScale(
        network,
        iot_percent=args.iot_percent,
        classifier=args.classifier,
        seed=args.seed,
    )
    if args.dataset:
        dataset = load_dataset(args.dataset)
    else:
        dataset = generate_dataset(
            network, args.samples, kind=args.kind, seed=args.seed
        )
    model.train(dataset=dataset)
    save_profile(model, args.out)
    print(
        f"wrote {args.out}: {args.classifier} profile, "
        f"{len(model.sensors)} sensors ({args.iot_percent:.0f}% IoT)"
    )
    return 0


def cmd_localize(args) -> int:
    """Localize a simulated failure with a saved profile."""
    from .datasets import load_profile
    from .failures import ScenarioGenerator

    model = load_profile(args.profile)
    generator = ScenarioGenerator(model.network, seed=args.seed)
    if args.kind == "single":
        scenario = generator.single_failure()
    elif args.kind == "multi":
        scenario = generator.multi_failure()
    else:
        scenario = generator.low_temperature_failure()
    result = model.localize_scenario(
        scenario, elapsed_slots=args.elapsed_slots, sources=args.sources
    )
    print(f"ground truth : {sorted(scenario.leak_nodes)}")
    print(f"predicted    : {sorted(result.leak_nodes)}")
    print("top suspects :")
    for name, probability in result.top_suspects(5):
        print(f"  {name:8s} {probability:.3f}")
    return 0


def cmd_infer(args) -> int:
    """Run one scenario through the selected aggregation mode(s)."""
    from dataclasses import replace

    from .datasets import load_profile
    from .failures import ScenarioGenerator

    model = load_profile(args.profile)
    overrides = {}
    if args.pairwise_strength is not None:
        overrides["pairwise_strength"] = args.pairwise_strength
    if args.clique_penalty_scale is not None:
        overrides["clique_penalty_scale"] = args.clique_penalty_scale
    if overrides:
        model.engine.configure_crf(replace(model.engine.crf_config, **overrides))
    generator = ScenarioGenerator(model.network, seed=args.seed)
    if args.kind == "single":
        scenario = generator.single_failure()
    elif args.kind == "multi":
        scenario = generator.multi_failure()
    else:
        scenario = generator.low_temperature_failure()
    modes = (
        ("independent", "crf") if args.inference == "both" else (args.inference,)
    )
    print(f"ground truth : {sorted(scenario.leak_nodes)}")
    for mode in modes:
        result = model.localize_scenario(
            scenario,
            elapsed_slots=args.elapsed_slots,
            sources=args.sources,
            inference=mode,
        )
        print(f"[{mode}]")
        print(f"  predicted : {sorted(result.leak_nodes)}")
        print(f"  energy    : {result.energy:.3f}")
        if mode == "crf":
            status = "converged" if result.bp_converged else "hit max-iters"
            print(f"  bp        : {result.bp_iterations} sweep(s), {status}")
        print("  top suspects:")
        for name, probability in result.top_suspects(5):
            print(f"    {name:8s} {probability:.3f}")
    return 0


def cmd_experiment(args) -> int:
    """Run a paper-figure experiment and print its table."""
    import importlib

    modules = {
        "fig02": "fig02_pressure_profiles",
        "fig03": "fig03_breaks_vs_temperature",
        "fig05": "fig05_networks",
        "fig06": "fig06_ml_comparison",
        "fig07": "fig07_hybrid_comparison",
        "fig08": "fig08_wssc_surface",
        "fig09": "fig09_coarseness",
        "fig10": "fig10_max_leaks",
        "fig11": "fig11_flood",
    }
    module = importlib.import_module(f"repro.experiments.{modules[args.figure]}")
    result = module.run()
    result.print_report()
    return 0


def cmd_flood(args) -> int:
    """Predict flooding from the given leak events."""
    from .flood import predict_flood
    from .networks import build_network

    network = build_network(args.network)
    events = [_parse_leak(token, with_slot=False) for token in args.leak]
    dem, flood = predict_flood(
        network, events, duration=args.hours * 3600.0, cell_size=args.cell_size
    )
    print(f"DEM {dem.shape[0]} x {dem.shape[1]} cells at {dem.cell_size:.0f} m")
    print(f"released : {flood.total_inflow_volume:.0f} m^3")
    print(f"max depth: {flood.max_depth.max():.3f} m")
    print(f"flooded  : {flood.flooded_area(dem.cell_area, 0.01):.0f} m^2 (H > 1 cm)")
    return 0


def cmd_isolate(args) -> int:
    """Print the shutdown plan isolating a failing component."""
    from .analysis import IsolationAnalyzer
    from .networks import build_network

    network = build_network(args.network)
    analyzer = IsolationAnalyzer(network)
    if args.node:
        plan = analyzer.shutdown_plan_for_node(args.node)
    else:
        plan = analyzer.shutdown_plan_for_link(args.link)
    print(f"target            : {plan.target}")
    print(f"valves to close   : {sorted(plan.valves_to_close) or '(none: unbounded segment)'}")
    print(f"demand interrupted: {plan.demand_lost * 1000:.1f} L/s")
    print(f"customers affected: {plan.customers_affected}")
    if plan.contains_source:
        print("WARNING: the shutdown contains a source — zone-wide outage")
    return 0


def cmd_resilience(args) -> int:
    """Print a resilience report, optionally under leaks."""
    from .analysis import resilience_report
    from .failures import events_to_emitters
    from .hydraulics import GGASolver
    from .networks import build_network

    network = build_network(args.network)
    events = [_parse_leak(token, with_slot=False) for token in args.leak]
    solver = GGASolver(network)
    solution = solver.solve(
        emitters=events_to_emitters(events) if events else None
    )
    report = resilience_report(
        network, solution, required_pressure=args.required_pressure
    )
    print(f"todini index          : {report.todini_index:.3f}")
    print(f"min junction pressure : {report.min_pressure:.1f} m")
    print(f"pressure-deficit nodes: {report.pressure_deficit_nodes}")
    print(f"supply ratio          : {report.supply_ratio:.3f}")
    print(f"leak flow             : {report.total_leak_flow * 1000:.1f} L/s")
    return 0


def cmd_stream(args) -> int:
    """Run the streaming runtime on simulated live feeds."""
    import time

    from .platform import AquaScaleWorkflow
    from .stream import get_stream_logger

    if args.profile:
        from .datasets import load_profile

        core = load_profile(args.profile)
        network = core.network
        workflow = AquaScaleWorkflow(
            network,
            iot_percent=core.iot_percent,
            classifier=core.classifier,
            seed=args.seed,
        )
        workflow.core = core  # reuse the already-trained core
        print(f"loaded profile for {network.name}: {len(core.sensors)} sensors")
    else:
        from .networks import build_network

        network = build_network(args.network)
        workflow = AquaScaleWorkflow(
            network,
            iot_percent=args.iot_percent,
            classifier=args.classifier,
            seed=args.seed,
        )
        print(
            f"training {args.classifier} profile on {network.name} "
            f"({args.train_samples} scenarios, {len(workflow.core.sensors)} "
            "sensors) ..."
        )
        t0 = time.perf_counter()
        workflow.train(n_train=args.train_samples, kind="multi")
        print(f"  Phase I done in {time.perf_counter() - t0:.1f}s")

    report = workflow.run_stream(
        n_slots=args.slots,
        preset=args.preset,
        feeds=args.feeds,
        workers=args.workers,
        dropout=args.dropout,
        onset_slot=args.onset_slot,
        logger=get_stream_logger(json_lines=args.json_logs),
    )

    print(
        f"streamed {args.slots} slots x {args.feeds} feed(s) on {network.name} "
        f"({args.workers} worker(s), dropout {args.dropout:.0%})"
    )
    if not report.events:
        print("no triggers fired")
    for event in report.events:
        delay = (
            f"{event.detection_delay} slot(s) after onset"
            if event.detection_delay is not None
            else "FALSE TRIGGER"
        )
        leaks = ", ".join(event.leak_nodes) if event.leak_nodes else "(none)"
        print(
            f"[{event.feed_id}] trigger at slot {event.trigger_slot} "
            f"(onset est. {event.onset_slot}, {delay})"
        )
        print(
            f"  localized: {leaks}  "
            f"[{event.localization_latency * 1000:.0f} ms, "
            f"{event.masked_sensors} masked sensor(s)]"
        )
        if event.inference is not None and not event.false_trigger:
            suspects = ", ".join(
                f"{name}={p:.2f}" for name, p in event.inference.top_suspects(3)
            )
            print(f"  top suspects: {suspects}")
    print("metrics:")
    snapshot = report.metrics
    for name, value in snapshot["counters"].items():
        print(f"  {name:32s} {value:g}")
    for name, value in snapshot["gauges"].items():
        print(f"  {name:32s} {value:g}")
    for name, summary in snapshot["histograms"].items():
        if summary.get("count", 0) == 0:
            print(f"  {name:32s} (no observations)")
            continue
        print(
            f"  {name:32s} count={summary['count']:g} mean={summary['mean']:.4g} "
            f"p95={summary['p95']:.4g} max={summary['max']:.4g}"
        )
    return 0


def _bench_phase1(args) -> int:
    """Run only the Phase-I training benchmark and merge it into --out.

    The CI bench-smoke job uses this to re-measure
    ``test_phase1_profile_training`` without paying for the full perf
    suite; the refreshed entry replaces its row in an existing report so
    the committed baseline's other timings survive.
    """
    import json
    import subprocess
    import sys as _sys
    import tempfile
    from pathlib import Path

    target = "benchmarks/test_perf_pipeline.py::test_phase1_profile_training"
    if not Path(target.split("::")[0]).exists():
        print(f"missing {target}; run from the repo root")
        return 2
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        bench_json = tmp.name
    print(f"running {target} ...")
    proc = subprocess.run(
        [_sys.executable, "-m", "pytest", "-q", target,
         f"--benchmark-json={bench_json}"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print(proc.stdout[-2000:])
        print(proc.stderr[-2000:])
        Path(bench_json).unlink(missing_ok=True)
        return 1
    with open(bench_json) as handle:
        raw = json.load(handle)
    Path(bench_json).unlink(missing_ok=True)
    entries = [
        {
            "name": b["name"],
            "mean_seconds": round(b["stats"]["mean"], 6),
            "stddev_seconds": round(b["stats"]["stddev"], 6),
            "rounds": b["stats"]["rounds"],
        }
        for b in raw.get("benchmarks", [])
    ]
    out = Path(args.out)
    report = json.loads(out.read_text()) if out.exists() else {}
    existing = report.get("pytest_benchmarks")
    if not isinstance(existing, list):
        existing = []
    by_name = {b.get("name"): i for i, b in enumerate(existing)}
    for entry in entries:
        if entry["name"] in by_name:
            existing[by_name[entry["name"]]] = entry
        else:
            existing.append(entry)
    report["pytest_benchmarks"] = existing
    out.write_text(json.dumps(report, indent=2) + "\n")
    for entry in entries:
        print(f"{entry['name']}: {entry['mean_seconds']:.3f}s (merged into {out})")
    return 0


#: The serving SLO this repo commits to: p99 end-to-end latency, ms.
SERVE_SLO_P99_MS = 50.0


def _bench_serve(args) -> int:
    """Measure open-loop serving latency/throughput and merge into --out.

    Trains a small profile, hosts it on a multi-process cluster (shared
    -memory model, consistent-hash router), and offers **Poisson**
    traffic at a stated rate with the open-loop generator — arrivals do
    not wait for earlier replies, and latency is measured from each
    request's *scheduled* arrival on a monotonic clock, so the p99 is
    free of the closed-loop coordinated-omission bias.  The report
    records the queue-wait vs kernel-time split alongside the SLO
    verdict.
    """
    import json
    import os
    import subprocess
    import tempfile
    from pathlib import Path

    import numpy as np

    from .core import AquaScale
    from .datasets import generate_dataset
    from .networks import build_network
    from .serve import ServeConfig, start_cluster_in_background
    from .serve.loadgen import run_open_loop

    network = build_network(args.network)
    workers = max(1, args.serve_workers)
    rate = args.serve_rate or (250.0 if args.quick else 450.0)
    n_requests = 600 if args.quick else 4000
    dataset = generate_dataset(
        network, 40 if args.quick else 120, kind="multi", seed=42
    )
    model = AquaScale(network, iot_percent=100.0, classifier="logistic", seed=0)
    model.train(dataset=dataset)
    rows = dataset.features_for(model.sensors)
    config = ServeConfig(
        max_batch_size=32, max_wait_ms=5.0, inference_workers=2, max_pending=256
    )
    loadgen_script = (
        Path(__file__).resolve().parent.parent.parent / "scripts" / "serve_load.py"
    )
    print(
        f"offering {rate:.0f} req/s Poisson x {n_requests} requests at "
        f"{workers} workers ({model.classifier} profile on {network.name}) ..."
    )
    with start_cluster_in_background(
        model, n_workers=workers, config=config
    ) as handle:
        if loadgen_script.exists():
            # The load generator gets its own process: a sender sharing
            # this interpreter's GIL with the router would throttle its
            # own arrivals and re-introduce the closed-loop bias.
            with tempfile.TemporaryDirectory() as tmp:
                rows_path = os.path.join(tmp, "rows.npy")
                np.save(rows_path, np.asarray(rows, dtype=float))
                proc = subprocess.run(
                    [
                        sys.executable,
                        str(loadgen_script),
                        "--port", str(handle.port),
                        "--rate", str(rate),
                        "--requests", str(n_requests),
                        "--clients", "4",
                        "--warmup", "64",
                        "--seed", "42",
                        "--deadline-ms", "60000",
                        "--features", rows_path,
                        "--json",
                    ],
                    capture_output=True,
                    text=True,
                    timeout=600,
                )
                if proc.returncode not in (0, 1):
                    raise SystemExit(
                        f"serve_load.py failed (exit {proc.returncode}):\n"
                        f"{proc.stderr}"
                    )
                load = json.loads(proc.stdout.strip().splitlines()[-1])
        else:  # pragma: no cover - installed without scripts/
            load = run_open_loop(
                "127.0.0.1",
                handle.port,
                rows,
                rate_rps=rate,
                n_requests=n_requests,
                clients=4,
                deadline_ms=60_000.0,
                warmup=64,
                seed=42,
            )
    p99 = load["latency_ms"].get("p99", float("inf"))
    section = {
        "network": args.network,
        "workers": workers,
        "max_batch_size_policy": config.max_batch_size,
        "slo_ms": SERVE_SLO_P99_MS,
        "slo_met": bool(p99 < SERVE_SLO_P99_MS and not load["errors"]),
        **load,
    }
    out = Path(args.out)
    report = json.loads(out.read_text()) if out.exists() else {}
    report["serve"] = section
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"serve: offered {section['offered_rps']} req/s, achieved "
        f"{section['achieved_rps']} req/s, p99 {p99:.1f} ms "
        f"(queue p99 {section['queue_wait_ms'].get('p99', 0):.1f} ms, "
        f"kernel p99 {section['kernel_ms'].get('p99', 0):.1f} ms), "
        f"SLO {'met' if section['slo_met'] else 'MISSED'} "
        f"(merged into {out})"
    )
    return 0


def _bench_phase2(args) -> int:
    """Measure CRF-vs-independent aggregation and merge it into --out.

    Runs the multi-leak golden workload
    (:data:`repro.verify.golden.MULTI_ACCURACY_CONFIG`): one trained
    profile, one test batch with weather + human observations, then
    batched Phase II in both aggregation modes.  Records each mode's
    batch latency and multi-leak accuracy so the CRF's accuracy win and
    its message-passing cost are pinned in the committed report.
    """
    import json
    import time
    from pathlib import Path

    import numpy as np

    from .core import AquaScale
    from .datasets import generate_dataset
    from .inference import CRFConfig
    from .networks import build_network
    from .verify.golden import MULTI_ACCURACY_CONFIG

    config = dict(MULTI_ACCURACY_CONFIG)
    if args.quick:
        config["n_train"] = 60
        config["n_test"] = 15
    network = build_network(args.network)
    print(
        f"training {config['classifier']} profile on {network.name} "
        f"({config['n_train']} multi-leak scenarios) ..."
    )
    model = AquaScale(
        network,
        iot_percent=config["iot_percent"],
        classifier=config["classifier"],
        seed=config["seed"],
        gamma=config["gamma"],
        elapsed_slots=config["elapsed_slots"],
        crf_config=CRFConfig(**config["crf"]),
    )
    model.train(
        n_train=config["n_train"],
        kind=config["kind"],
        max_events=config["max_events"],
    )
    test = generate_dataset(
        network,
        config["n_test"],
        kind=config["kind"],
        seed=config["seed"] + 1,
        elapsed_slots=config["elapsed_slots"],
        max_events=config["max_events"],
    )
    rows = test.features_for(model.sensors)
    weather = [model.observations.weather_for(s) for s in test.scenarios]
    human = [
        model.observations.human_for(s, config["elapsed_slots"])
        for s in test.scenarios
    ]

    def best_of(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    section: dict = {
        "network": args.network,
        "batch_rows": int(rows.shape[0]),
        "kind": config["kind"],
        "crf_config": dict(config["crf"]),
    }
    results: dict[str, list] = {}
    for mode in ("independent", "crf"):
        print(f"timing localize_batch({rows.shape[0]} rows, inference={mode!r}) ...")
        seconds = best_of(
            lambda m=mode: results.__setitem__(
                m, model.localize_batch(rows, weather, human, inference=m)
            )
        )
        accuracy = float(
            model.evaluate(test, sources=config["sources"], inference=mode)
        )
        section[mode] = {
            "batch_seconds": round(seconds, 4),
            "per_row_ms": round(seconds / rows.shape[0] * 1000.0, 3),
            "accuracy": round(accuracy, 4),
        }
    crf_results = results["crf"]
    section["crf"]["bp_iterations_mean"] = round(
        float(np.mean([r.bp_iterations for r in crf_results])), 1
    )
    section["crf"]["bp_all_converged"] = bool(
        all(r.bp_converged for r in crf_results)
    )
    section["crf"]["overhead_x"] = round(
        section["crf"]["batch_seconds"] / section["independent"]["batch_seconds"], 2
    )
    out = Path(args.out)
    report = json.loads(out.read_text()) if out.exists() else {}
    report["phase2"] = section
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"phase2: independent {section['independent']['batch_seconds']:.3f}s "
        f"(acc {section['independent']['accuracy']:.4f}) vs "
        f"crf {section['crf']['batch_seconds']:.3f}s "
        f"(acc {section['crf']['accuracy']:.4f}, "
        f"{section['crf']['overhead_x']}x) (merged into {out})"
    )
    return 0


def _bench_steady(args) -> int:
    """Benchmark the sparse Schur core vs the pre-PR path and merge into --out.

    Times the same four hydraulic workloads through the cached-pattern
    Schur core (``linear_solver="sparse"``) and the pre-PR per-iteration
    ``coo_matrix``+``spsolve`` path (``linear_solver="legacy"``):

    - warm: repeated steady solve on a persistent solver, warm-started
      from the baseline — the regime the localization pipeline lives in
      (thousands of forward solves per network);
    - cold: first solve on a fresh solver (sparsity structure already
      cached on the network after the initial build);
    - sweep: warm-started random leak-emitter scenarios;
    - EPS: an extended-period simulation with a timed leak, reported
      per hydraulic step so quick and full runs stay comparable.

    The flat gate keys merged under the report's ``steady`` section are
    ``steady_<net>_seconds`` / ``eps_<net>_seconds`` (sparse core) and
    their ``*_legacy_seconds`` counterparts (pre-PR path); the full
    per-mode breakdown lands under ``steady.<net>``.
    """
    import json
    import time
    from pathlib import Path

    import numpy as np

    from .hydraulics import GGASolver, TimedLeak, simulate
    from .networks import build_network
    from .verify.streams import case_streams

    netkey = args.network.replace("-", "").replace("_", "")
    print(f"building {args.network} ...")
    t0 = time.perf_counter()
    network = build_network(args.network)
    build_seconds = time.perf_counter() - t0
    junctions = network.junction_names()
    warm_reps = 5 if args.quick else 30
    n_scenarios = 5 if args.quick else 30
    eps_duration = (2.0 if args.quick else 6.0) * 3600.0
    eps_step = 900.0

    leak_sets = []
    for child in case_streams(1234, n_scenarios):
        rng = np.random.default_rng(child)
        chosen = rng.choice(len(junctions), size=min(3, len(junctions)),
                            replace=False)
        leak_sets.append(
            {junctions[int(i)]: (float(rng.uniform(5e-4, 4e-3)), 0.5)
             for i in chosen}
        )
    eps_leak = TimedLeak(node=junctions[0], emitter_coefficient=1e-3,
                         start_time=eps_duration / 2)

    def measure(mode: str) -> dict:
        print(f"  timing linear_solver={mode!r} ...")
        solver = GGASolver(network, linear_solver=mode)
        t0 = time.perf_counter()
        baseline = solver.solve()
        cold = time.perf_counter() - t0
        samples = []
        for _ in range(warm_reps):
            t0 = time.perf_counter()
            solver.solve(warm_start=baseline)
            samples.append(time.perf_counter() - t0)
        # Median, not mean: every rep does identical work, so spread is
        # pure scheduler/allocator noise and the median is the stable
        # per-solve figure to gate regressions against.
        warm = float(np.median(samples))
        t0 = time.perf_counter()
        for emitters in leak_sets:
            solver.solve(emitters=emitters, warm_start=baseline)
        sweep = (time.perf_counter() - t0) / len(leak_sets)
        t0 = time.perf_counter()
        results = simulate(network, duration=eps_duration, timestep=eps_step,
                           leaks=[eps_leak], linear_solver=mode)
        eps_total = time.perf_counter() - t0
        entry = {
            "cold_solve_seconds": round(cold, 6),
            "warm_solve_seconds": round(warm, 6),
            "sweep_solve_seconds": round(sweep, 6),
            "eps_step_seconds": round(eps_total / results.n_timesteps, 6),
            "eps_total_seconds": round(eps_total, 6),
            "eps_steps": results.n_timesteps,
        }
        stats = solver.schur_stats
        if stats is not None:
            entry["schur_stats"] = {
                "factorizations": stats.factorizations,
                "reuse_solves": stats.reuse_solves,
                "pcg_solves": stats.pcg_solves,
                "pcg_iterations": stats.pcg_iterations,
                "direct_solves": stats.direct_solves,
                "assemblies": stats.assemblies,
            }
        return entry

    sparse = measure("sparse")
    legacy = measure("legacy")
    detail = {
        "network": args.network,
        "n_junctions": len(junctions),
        "n_links": len(network.links),
        "build_seconds": round(build_seconds, 3),
        "warm_reps": warm_reps,
        "n_scenarios": n_scenarios,
        "eps_duration_seconds": eps_duration,
        "sparse": sparse,
        "legacy": legacy,
    }
    out = Path(args.out)
    report = json.loads(out.read_text()) if out.exists() else {}
    section = report.get("steady")
    if not isinstance(section, dict):
        section = {}
    section["notes"] = (
        "steady_* keys are seconds per warm steady solve; eps_* keys are "
        "seconds per EPS hydraulic step; *_legacy_* keys run the pre-PR "
        "coo_matrix+spsolve path on the same workload"
    )
    section[f"steady_{netkey}_seconds"] = sparse["warm_solve_seconds"]
    section[f"steady_{netkey}_legacy_seconds"] = legacy["warm_solve_seconds"]
    section[f"eps_{netkey}_seconds"] = sparse["eps_step_seconds"]
    section[f"eps_{netkey}_legacy_seconds"] = legacy["eps_step_seconds"]
    section[f"steady_{netkey}_speedup_x"] = round(
        legacy["warm_solve_seconds"] / sparse["warm_solve_seconds"], 1
    )
    section[netkey] = detail
    report["steady"] = section
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"steady {args.network}: warm {sparse['warm_solve_seconds'] * 1e3:.2f}ms"
        f" vs legacy {legacy['warm_solve_seconds'] * 1e3:.2f}ms "
        f"({section[f'steady_{netkey}_speedup_x']}x); "
        f"eps/step {sparse['eps_step_seconds'] * 1e3:.2f}ms vs "
        f"{legacy['eps_step_seconds'] * 1e3:.2f}ms (merged into {out})"
    )
    return 0


def _bench_batched(args) -> int:
    """Benchmark the batched dataset engine vs sequential and merge into --out.

    Times ``generate_dataset`` twice on the same fixed-seed workload —
    ``engine="sequential"`` (one Newton solve per scenario/candidate) and
    ``engine="batched"`` (scenario-axis stacked lanes through
    ``BatchedGGASolver``) — and asserts the feature matrices are
    bit-identical, which is the batched engine's contract (see
    ``repro.verify.differential.diff_batched_vs_sequential``).

    The gate keys merged under the report's ``batched`` section are
    ``sequential_seconds`` / ``batched_seconds`` (dotted-path gated in CI
    via ``scripts/check_bench_regression.py``).  The speedup is reported
    honestly: on dense networks every lane still pays its own LAPACK
    ``dposv`` factorization (bit-identity forbids factor sharing), so the
    win comes from amortizing Python/Newton overhead across lanes, not
    from a wider solve — see docs/performance.md.
    """
    import json
    import time
    from pathlib import Path

    import numpy as np

    from .datasets import generate_dataset
    from .networks import build_network

    network = build_network(args.network)
    n_samples = min(args.samples, 50) if args.quick else args.samples

    # Warm imports/caches so the timings measure hydraulics, not startup.
    generate_dataset(network, 10, kind="multi", seed=7)
    generate_dataset(network, 10, kind="multi", seed=7, engine="batched")

    def best_of(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    print(
        f"timing generate_dataset({args.network}, {n_samples}, kind='multi') "
        f"sequential vs batched ..."
    )
    seq_result = {}
    sequential_seconds = best_of(
        lambda: seq_result.setdefault(
            "ds", generate_dataset(network, n_samples, kind="multi", seed=42)
        )
    )
    bat_result = {}
    batched_seconds = best_of(
        lambda: bat_result.setdefault(
            "ds",
            generate_dataset(
                network, n_samples, kind="multi", seed=42, engine="batched"
            ),
        )
    )
    identical = bool(
        np.array_equal(
            seq_result["ds"].X_candidates, bat_result["ds"].X_candidates
        )
        and np.array_equal(seq_result["ds"].Y, bat_result["ds"].Y)
    )

    section = {
        "network": args.network,
        "n_samples": n_samples,
        "kind": "multi",
        "seed": 42,
        "sequential_seconds": round(sequential_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        # Per-scenario timings are workload-invariant, so the CI gate can
        # compare a --quick re-measure against the committed full run.
        "sequential_seconds_per_scenario": round(
            sequential_seconds / n_samples, 6
        ),
        "batched_seconds_per_scenario": round(batched_seconds / n_samples, 6),
        "speedup_x": round(sequential_seconds / batched_seconds, 2),
        "sequential_scenarios_per_second": round(
            n_samples / sequential_seconds, 1
        ),
        "batched_scenarios_per_second": round(n_samples / batched_seconds, 1),
        "projected_100k_minutes": round(
            100_000 * batched_seconds / n_samples / 60.0, 1
        ),
        "bit_identical": identical,
        "notes": (
            "same fixed-seed multi-leak workload through both engines; "
            "bit_identical asserts X/Y byte equality; dense networks pay "
            "per-lane dposv either way, so the speedup is Newton/Python "
            "overhead amortization (see docs/performance.md)"
        ),
    }
    out = Path(args.out)
    report = json.loads(out.read_text()) if out.exists() else {}
    report["batched"] = section
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"batched {args.network}: sequential {sequential_seconds:.3f}s vs "
        f"batched {batched_seconds:.3f}s ({section['speedup_x']}x, "
        f"{section['batched_scenarios_per_second']}/s, "
        f"bit-identical={identical}) (merged into {out})"
    )
    return 0


def _bench_robustness(args) -> int:
    """Run the robustness-campaign benchmark and merge it into --out.

    Times one full campaign sweep (quick axes under ``--quick``) on
    ``--network`` and commits wall time, a draw-normalized rate, the
    nominal cell's hit@1 and the report's pass/fail verdict — the CI
    bench-smoke job gates on ``seconds_per_draw`` (ratio) and
    ``hit1_nominal`` (floor).
    """
    import json
    import time
    from pathlib import Path

    from .robustness import run_campaign

    print(
        f"running {'quick ' if args.quick else ''}robustness campaign on "
        f"{args.network} (workers={args.workers}) ..."
    )
    # Warm the dataset cache so wall time measures the campaign itself.
    t0 = time.perf_counter()
    result = run_campaign(
        args.network, seed=0, workers=args.workers, quick=args.quick
    )
    wall_seconds = time.perf_counter() - t0
    total_draws = int(result.convergence.get("total_draws", 0))
    section = {
        "network": args.network,
        "quick": bool(args.quick),
        "workers": args.workers,
        "n_cells": int(result.convergence.get("n_cells", 0)),
        "total_draws": total_draws,
        "wall_seconds": round(wall_seconds, 3),
        "seconds_per_draw": round(wall_seconds / max(total_draws, 1), 6),
        "hit1_nominal": result.nominal.hit1,
        "accuracy_nominal": result.nominal.accuracy,
        "detection_rate_nominal": result.nominal.detection_rate,
        "passed": bool(result.passed),
    }
    out = Path(args.out)
    report = json.loads(out.read_text()) if out.exists() else {}
    report["robustness"] = section
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"robustness {args.network}: {wall_seconds:.2f}s for {total_draws} "
        f"draws ({section['seconds_per_draw']*1000:.1f} ms/draw), nominal "
        f"hit@1 {result.nominal.hit1:.3f}, "
        f"{'PASS' if result.passed else 'FAIL'} (merged into {out})"
    )
    return 0 if result.passed else 1


def cmd_bench(args) -> int:
    """Time the scenario engine (and perf suite) into a JSON report."""
    import json
    import platform
    import time
    from pathlib import Path

    import numpy as np

    from .datasets import generate_dataset
    from .networks import build_network

    if args.phase1:
        return _bench_phase1(args)
    if args.serve:
        return _bench_serve(args)
    if args.phase2:
        return _bench_phase2(args)
    if args.steady:
        return _bench_steady(args)
    if args.batched:
        return _bench_batched(args)
    if args.robustness:
        return _bench_robustness(args)
    network = build_network(args.network)
    n_samples = min(args.samples, 50) if args.quick else args.samples

    # Warm imports/caches so the timings measure hydraulics, not startup.
    generate_dataset(network, 10, kind="multi", seed=7)

    def best_of(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    print(f"timing generate_dataset({args.network}, {n_samples}, kind='multi') ...")
    serial_result = {}
    serial_seconds = best_of(
        lambda: serial_result.setdefault(
            "ds", generate_dataset(network, n_samples, kind="multi", seed=42)
        )
    )
    worker_result = {}
    workers_seconds = best_of(
        lambda: worker_result.setdefault(
            "ds",
            generate_dataset(
                network, n_samples, kind="multi", seed=42, workers=args.workers
            ),
        )
    )
    identical = bool(
        np.array_equal(
            serial_result["ds"].X_candidates, worker_result["ds"].X_candidates
        )
        and np.array_equal(serial_result["ds"].Y, worker_result["ds"].Y)
    )

    report = {
        "quick": bool(args.quick),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "pipeline": {
            "network": args.network,
            "n_samples": n_samples,
            "kind": "multi",
            "seed": 42,
            "serial_seconds": round(serial_seconds, 4),
            f"workers{args.workers}_seconds": round(workers_seconds, 4),
            "bit_identical_across_workers": identical,
        },
    }
    # The pre-PR (dict-based, cold-start) engine measured 1.2250 s for the
    # canonical 200-sample workload on this repo's reference machine;
    # speedups are only comparable at that workload.
    if args.network == "epanet" and n_samples == 200:
        reference = 1.2250
        report["pipeline"]["pre_refactor_serial_seconds"] = reference
        report["pipeline"]["speedup_serial"] = round(reference / serial_seconds, 2)
        report["pipeline"][f"speedup_workers{args.workers}"] = round(
            reference / workers_seconds, 2
        )

    if not args.skip_pytest and Path("benchmarks").is_dir():
        import subprocess
        import sys as _sys
        import tempfile

        targets = (
            ["benchmarks/test_perf_pipeline.py::test_dataset_generation_epanet",
             "benchmarks/test_perf_solver.py"]
            if args.quick
            else ["benchmarks/test_perf_pipeline.py",
                  "benchmarks/test_perf_solver.py",
                  "benchmarks/test_perf_ml.py"]
        )
        targets = [t for t in targets if Path(t.split("::")[0]).exists()]
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            bench_json = tmp.name
        print(f"running pytest perf suite ({len(targets)} target(s)) ...")
        proc = subprocess.run(
            [_sys.executable, "-m", "pytest", "-q", *targets,
             f"--benchmark-json={bench_json}"],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            print(proc.stdout[-2000:])
            print(proc.stderr[-2000:])
            print("pytest perf suite FAILED; report limited to engine timings")
            report["pytest_benchmarks"] = {"error": f"exit code {proc.returncode}"}
        else:
            with open(bench_json) as handle:
                raw = json.load(handle)
            report["pytest_benchmarks"] = [
                {
                    "name": b["name"],
                    "mean_seconds": round(b["stats"]["mean"], 6),
                    "stddev_seconds": round(b["stats"]["stddev"], 6),
                    "rounds": b["stats"]["rounds"],
                }
                for b in raw.get("benchmarks", [])
            ]
        Path(bench_json).unlink(missing_ok=True)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    line = (
        f"serial {serial_seconds:.3f}s, workers={args.workers} "
        f"{workers_seconds:.3f}s, bit-identical={identical}"
    )
    print(f"wrote {args.out}: {line}")
    return 0


def cmd_serve(args) -> int:
    """Run the localization service until SIGTERM/SIGINT drains it.

    ``--workers 1`` (default) hosts a single in-process server;
    ``--workers N`` publishes every model into shared memory, spawns N
    worker processes attaching them zero-copy, and serves through the
    consistent-hash router on ``--port``.
    """
    import asyncio
    import time

    from .serve import LocalizationServer, ModelRegistry, ServeCluster, ServeConfig
    from .stream import get_stream_logger

    registry = ModelRegistry()
    if args.profile:
        for i, path in enumerate(args.profile):
            entry = registry.load(path, activate=(i == 0))
            print(f"registered {entry.name} ({entry.etag[:15]}…) from {path}")
        models = {
            row["name"]: registry.get(row["name"]).model
            for row in registry.describe()
        }
        active = registry.active.name
        models = {active: models.pop(active), **models}
    else:
        from .core import AquaScale
        from .networks import build_network

        network = build_network(args.network)
        model = AquaScale(
            network,
            iot_percent=args.iot_percent,
            classifier=args.classifier,
            seed=args.seed,
        )
        print(
            f"training {args.classifier} profile on {network.name} "
            f"({args.train_samples} scenarios, {len(model.sensors)} sensors) ..."
        )
        t0 = time.perf_counter()
        model.train(n_train=args.train_samples, kind="multi")
        print(f"  Phase I done in {time.perf_counter() - t0:.1f}s")
        registry.register("default", model)
        models = {"default": model}

    logger = get_stream_logger(json_lines=args.json_logs)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        adaptive_batching=not args.fixed_batching,
        inference_workers=args.inference_workers,
        max_pending=args.max_pending,
        default_deadline_ms=args.deadline_ms,
    )

    if args.workers > 1:
        cluster = ServeCluster(
            models,
            n_workers=args.workers,
            config=config,
            host=args.host,
            port=args.port,
            load_factor=args.load_factor,
            logger=logger,
        )

        async def run_cluster() -> None:
            await cluster.start()
            # The smoke harness parses this line to find an ephemeral port.
            print(f"serving on {args.host}:{cluster.port}", flush=True)
            await cluster.serve_forever()

        asyncio.run(run_cluster())
        print("drained cleanly")
        return 0

    server = LocalizationServer(registry, config=config, logger=logger)

    async def run() -> None:
        await server.start()
        # The smoke harness parses this line to find an ephemeral port.
        print(f"serving on {config.host}:{server.port}", flush=True)
        await server.serve_forever()

    asyncio.run(run())
    print("drained cleanly")
    return 0


def cmd_robustness(args) -> int:
    """Run/render robustness campaigns and the placement search."""
    from .robustness import iterative_placement, run_campaign
    from .robustness.report import RobustnessReport

    if args.action == "run":
        result = run_campaign(
            args.network,
            seed=args.seed,
            workers=args.workers,
            quick=args.quick,
        )
        if args.out:
            path = result.write(args.out)
            print(f"wrote {path}", flush=True)
        if args.json:
            print(result.to_json(), end="")
        else:
            for line in result.lines():
                print(line)
        return 0 if result.passed else 1

    if args.action == "report":
        result = RobustnessReport.read(args.path)
        for line in result.lines():
            print(line)
        return 0 if result.passed else 1

    # action == "place"
    deployment, trace = iterative_placement(
        args.network,
        add=args.add,
        seed=args.seed,
        iot_percent=args.iot_percent,
        max_candidates=args.max_candidates,
        draws_per_cell=args.draws_per_cell,
        quick=args.quick,
    )
    if args.out:
        from pathlib import Path

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(trace.to_json())
        print(f"wrote {path}", flush=True)
    if args.json:
        print(trace.to_json(), end="")
    else:
        for line in trace.lines():
            print(line)
    return 0


def cmd_verify(args) -> int:
    """Run the verification sweep and print its report."""
    from .verify import run_verify

    result = run_verify(
        networks=args.network or None,
        quick=args.quick,
        seed=args.seed,
        fuzz=not args.no_fuzz,
        update_golden=args.update_golden,
        workers=args.workers,
    )
    for line in result.lines():
        print(line)
    return 0 if result.passed else 1


_HANDLERS = {
    "networks": cmd_networks,
    "simulate": cmd_simulate,
    "generate": cmd_generate,
    "train": cmd_train,
    "localize": cmd_localize,
    "infer": cmd_infer,
    "experiment": cmd_experiment,
    "isolate": cmd_isolate,
    "resilience": cmd_resilience,
    "flood": cmd_flood,
    "stream": cmd_stream,
    "serve": cmd_serve,
    "verify": cmd_verify,
    "robustness": cmd_robustness,
    "bench": cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
