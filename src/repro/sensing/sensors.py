"""IoT sensor models.

The paper instruments networks with pressure transducers (on nodes) and
flow meters (on pipes); the candidate set is ``V ∪ E`` and 100% IoT means
one device at every node and every link.  Sensors sample at the hydraulic
timestep (15 minutes) and their readings carry Gaussian noise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..hydraulics import SimulationResults, WaterNetwork

#: Default reading noise: 0.05 m of head for pressure transducers.
PRESSURE_NOISE_STD = 0.05
#: Default reading noise: 0.2 L/s for flow meters.
FLOW_NOISE_STD = 2e-4


class SensorType(enum.Enum):
    """What a device measures (and therefore where it can be mounted)."""

    PRESSURE = "pressure"  # mounted on a node
    FLOW = "flow"          # mounted on a link


@dataclass(frozen=True)
class Sensor:
    """One IoT device.

    Attributes:
        target: node name (pressure) or link name (flow).
        sensor_type: PRESSURE or FLOW.
        noise_std: Gaussian reading-noise standard deviation (m or m^3/s).
    """

    target: str
    sensor_type: SensorType
    noise_std: float = 0.0

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``pressure:J12``."""
        return f"{self.sensor_type.value}:{self.target}"


def full_candidate_set(
    network: WaterNetwork,
    pressure_noise: float = PRESSURE_NOISE_STD,
    flow_noise: float = FLOW_NOISE_STD,
) -> list[Sensor]:
    """All |V| + |E| candidate devices (the paper's 100% IoT set).

    Pressure candidates cover every node (junctions, tanks and reservoirs
    alike — utilities meter sources too); flow candidates cover every link.
    """
    sensors = [
        Sensor(name, SensorType.PRESSURE, pressure_noise)
        for name in network.node_names()
    ]
    sensors.extend(
        Sensor(name, SensorType.FLOW, flow_noise) for name in network.link_names()
    )
    return sensors


class SensorNetwork:
    """A deployed set of sensors that can be read against results.

    Args:
        sensors: the deployed devices.
        seed: noise RNG seed; reading the same results twice with the same
            seed gives identical noisy values (reproducibility).
    """

    def __init__(self, sensors: list[Sensor], seed: int | None = None):
        if not sensors:
            raise ValueError("a sensor network needs at least one sensor")
        keys = [s.key for s in sensors]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate sensors in the deployment")
        self.sensors = list(sensors)
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self.sensors)

    def keys(self) -> list[str]:
        return [s.key for s in self.sensors]

    def read(self, results: SimulationResults, time_index: int) -> np.ndarray:
        """Noisy readings at one recorded timestep, ordered like sensors."""
        values = np.empty(len(self.sensors))
        for i, sensor in enumerate(self.sensors):
            if sensor.sensor_type is SensorType.PRESSURE:
                clean = results.pressure[time_index, results.node_column(sensor.target)]
            else:
                clean = results.flow[time_index, results.link_column(sensor.target)]
            noise = self._rng.normal(0.0, sensor.noise_std) if sensor.noise_std > 0 else 0.0
            values[i] = clean + noise
        return values

    def read_series(self, results: SimulationResults) -> np.ndarray:
        """Noisy readings at all timesteps, shape (T, n_sensors)."""
        return np.vstack(
            [self.read(results, t) for t in range(results.n_timesteps)]
        )
