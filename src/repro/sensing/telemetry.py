"""Telemetry feature extraction — the Δ-features of Sec. IV-A.

"We use the difference between two sets of consecutive readings from IoT
devices as the features of X": for a leak starting at slot ``e.t`` and
``n`` elapsed slots, the feature of sensor ``a`` is
``reading(e.t + n) - reading(e.t - 1)``.

Two extraction paths are provided:

* :func:`delta_from_results` — against a full extended-period simulation
  (exact, used in integration tests and examples);
* :class:`SteadyStateTelemetry` — the fast path used for dataset
  generation: one baseline steady-state solve at slot ``t - 1`` demands
  and one leaky solve at slot ``t + n`` demands, with baseline solutions
  cached per slot.  The Δ then contains both the leak signature and the
  diurnal demand drift over ``n`` slots, exactly as a real pair of
  readings would.
"""

from __future__ import annotations

import numpy as np

from ..failures import FailureScenario, events_to_emitters
from ..hydraulics import BatchedGGASolver, GGASolver, SimulationResults, WaterNetwork
from .sensors import SensorNetwork


def delta_from_results(
    sensor_network: SensorNetwork,
    results: SimulationResults,
    start_slot: int,
    elapsed_slots: int = 1,
) -> np.ndarray:
    """Δ-feature vector from recorded EPS results.

    Args:
        sensor_network: the deployed devices.
        results: EPS output whose timestep equals the IoT slot.
        start_slot: leak start slot ``e.t`` (index into results).
        elapsed_slots: ``n`` — slots elapsed since the leak.

    Raises:
        IndexError: if the window falls outside the recorded range.
    """
    before = start_slot - 1
    after = start_slot + elapsed_slots
    if before < 0 or after >= results.n_timesteps:
        raise IndexError(
            f"window [{before}, {after}] outside recorded range "
            f"[0, {results.n_timesteps - 1}]"
        )
    return sensor_network.read(results, after) - sensor_network.read(results, before)


class SteadyStateTelemetry:
    """Fast Δ-feature generation via paired steady-state solves.

    The expensive part of dataset generation is hydraulics, not ML; this
    class caches the no-leak baseline per time slot (the demand pattern
    repeats daily) so each scenario costs one additional solve.

    Args:
        network: target network.
        seed: noise seed for the generated readings.
        slots_per_day: IoT slots per day (96 at 15 minutes).
        background_emitters: persistent small leaks present in *both* the
            baseline and the failure state — the paper's Sec.-I reality
            that "about 14-18% of water treated in the United States is
            wasted through damaged pipelines".  Use
            :func:`background_leakage` to draw a set hitting a target
            loss fraction.
    """

    def __init__(
        self,
        network: WaterNetwork,
        seed: int = 0,
        slots_per_day: int = 96,
        background_emitters: dict[str, tuple[float, float]] | None = None,
    ):
        self.network = network
        self.slots_per_day = slots_per_day
        self.background_emitters = dict(background_emitters or {})
        self._solver = GGASolver(network)
        self._batched: BatchedGGASolver | None = None
        self._rng = np.random.default_rng(seed)
        self._baseline_cache: dict[int, object] = {}
        self._reference = None
        self._pattern_seconds = network.options.pattern_timestep

        # -- precomputed array-path indices ----------------------------
        solver = self._solver
        junction_order = solver.junction_names
        junction_index = {name: i for i, name in enumerate(junction_order)}
        fixed_index = {name: i for i, name in enumerate(solver.fixed_names)}
        self._junction_order = junction_order
        self._base_demands = np.array(
            [network.nodes[name].base_demand for name in junction_order]  # type: ignore[union-attr]
        )
        # (slots_per_day, n_junctions) pattern multipliers, evaluated once:
        # slot s maps to EPS time s * hydraulic_timestep, against each
        # junction's demand pattern at the network's pattern_timestep.
        step = network.options.hydraulic_timestep
        multipliers = np.ones((slots_per_day, len(junction_order)))
        for j, name in enumerate(junction_order):
            junction = network.nodes[name]
            if junction.demand_pattern is not None:  # type: ignore[union-attr]
                pattern = network.pattern(junction.demand_pattern)  # type: ignore[union-attr]
                for s in range(slots_per_day):
                    multipliers[s, j] = pattern.at(s * step, self._pattern_seconds)
        self._slot_multipliers = multipliers
        # Candidate layout: node pressures (node_names order: junctions
        # and fixed nodes interleaved) followed by link flows.
        node_names = network.node_names()
        link_names = network.link_names()
        self._n_nodes = len(node_names)
        self._n_links = len(link_names)
        jpos, jsrc, fpos, fsrc = [], [], [], []
        for pos, name in enumerate(node_names):
            if name in junction_index:
                jpos.append(pos)
                jsrc.append(junction_index[name])
            else:
                fpos.append(pos)
                fsrc.append(fixed_index[name])
        self._node_jpos = np.array(jpos, dtype=np.int64)
        self._node_jsrc = np.array(jsrc, dtype=np.int64)
        self._node_fpos = np.array(fpos, dtype=np.int64)
        self._node_fsrc = np.array(fsrc, dtype=np.int64)
        solver_link_index = {name: i for i, name in enumerate(solver.link_names)}
        self._link_perm = np.array(
            [solver_link_index[name] for name in link_names], dtype=np.int64
        )
        # Background leakage as junction-order arrays (solver fast path).
        self._background_ec = np.zeros(len(junction_order))
        self._background_beta = np.full(len(junction_order), 0.5)
        for name, (ec, beta) in self.background_emitters.items():
            self._background_ec[junction_index[name]] = ec
            self._background_beta[junction_index[name]] = beta
        self._junction_index = junction_index

    @property
    def solver(self) -> GGASolver:
        """The underlying steady-state solver (e.g. to attach an auditor)."""
        return self._solver

    # ------------------------------------------------------------------
    def slot_demand_array(self, slot: int) -> np.ndarray:
        """Pattern-scaled junction-order demand array at a slot.

        One row of the precomputed pattern-multiplier matrix times the
        base demands; order matches ``GGASolver.junction_names``.
        """
        return self._base_demands * self._slot_multipliers[slot % self.slots_per_day]

    def _slot_demands(self, slot: int) -> dict[str, float]:
        """Pattern-scaled demands at a slot (wrapping daily; dict view)."""
        values = self.slot_demand_array(slot)
        return dict(zip(self._junction_order, values.tolist()))

    def _reference_solution(self):
        """One cold solve at base demands, warm-starting every baseline.

        Keyed to nothing but the network, so the result — and therefore
        every warm-started baseline — is independent of the order slots
        are first requested in (a worker processing slots 40..50 computes
        bit-identical baselines to one processing 0..96).
        """
        if self._reference is None:
            self._reference = self._solver.solve(
                demands=self._base_demands.copy(),
                emitters=(self._background_ec, self._background_beta),
            )
        return self._reference

    def _baseline(self, slot: int):
        key = slot % self.slots_per_day
        if key not in self._baseline_cache:
            self._baseline_cache[key] = self._solver.solve(
                demands=self.slot_demand_array(key),
                emitters=(self._background_ec, self._background_beta),
                warm_start=self._reference_solution(),
            )
        return self._baseline_cache[key]

    def compute_baselines(self, slots) -> dict[int, object]:
        """Solve (or fetch cached) baselines for ``slots``; returns a
        ``{wrapped_slot: solution}`` mapping suitable for
        :meth:`preload_baselines` in another process."""
        return {slot % self.slots_per_day: self._baseline(slot) for slot in slots}

    def preload_baselines(self, baselines: dict[int, object]) -> None:
        """Seed the per-slot baseline cache with precomputed solutions.

        The parallel dataset engine computes each distinct slot baseline
        once in the parent process and ships it to workers, so no worker
        re-pays baseline hydraulics.  Keys are slots (wrapped daily).
        """
        for slot, solution in baselines.items():
            self._baseline_cache[slot % self.slots_per_day] = solution

    def _merged_emitters(self, scenario: FailureScenario) -> dict[str, tuple[float, float]]:
        """Scenario events stacked on top of the background leakage."""
        merged = dict(self.background_emitters)
        for node, (ec, beta) in events_to_emitters(list(scenario.events)).items():
            previous = merged.get(node, (0.0, beta))
            merged[node] = (previous[0] + ec, beta)
        return merged

    def _merged_emitter_arrays(
        self, scenario: FailureScenario
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array form of :meth:`_merged_emitters` (junction order)."""
        ec = self._background_ec.copy()
        beta = self._background_beta.copy()
        for node, (event_ec, event_beta) in events_to_emitters(
            list(scenario.events)
        ).items():
            index = self._junction_index[node]
            ec[index] += event_ec
            beta[index] = event_beta
        return ec, beta

    # ------------------------------------------------------------------
    def candidate_deltas(
        self,
        scenario: FailureScenario,
        elapsed_slots: int = 1,
        pressure_noise: float = 0.05,
        flow_noise: float = 2e-4,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Δ readings for ALL |V| + |E| candidates, nodes first then links.

        Returning the full candidate vector lets one generated dataset be
        re-subset for every IoT-percentage sweep point without re-running
        hydraulics.

        Args:
            scenario: the failure to featurise.
            elapsed_slots: slots since onset (the paper's ``n``).
            pressure_noise: per-reading pressure noise std (m).
            flow_noise: per-reading flow noise std (m^3/s).
            rng: noise generator override; defaults to the instance RNG.
                The parallel dataset engine passes per-scenario streams
                spawned from one ``SeedSequence`` so results do not
                depend on worker count or evaluation order.
        """
        rng = self._rng if rng is None else rng
        after_slot = scenario.start_slot + elapsed_slots
        before = self._baseline(scenario.start_slot - 1)
        # The leak perturbs the same-slot baseline only slightly, so the
        # cached no-leak state of the *after* slot warm-starts Newton.
        after = self._solver.solve(
            demands=self.slot_demand_array(after_slot),
            emitters=self._merged_emitter_arrays(scenario),
            warm_start=self._baseline(after_slot),
        )
        delta = self._solution_vector(after) - self._solution_vector(before)
        node_delta = delta[: self._n_nodes]
        link_delta = delta[self._n_nodes :]
        # With n elapsed slots the utility has n post-leak readings to
        # average, so effective noise variance is (1 + 1/n) * sigma^2:
        # one baseline reading plus the averaged post-leak window.
        factor = np.sqrt(1.0 + 1.0 / max(elapsed_slots, 1))
        if pressure_noise > 0:
            node_delta = node_delta + rng.normal(
                0.0, pressure_noise * factor, size=len(node_delta)
            )
        if flow_noise > 0:
            link_delta = link_delta + rng.normal(
                0.0, flow_noise * factor, size=len(link_delta)
            )
        return np.concatenate([node_delta, link_delta])

    @property
    def batched_solver(self) -> BatchedGGASolver:
        """Lazily built batched engine sharing this telemetry's solver.

        Sharing ``self._solver`` means Schur patterns, RCM orderings and
        the dense scatter layout are computed once and the batched lanes
        warm-start from the same cached baselines the sequential path
        uses.
        """
        if self._batched is None:
            self._batched = BatchedGGASolver(self.network, solver=self._solver)
        return self._batched

    def candidate_deltas_batch(
        self,
        scenarios,
        elapsed_slots: int = 1,
        pressure_noise: float = 0.05,
        flow_noise: float = 2e-4,
        rngs=None,
    ) -> np.ndarray:
        """Δ readings for a stack of scenarios as one vectorized solve.

        Returns an ``(S, |V| + |E|)`` matrix whose row ``k`` is
        bit-identical to ``candidate_deltas(scenarios[k], ...)`` called
        in sequence: baselines come from the same per-slot cache (solved
        sequentially on demand), the leaky states are solved by the
        batched engine (bit-identical to sequential on the dense path),
        and the noise stream per scenario is drawn in the sequential
        order (nodes then links) from ``rngs[k]`` — pass the same
        per-scenario generators the serial sweep would have used.

        A scenario the sequential sweep would have failed on raises the
        same :class:`~repro.hydraulics.ConvergenceError` here (the
        lowest failing lane's, matching a serial loop's first raise).
        """
        scenarios = list(scenarios)
        n_scenarios = len(scenarios)
        n_candidates = self._n_nodes + self._n_links
        if n_scenarios == 0:
            return np.zeros((0, n_candidates))
        n = len(self._junction_order)
        demand_stack = np.empty((n_scenarios, n))
        ec_stack = np.empty((n_scenarios, n))
        beta_stack = np.empty((n_scenarios, n))
        warm_rows = []
        before_vecs = np.empty((n_scenarios, n_candidates))
        vec_cache: dict[int, np.ndarray] = {}
        for k, scenario in enumerate(scenarios):
            after_slot = scenario.start_slot + elapsed_slots
            before_key = (scenario.start_slot - 1) % self.slots_per_day
            if before_key not in vec_cache:
                vec_cache[before_key] = self._solution_vector(
                    self._baseline(scenario.start_slot - 1)
                )
            before_vecs[k] = vec_cache[before_key]
            demand_stack[k] = self.slot_demand_array(after_slot)
            ec_stack[k], beta_stack[k] = self._merged_emitter_arrays(scenario)
            warm_rows.append(self._baseline(after_slot))
        result = self.batched_solver.solve_batch(
            demands=demand_stack,
            emitters=(ec_stack, beta_stack),
            warm_starts=warm_rows,
            package=False,
        )
        error = result.first_error()
        if error is not None:
            raise error
        # Same per-element arithmetic as _package + _solution_vector:
        # junction pressures are heads - elevations; fixed-node columns
        # cancel exactly in the delta (identical floats in both states),
        # so they start as copies of the baseline vector.
        pressures = result.heads - self._solver._elevation_arr
        after_vecs = before_vecs.copy()
        after_vecs[:, self._node_jpos] = pressures[:, self._node_jsrc]
        after_vecs[:, self._n_nodes :] = result.flows[:, self._link_perm]
        deltas = after_vecs - before_vecs
        factor = np.sqrt(1.0 + 1.0 / max(elapsed_slots, 1))
        for k in range(n_scenarios):
            rng = self._rng if rngs is None else rngs[k]
            if pressure_noise > 0:
                deltas[k, : self._n_nodes] += rng.normal(
                    0.0, pressure_noise * factor, size=self._n_nodes
                )
            if flow_noise > 0:
                deltas[k, self._n_nodes :] += rng.normal(
                    0.0, flow_noise * factor, size=self._n_links
                )
        return deltas

    def perturbed_deltas_batch(
        self,
        scenarios,
        demand_factors,
        elapsed_slots: int = 1,
        pressure_noise: float = 0.05,
        flow_noise: float = 2e-4,
        rngs=None,
        allow_failures: bool = False,
    ) -> np.ndarray:
        """Δ readings under per-draw multiplicative demand perturbation.

        The robustness campaign's hydraulic kernel: each draw ``k``
        scales every junction demand by ``demand_factors[k]`` (a
        ``(S, n_junctions)`` matrix in ``GGASolver.junction_names``
        order, e.g. lognormal factors modelling demand-forecast error),
        which perturbs the *baseline* too — so both the before and the
        after state must be re-solved.  All ``2 S`` states go through
        ``BatchedGGASolver.solve_batch`` as one stack (before lanes
        first, then after lanes), each warm-started from the cached
        nominal baseline of its slot; the nominal baselines themselves
        are solved through the same per-slot cache the unperturbed path
        uses, so running a campaign never perturbs a concurrently built
        dataset.

        Noise is drawn per draw from ``rngs[k]`` in the sequential order
        (nodes then links) with the same ``sqrt(1 + 1/n)`` window factor
        as :meth:`candidate_deltas`.

        Args:
            scenarios: one :class:`~repro.failures.FailureScenario` per
                draw.
            demand_factors: ``(S, n_junctions)`` multiplicative factors.
            elapsed_slots: the paper's ``n``.
            pressure_noise: per-reading pressure noise std (m), already
                scaled by any campaign noise factor.
            flow_noise: per-reading flow noise std (m^3/s), ditto.
            rngs: per-draw noise generators (defaults to the instance
                RNG for every draw — campaigns always pass streams).
            allow_failures: when True, a draw whose before or after
                solve failed yields a NaN row instead of raising —
                campaigns count such draws as failed and move on.

        Returns:
            ``(S, |V| + |E|)`` Δ matrix, nodes first then links.

        Raises:
            ConvergenceError: the first failing lane's error, unless
                ``allow_failures``.
            ValueError: if ``demand_factors`` is not ``(S, n_junctions)``.
        """
        scenarios = list(scenarios)
        n_scenarios = len(scenarios)
        n = len(self._junction_order)
        n_candidates = self._n_nodes + self._n_links
        factors = np.asarray(demand_factors, dtype=float)
        if factors.shape != (n_scenarios, n):
            raise ValueError(
                f"demand_factors must be ({n_scenarios}, {n}), "
                f"got {factors.shape}"
            )
        if n_scenarios == 0:
            return np.zeros((0, n_candidates))
        demand_stack = np.empty((2 * n_scenarios, n))
        ec_stack = np.empty((2 * n_scenarios, n))
        beta_stack = np.empty((2 * n_scenarios, n))
        warm_rows = []
        for k, scenario in enumerate(scenarios):
            demand_stack[k] = self.slot_demand_array(scenario.start_slot - 1)
            demand_stack[k] *= factors[k]
            ec_stack[k] = self._background_ec
            beta_stack[k] = self._background_beta
            warm_rows.append(self._baseline(scenario.start_slot - 1))
        for k, scenario in enumerate(scenarios):
            after_slot = scenario.start_slot + elapsed_slots
            row = n_scenarios + k
            demand_stack[row] = self.slot_demand_array(after_slot)
            demand_stack[row] *= factors[k]
            ec_stack[row], beta_stack[row] = self._merged_emitter_arrays(scenario)
            warm_rows.append(self._baseline(after_slot))
        result = self.batched_solver.solve_batch(
            demands=demand_stack,
            emitters=(ec_stack, beta_stack),
            warm_starts=warm_rows,
            package=False,
        )
        if not allow_failures:
            error = result.first_error()
            if error is not None:
                raise error
        # Fixed-node pressure columns are inputs, identical in the
        # before and after lanes of a draw, so they cancel to exactly
        # 0.0 in the delta; seed both sides from one reference vector.
        template = self._solution_vector(self._reference_solution())
        vecs = np.tile(template, (2 * n_scenarios, 1))
        pressures = result.heads - self._solver._elevation_arr
        vecs[:, self._node_jpos] = pressures[:, self._node_jsrc]
        vecs[:, self._n_nodes :] = result.flows[:, self._link_perm]
        deltas = vecs[n_scenarios:] - vecs[:n_scenarios]
        factor = np.sqrt(1.0 + 1.0 / max(elapsed_slots, 1))
        for k in range(n_scenarios):
            rng = self._rng if rngs is None else rngs[k]
            if pressure_noise > 0:
                deltas[k, : self._n_nodes] += rng.normal(
                    0.0, pressure_noise * factor, size=self._n_nodes
                )
            if flow_noise > 0:
                deltas[k, self._n_nodes :] += rng.normal(
                    0.0, flow_noise * factor, size=self._n_links
                )
        if allow_failures:
            failed = [
                k
                for k in range(n_scenarios)
                if result.errors[k] is not None
                or result.errors[n_scenarios + k] is not None
            ]
            if failed:
                deltas[np.array(failed, dtype=np.int64)] = np.nan
        return deltas

    def candidate_keys(self) -> list[str]:
        """Stable feature-column keys matching :meth:`candidate_deltas`."""
        keys = [f"pressure:{n}" for n in self.network.node_names()]
        keys.extend(f"flow:{l}" for l in self.network.link_names())
        return keys

    # ------------------------------------------------------------------
    # Per-slot readings — the streaming runtime's view of the field.
    def _solution_vector(self, solution) -> np.ndarray:
        """Candidate-ordered (pressures then flows) vector of a solution.

        Direct array slices of the solution's junction/fixed/link vectors
        — no per-name dict lookups on the hot path.
        """
        out = np.empty(self._n_nodes + self._n_links)
        out[self._node_jpos] = solution.junction_pressures[self._node_jsrc]
        if len(self._node_fpos):
            out[self._node_fpos] = solution.fixed_pressures[self._node_fsrc]
        out[self._n_nodes :] = solution.link_flows[self._link_perm]
        return out

    def baseline_candidates(self, slot: int) -> np.ndarray:
        """Noiseless no-leak candidate readings at a slot (cached per
        slot-of-day) — the reference a streaming detector differences
        against."""
        return self._solution_vector(self._baseline(slot))

    def candidate_readings(
        self,
        slot: int,
        scenario: FailureScenario | None = None,
        pressure_noise: float = 0.05,
        flow_noise: float = 2e-4,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Noisy absolute readings for ALL candidates at one time slot.

        Unlike :meth:`candidate_deltas` (which produces the paper's paired
        Δ-features for a known onset), this is what live devices report
        slot by slot: the no-leak hydraulic state until the scenario's
        ``start_slot``, and the leaky state from then on.

        Args:
            slot: absolute slot index (wraps daily for demands).
            scenario: active failure, or None for a healthy feed.
            pressure_noise: per-reading noise std for node pressures (m).
            flow_noise: per-reading noise std for link flows (m^3/s).
            rng: noise generator; defaults to the instance RNG.
        """
        if scenario is not None and slot >= scenario.start_slot:
            solution = self._solver.solve(
                demands=self.slot_demand_array(slot),
                emitters=self._merged_emitter_arrays(scenario),
                warm_start=self._baseline(slot),
            )
        else:
            solution = self._baseline(slot)
        values = self._solution_vector(solution)
        rng = self._rng if rng is None else rng
        n_nodes = len(self.network.node_names())
        n_links = len(self.network.link_names())
        noise = np.concatenate(
            [
                rng.normal(0.0, pressure_noise, size=n_nodes)
                if pressure_noise > 0
                else np.zeros(n_nodes),
                rng.normal(0.0, flow_noise, size=n_links)
                if flow_noise > 0
                else np.zeros(n_links),
            ]
        )
        return values + noise


def background_leakage(
    network: WaterNetwork,
    loss_fraction: float = 0.15,
    affected_fraction: float = 0.3,
    seed: int = 0,
    solver: GGASolver | None = None,
    baseline: "object | None" = None,
) -> dict[str, tuple[float, float]]:
    """Draw persistent small emitters losing ~``loss_fraction`` of demand.

    A random ``affected_fraction`` of junctions gets a small emitter;
    coefficients are scaled so total background leak flow approximates
    ``loss_fraction`` of total consumer demand at baseline pressures —
    matching the paper's 14-18% national water-loss figure.

    Args:
        network: the target network.
        loss_fraction: target background loss as a fraction of demand.
        affected_fraction: fraction of junctions receiving an emitter.
        seed: RNG seed for locations and weights.
        solver: pre-built :class:`GGASolver` to reuse (skips the per-call
            solver construction when callers already hold one).
        baseline: pre-computed no-leak :class:`SteadyStateSolution` for
            this network's base demands; when given, no hydraulic solve
            runs at all.  Takes precedence over ``solver``.

    Raises:
        ValueError: for fractions outside (0, 1].
    """
    if not 0.0 < loss_fraction <= 1.0:
        raise ValueError(f"loss_fraction must be in (0, 1], got {loss_fraction}")
    if not 0.0 < affected_fraction <= 1.0:
        raise ValueError(
            f"affected_fraction must be in (0, 1], got {affected_fraction}"
        )
    rng = np.random.default_rng(seed)
    junctions = network.junction_names()
    n_affected = max(1, int(round(affected_fraction * len(junctions))))
    chosen = rng.choice(junctions, size=n_affected, replace=False)
    total_demand = sum(j.base_demand for j in network.junctions())
    # Size coefficients against the baseline pressure field.
    if baseline is None:
        baseline = (solver if solver is not None else GGASolver(network)).solve()
    weights = rng.uniform(0.3, 1.0, size=n_affected)
    raw_flow = sum(
        w * max(baseline.node_pressure[str(node)], 1.0) ** 0.5
        for w, node in zip(weights, chosen)
    )
    target_flow = loss_fraction * total_demand
    scale = target_flow / max(raw_flow, 1e-12)
    return {
        str(node): (float(w * scale), 0.5) for w, node in zip(weights, chosen)
    }


def sensor_column_indices(
    candidate_keys: list[str], sensor_network: SensorNetwork
) -> np.ndarray:
    """Columns of the full candidate matrix seen by a deployment.

    Raises:
        KeyError: if a deployed sensor is not among the candidates.
    """
    index = {key: i for i, key in enumerate(candidate_keys)}
    try:
        return np.array([index[s.key] for s in sensor_network.sensors], dtype=np.int64)
    except KeyError as exc:
        raise KeyError(f"sensor {exc.args[0]!r} not in candidate set") from None
