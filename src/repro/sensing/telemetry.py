"""Telemetry feature extraction — the Δ-features of Sec. IV-A.

"We use the difference between two sets of consecutive readings from IoT
devices as the features of X": for a leak starting at slot ``e.t`` and
``n`` elapsed slots, the feature of sensor ``a`` is
``reading(e.t + n) - reading(e.t - 1)``.

Two extraction paths are provided:

* :func:`delta_from_results` — against a full extended-period simulation
  (exact, used in integration tests and examples);
* :class:`SteadyStateTelemetry` — the fast path used for dataset
  generation: one baseline steady-state solve at slot ``t - 1`` demands
  and one leaky solve at slot ``t + n`` demands, with baseline solutions
  cached per slot.  The Δ then contains both the leak signature and the
  diurnal demand drift over ``n`` slots, exactly as a real pair of
  readings would.
"""

from __future__ import annotations

import numpy as np

from ..failures import FailureScenario, events_to_emitters
from ..hydraulics import GGASolver, SimulationResults, WaterNetwork
from .sensors import SensorNetwork


def delta_from_results(
    sensor_network: SensorNetwork,
    results: SimulationResults,
    start_slot: int,
    elapsed_slots: int = 1,
) -> np.ndarray:
    """Δ-feature vector from recorded EPS results.

    Args:
        sensor_network: the deployed devices.
        results: EPS output whose timestep equals the IoT slot.
        start_slot: leak start slot ``e.t`` (index into results).
        elapsed_slots: ``n`` — slots elapsed since the leak.

    Raises:
        IndexError: if the window falls outside the recorded range.
    """
    before = start_slot - 1
    after = start_slot + elapsed_slots
    if before < 0 or after >= results.n_timesteps:
        raise IndexError(
            f"window [{before}, {after}] outside recorded range "
            f"[0, {results.n_timesteps - 1}]"
        )
    return sensor_network.read(results, after) - sensor_network.read(results, before)


class SteadyStateTelemetry:
    """Fast Δ-feature generation via paired steady-state solves.

    The expensive part of dataset generation is hydraulics, not ML; this
    class caches the no-leak baseline per time slot (the demand pattern
    repeats daily) so each scenario costs one additional solve.

    Args:
        network: target network.
        seed: noise seed for the generated readings.
        slots_per_day: IoT slots per day (96 at 15 minutes).
        background_emitters: persistent small leaks present in *both* the
            baseline and the failure state — the paper's Sec.-I reality
            that "about 14-18% of water treated in the United States is
            wasted through damaged pipelines".  Use
            :func:`background_leakage` to draw a set hitting a target
            loss fraction.
    """

    def __init__(
        self,
        network: WaterNetwork,
        seed: int = 0,
        slots_per_day: int = 96,
        background_emitters: dict[str, tuple[float, float]] | None = None,
    ):
        self.network = network
        self.slots_per_day = slots_per_day
        self.background_emitters = dict(background_emitters or {})
        self._solver = GGASolver(network)
        self._rng = np.random.default_rng(seed)
        self._baseline_cache: dict[int, dict] = {}
        self._pattern_seconds = network.options.pattern_timestep

    # ------------------------------------------------------------------
    def _slot_demands(self, slot: int) -> dict[str, float]:
        """Pattern-scaled demands at a slot (wrapping daily)."""
        seconds = (slot % self.slots_per_day) * self.network.options.hydraulic_timestep
        demands = {}
        for junction in self.network.junctions():
            multiplier = 1.0
            if junction.demand_pattern is not None:
                pattern = self.network.pattern(junction.demand_pattern)
                multiplier = pattern.at(seconds, self._pattern_seconds)
            demands[junction.name] = junction.base_demand * multiplier
        return demands

    def _baseline(self, slot: int):
        key = slot % self.slots_per_day
        if key not in self._baseline_cache:
            self._baseline_cache[key] = self._solver.solve(
                demands=self._slot_demands(key),
                emitters=dict(self.background_emitters),
            )
        return self._baseline_cache[key]

    def _merged_emitters(self, scenario: FailureScenario) -> dict[str, tuple[float, float]]:
        """Scenario events stacked on top of the background leakage."""
        merged = dict(self.background_emitters)
        for node, (ec, beta) in events_to_emitters(list(scenario.events)).items():
            previous = merged.get(node, (0.0, beta))
            merged[node] = (previous[0] + ec, beta)
        return merged

    # ------------------------------------------------------------------
    def candidate_deltas(
        self,
        scenario: FailureScenario,
        elapsed_slots: int = 1,
        pressure_noise: float = 0.05,
        flow_noise: float = 2e-4,
    ) -> np.ndarray:
        """Δ readings for ALL |V| + |E| candidates, nodes first then links.

        Returning the full candidate vector lets one generated dataset be
        re-subset for every IoT-percentage sweep point without re-running
        hydraulics.
        """
        before = self._baseline(scenario.start_slot - 1)
        after = self._solver.solve(
            demands=self._slot_demands(scenario.start_slot + elapsed_slots),
            emitters=self._merged_emitters(scenario),
        )
        node_names = self.network.node_names()
        link_names = self.network.link_names()
        node_delta = np.array(
            [after.node_pressure[n] - before.node_pressure[n] for n in node_names]
        )
        link_delta = np.array(
            [after.link_flow[l] - before.link_flow[l] for l in link_names]
        )
        # With n elapsed slots the utility has n post-leak readings to
        # average, so effective noise variance is (1 + 1/n) * sigma^2:
        # one baseline reading plus the averaged post-leak window.
        factor = np.sqrt(1.0 + 1.0 / max(elapsed_slots, 1))
        if pressure_noise > 0:
            node_delta = node_delta + self._rng.normal(
                0.0, pressure_noise * factor, size=len(node_delta)
            )
        if flow_noise > 0:
            link_delta = link_delta + self._rng.normal(
                0.0, flow_noise * factor, size=len(link_delta)
            )
        return np.concatenate([node_delta, link_delta])

    def candidate_keys(self) -> list[str]:
        """Stable feature-column keys matching :meth:`candidate_deltas`."""
        keys = [f"pressure:{n}" for n in self.network.node_names()]
        keys.extend(f"flow:{l}" for l in self.network.link_names())
        return keys

    # ------------------------------------------------------------------
    # Per-slot readings — the streaming runtime's view of the field.
    def _solution_vector(self, solution) -> np.ndarray:
        """Candidate-ordered (pressures then flows) vector of a solution."""
        node_names = self.network.node_names()
        link_names = self.network.link_names()
        return np.concatenate(
            [
                [solution.node_pressure[n] for n in node_names],
                [solution.link_flow[l] for l in link_names],
            ]
        )

    def baseline_candidates(self, slot: int) -> np.ndarray:
        """Noiseless no-leak candidate readings at a slot (cached per
        slot-of-day) — the reference a streaming detector differences
        against."""
        return self._solution_vector(self._baseline(slot))

    def candidate_readings(
        self,
        slot: int,
        scenario: FailureScenario | None = None,
        pressure_noise: float = 0.05,
        flow_noise: float = 2e-4,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Noisy absolute readings for ALL candidates at one time slot.

        Unlike :meth:`candidate_deltas` (which produces the paper's paired
        Δ-features for a known onset), this is what live devices report
        slot by slot: the no-leak hydraulic state until the scenario's
        ``start_slot``, and the leaky state from then on.

        Args:
            slot: absolute slot index (wraps daily for demands).
            scenario: active failure, or None for a healthy feed.
            pressure_noise: per-reading noise std for node pressures (m).
            flow_noise: per-reading noise std for link flows (m^3/s).
            rng: noise generator; defaults to the instance RNG.
        """
        if scenario is not None and slot >= scenario.start_slot:
            solution = self._solver.solve(
                demands=self._slot_demands(slot),
                emitters=self._merged_emitters(scenario),
            )
        else:
            solution = self._baseline(slot)
        values = self._solution_vector(solution)
        rng = self._rng if rng is None else rng
        n_nodes = len(self.network.node_names())
        n_links = len(self.network.link_names())
        noise = np.concatenate(
            [
                rng.normal(0.0, pressure_noise, size=n_nodes)
                if pressure_noise > 0
                else np.zeros(n_nodes),
                rng.normal(0.0, flow_noise, size=n_links)
                if flow_noise > 0
                else np.zeros(n_links),
            ]
        )
        return values + noise


def background_leakage(
    network: WaterNetwork,
    loss_fraction: float = 0.15,
    affected_fraction: float = 0.3,
    seed: int = 0,
) -> dict[str, tuple[float, float]]:
    """Draw persistent small emitters losing ~``loss_fraction`` of demand.

    A random ``affected_fraction`` of junctions gets a small emitter;
    coefficients are scaled so total background leak flow approximates
    ``loss_fraction`` of total consumer demand at baseline pressures —
    matching the paper's 14-18% national water-loss figure.

    Raises:
        ValueError: for fractions outside (0, 1].
    """
    if not 0.0 < loss_fraction <= 1.0:
        raise ValueError(f"loss_fraction must be in (0, 1], got {loss_fraction}")
    if not 0.0 < affected_fraction <= 1.0:
        raise ValueError(
            f"affected_fraction must be in (0, 1], got {affected_fraction}"
        )
    rng = np.random.default_rng(seed)
    junctions = network.junction_names()
    n_affected = max(1, int(round(affected_fraction * len(junctions))))
    chosen = rng.choice(junctions, size=n_affected, replace=False)
    total_demand = sum(j.base_demand for j in network.junctions())
    # Size coefficients against the baseline pressure field.
    baseline = GGASolver(network).solve()
    weights = rng.uniform(0.3, 1.0, size=n_affected)
    raw_flow = sum(
        w * max(baseline.node_pressure[str(node)], 1.0) ** 0.5
        for w, node in zip(weights, chosen)
    )
    target_flow = loss_fraction * total_demand
    scale = target_flow / max(raw_flow, 1e-12)
    return {
        str(node): (float(w * scale), 0.5) for w, node in zip(weights, chosen)
    }


def sensor_column_indices(
    candidate_keys: list[str], sensor_network: SensorNetwork
) -> np.ndarray:
    """Columns of the full candidate matrix seen by a deployment.

    Raises:
        KeyError: if a deployed sensor is not among the candidates.
    """
    index = {key: i for i, key in enumerate(candidate_keys)}
    try:
        return np.array([index[s.key] for s in sensor_network.sensors], dtype=np.int64)
    except KeyError as exc:
        raise KeyError(f"sensor {exc.args[0]!r} not in candidate set") from None
