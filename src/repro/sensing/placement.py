"""Sensor placement via k-medoids (paper Sec. IV-A).

"Given the number of available devices, we use k-medoids algorithm to
select a group of locations as the sensor set ... partitions |V| + |E|
potential sensor locations into certain number of clusters and assigns
cluster centers as the sensor locations, based on the pressure head and
flow rate read from nodes and pipes."

Candidates are featurised with their baseline hydraulic signature (a
no-leak day of readings) plus their map position, then clustered; the
medoids become the deployment.  A random-placement baseline is included
for the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from ..hydraulics import WaterNetwork, simulate
from ..ml import KMedoids, StandardScaler
from .sensors import Sensor, SensorNetwork, SensorType, full_candidate_set


def candidate_signatures(
    network: WaterNetwork,
    n_slots: int = 24,
) -> tuple[list[Sensor], np.ndarray]:
    """Baseline hydraulic signature per candidate location.

    Runs a no-leak extended-period simulation over ``n_slots`` hydraulic
    steps and returns, per candidate, the standardised reading series
    concatenated with the candidate's coordinates.

    Returns:
        (candidates, features) with features shaped
        ``(n_candidates, n_slots + 2)``.
    """
    candidates = full_candidate_set(network)
    step = network.options.hydraulic_timestep
    results = simulate(network, duration=(n_slots - 1) * step, timestep=step)
    rows = []
    for sensor in candidates:
        if sensor.sensor_type is SensorType.PRESSURE:
            series = results.pressure[:, results.node_column(sensor.target)]
            node = network.nodes[sensor.target]
            x, y = node.coordinates
        else:
            series = results.flow[:, results.link_column(sensor.target)]
            link = network.links[sensor.target]
            x1, y1 = network.nodes[link.start_node].coordinates
            x2, y2 = network.nodes[link.end_node].coordinates
            x, y = 0.5 * (x1 + x2), 0.5 * (y1 + y2)
        rows.append(np.concatenate([series, [x, y]]))
    features = np.vstack(rows)
    return candidates, StandardScaler().fit_transform(features)


def kmedoids_placement(
    network: WaterNetwork,
    n_sensors: int,
    seed: int = 0,
    n_slots: int = 24,
) -> SensorNetwork:
    """Place ``n_sensors`` devices at k-medoids cluster centres.

    Raises:
        ValueError: if ``n_sensors`` exceeds the candidate count.
    """
    candidates, features = candidate_signatures(network, n_slots=n_slots)
    if not 1 <= n_sensors <= len(candidates):
        raise ValueError(
            f"n_sensors must be in [1, {len(candidates)}], got {n_sensors}"
        )
    if n_sensors == len(candidates):
        return SensorNetwork(candidates, seed=seed)
    km = KMedoids(n_clusters=n_sensors, random_state=seed)
    km.fit(features)
    chosen = [candidates[i] for i in km.medoid_indices_]
    return SensorNetwork(chosen, seed=seed)


def random_placement(
    network: WaterNetwork,
    n_sensors: int,
    seed: int = 0,
) -> SensorNetwork:
    """Uniform-random placement (the ablation baseline)."""
    candidates = full_candidate_set(network)
    if not 1 <= n_sensors <= len(candidates):
        raise ValueError(
            f"n_sensors must be in [1, {len(candidates)}], got {n_sensors}"
        )
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(candidates), size=n_sensors, replace=False)
    return SensorNetwork([candidates[i] for i in sorted(indices)], seed=seed)


def percentage_to_count(network: WaterNetwork, percent: float) -> int:
    """Convert the paper's "% IoT observations" to a device count.

    100% corresponds to |V| + |E| devices.
    """
    if not 0.0 < percent <= 100.0:
        raise ValueError(f"percent must be in (0, 100], got {percent}")
    total = network.num_nodes + network.num_links
    return max(1, int(round(total * percent / 100.0)))
