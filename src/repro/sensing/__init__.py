"""IoT sensing: devices, telemetry features, and placement."""

from .optimization import (
    coverage_fraction,
    detectability_matrix,
    greedy_detection_placement,
    pfa_placement,
)
from .placement import (
    candidate_signatures,
    kmedoids_placement,
    percentage_to_count,
    random_placement,
)
from .sensors import (
    FLOW_NOISE_STD,
    PRESSURE_NOISE_STD,
    Sensor,
    SensorNetwork,
    SensorType,
    full_candidate_set,
)
from .telemetry import (
    SteadyStateTelemetry,
    background_leakage,
    delta_from_results,
    sensor_column_indices,
)

__all__ = [
    "FLOW_NOISE_STD",
    "PRESSURE_NOISE_STD",
    "Sensor",
    "SensorNetwork",
    "SensorType",
    "SteadyStateTelemetry",
    "background_leakage",
    "candidate_signatures",
    "coverage_fraction",
    "delta_from_results",
    "detectability_matrix",
    "full_candidate_set",
    "greedy_detection_placement",
    "kmedoids_placement",
    "percentage_to_count",
    "pfa_placement",
    "random_placement",
    "sensor_column_indices",
]
