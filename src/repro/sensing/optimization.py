"""Detection-driven sensor placement (the paper's stated future work).

"The problem of identifying an optimal sensor placement for leak
detection will be studied in future work."  This module implements the
standard greedy approach: simulate a library of leak scenarios, build the
|candidate x scenario| detectability matrix, and greedily pick the sensor
that covers the most still-undetected scenarios (classic submodular
max-coverage, within (1 - 1/e) of optimal).

Compared with the paper's k-medoids placement, this uses the *failure
response* rather than the baseline signature — the ablation benchmark
compares both.
"""

from __future__ import annotations

import numpy as np

from ..failures import ScenarioGenerator, events_to_emitters
from ..hydraulics import GGASolver, WaterNetwork
from .sensors import FLOW_NOISE_STD, PRESSURE_NOISE_STD, SensorNetwork, full_candidate_set

#: A leak counts as "detected" by a sensor when the absolute Δ exceeds
#: this many reading-noise standard deviations.
DETECTION_SIGMAS = 3.0


def detectability_matrix(
    network: WaterNetwork,
    n_scenarios: int = 60,
    seed: int = 0,
    pressure_noise: float = PRESSURE_NOISE_STD,
    flow_noise: float = FLOW_NOISE_STD,
) -> tuple[list, np.ndarray]:
    """Boolean (n_candidates, n_scenarios) detectability matrix.

    Each column is one simulated single-leak scenario; entry (a, s) is
    True when candidate ``a``'s noise-free Δ exceeds the detection
    threshold for its modality.
    """
    if n_scenarios < 1:
        raise ValueError("n_scenarios must be >= 1")
    candidates = full_candidate_set(network, pressure_noise, flow_noise)
    solver = GGASolver(network)
    baseline = solver.solve(emitters={})
    generator = ScenarioGenerator(network, seed=seed)
    node_names = network.node_names()
    link_names = network.link_names()

    columns = []
    for _ in range(n_scenarios):
        scenario = generator.single_failure()
        solution = solver.solve(
            emitters=events_to_emitters(list(scenario.events))
        )
        node_delta = np.array(
            [
                abs(solution.node_pressure[n] - baseline.node_pressure[n])
                for n in node_names
            ]
        )
        link_delta = np.array(
            [abs(solution.link_flow[l] - baseline.link_flow[l]) for l in link_names]
        )
        detected = np.concatenate(
            [
                node_delta > DETECTION_SIGMAS * pressure_noise,
                link_delta > DETECTION_SIGMAS * flow_noise,
            ]
        )
        columns.append(detected)
    return candidates, np.column_stack(columns)


def greedy_detection_placement(
    network: WaterNetwork,
    n_sensors: int,
    n_scenarios: int = 60,
    seed: int = 0,
) -> SensorNetwork:
    """Greedy max-coverage placement over simulated leak scenarios.

    Ties are broken toward the candidate with the larger total detection
    count, then toward the lowest candidate index — the selection is a
    pure function of the detectability matrix, independent of iteration
    order (it used to walk a ``set``, whose order is not guaranteed).
    Once every scenario is covered, remaining picks maximise redundancy
    (second-coverage), which helps localisation, not just detection;
    candidates that detect nothing at all (zero-coverage rows, common on
    dead-end links) rank below every detecting candidate but are still
    legal picks when ``n_sensors`` exceeds the detecting pool.

    Raises:
        ValueError: if ``n_sensors`` exceeds the candidate count
            (|V| + |E|; note ``n_sensors`` may legitimately exceed the
            *junction* count — flow candidates are placed on links).
    """
    candidates, matrix = detectability_matrix(network, n_scenarios, seed)
    if not 1 <= n_sensors <= len(candidates):
        raise ValueError(f"n_sensors must be in [1, {len(candidates)}]")
    coverage = np.zeros(matrix.shape[1], dtype=np.int64)
    chosen: list[int] = []
    available = list(range(len(candidates)))
    totals = matrix.sum(axis=1)
    for _ in range(n_sensors):
        best_index = -1
        best_key: tuple[int, int, int] | None = None
        for index in available:
            row = matrix[index]
            # Primary: newly covered scenarios; secondary: redundancy
            # gain; then total detection count.  Strict ``>`` over an
            # ascending index walk makes the lowest index win exact ties.
            new_cover = int(np.sum(row & (coverage == 0)))
            redundancy = int(np.sum(row & (coverage == 1)))
            key = (new_cover, redundancy, int(totals[index]))
            if best_key is None or key > best_key:
                best_key = key
                best_index = index
        chosen.append(best_index)
        available.remove(best_index)
        coverage += matrix[best_index].astype(np.int64)
    chosen_sensors = [candidates[i] for i in sorted(chosen)]
    return SensorNetwork(chosen_sensors, seed=seed)


def pfa_placement(
    network: WaterNetwork,
    n_sensors: int,
    n_scenarios: int = 60,
    seed: int = 0,
) -> SensorNetwork:
    """Principal-feature-analysis placement (paper refs [36, 37]).

    Candidates are featurised by their responses across a library of
    simulated leaks (the columns of the detectability study, but with
    real-valued Δ magnitudes); PFA then keeps one representative
    candidate per PCA-loading cluster.
    """
    from ..ml import PrincipalFeatureAnalysis

    candidates = full_candidate_set(network)
    if not 1 <= n_sensors <= len(candidates):
        raise ValueError(f"n_sensors must be in [1, {len(candidates)}]")
    solver = GGASolver(network)
    baseline = solver.solve(emitters={})
    generator = ScenarioGenerator(network, seed=seed)
    node_names = network.node_names()
    link_names = network.link_names()
    columns = []
    for _ in range(n_scenarios):
        scenario = generator.single_failure()
        solution = solver.solve(emitters=events_to_emitters(list(scenario.events)))
        node_delta = [
            solution.node_pressure[n] - baseline.node_pressure[n] for n in node_names
        ]
        link_delta = [
            solution.link_flow[l] - baseline.link_flow[l] for l in link_names
        ]
        columns.append(np.array(node_delta + link_delta))
    # Rows = scenarios, features = candidates; PFA selects candidates.
    responses = np.vstack(columns)
    pfa = PrincipalFeatureAnalysis(n_features=n_sensors, random_state=seed)
    pfa.fit(responses)
    chosen = [candidates[i] for i in pfa.selected_indices_]
    return SensorNetwork(chosen, seed=seed)


def coverage_fraction(
    network: WaterNetwork,
    deployment: SensorNetwork,
    n_scenarios: int = 60,
    seed: int = 0,
) -> float:
    """Fraction of simulated leaks detectable by at least one sensor."""
    candidates, matrix = detectability_matrix(network, n_scenarios, seed)
    key_to_row = {c.key: i for i, c in enumerate(candidates)}
    rows = [key_to_row[s.key] for s in deployment.sensors if s.key in key_to_row]
    if not rows:
        return 0.0
    covered = matrix[rows].any(axis=0)
    return float(covered.mean())
