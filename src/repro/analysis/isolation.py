"""Valve-isolation segments and shutdown planning.

The paper's conclusion: "a large section of water systems (usually an
entire pressure zone) can be shutdown to prevent cascading failures of
pipe burst and to preserve critical water supplies.  Such exploration,
proactive planning and their effective instantiation ... is a topic of
future research."  This module provides that exploration: the network is
partitioned into *isolation segments* — the regions bounded by valves —
and a shutdown plan reports which valves close to contain a failing pipe
and what service is sacrificed.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..hydraulics import Valve, WaterNetwork


@dataclass(frozen=True)
class IsolationSegment:
    """One valve-bounded region.

    Attributes:
        segment_id: stable index.
        nodes: node names inside the segment.
        links: non-valve links whose both endpoints are in the segment.
        boundary_valves: valves that must close to isolate the segment.
        demand: total base demand inside (m^3/s) — the service lost.
    """

    segment_id: int
    nodes: frozenset[str]
    links: frozenset[str]
    boundary_valves: frozenset[str]
    demand: float


@dataclass
class ShutdownPlan:
    """What isolating a failing component entails.

    Attributes:
        target: the failing link/node being contained.
        segments: the segments that must be shut down.
        valves_to_close: union of their boundary valves.
        demand_lost: total demand interrupted (m^3/s).
        customers_affected: junctions losing service.
        contains_source: True when a source sits inside the shutdown —
            the plan would drop the whole zone's supply (escalate!).
    """

    target: str
    segments: list[IsolationSegment]
    valves_to_close: frozenset[str]
    demand_lost: float
    customers_affected: int
    contains_source: bool


class IsolationAnalyzer:
    """Computes valve-bounded segments and shutdown plans for a network."""

    def __init__(self, network: WaterNetwork):
        self.network = network
        self._segments = self._compute_segments()
        self._node_segment: dict[str, int] = {}
        self._link_segment: dict[str, int] = {}
        for segment in self._segments:
            for node in segment.nodes:
                self._node_segment[node] = segment.segment_id
            for link in segment.links:
                self._link_segment[link] = segment.segment_id

    def _compute_segments(self) -> list[IsolationSegment]:
        network = self.network
        graph = nx.MultiGraph()
        graph.add_nodes_from(network.node_names())
        valve_names = {v.name for v in network.valves()}
        for link in network.links.values():
            if link.name in valve_names:
                continue  # valves are the segment boundaries
            graph.add_edge(link.start_node, link.end_node, key=link.name)
        segments = []
        for index, component in enumerate(nx.connected_components(graph)):
            nodes = frozenset(component)
            links = frozenset(
                link.name
                for link in network.links.values()
                if link.name not in valve_names
                and link.start_node in nodes
                and link.end_node in nodes
            )
            boundary = frozenset(
                valve.name
                for valve in network.valves()
                if valve.start_node in nodes or valve.end_node in nodes
            )
            demand = sum(
                junction.base_demand
                for junction in network.junctions()
                if junction.name in nodes
            )
            segments.append(
                IsolationSegment(
                    segment_id=index,
                    nodes=nodes,
                    links=links,
                    boundary_valves=boundary,
                    demand=demand,
                )
            )
        return segments

    # ------------------------------------------------------------------
    @property
    def segments(self) -> list[IsolationSegment]:
        return list(self._segments)

    def segment_of_node(self, node: str) -> IsolationSegment:
        """The segment containing a node.

        Raises:
            KeyError: unknown node.
        """
        return self._segments[self._node_segment[node]]

    def segment_of_link(self, link: str) -> IsolationSegment:
        """The segment containing a (non-valve) link.

        Raises:
            KeyError: unknown or valve link.
        """
        return self._segments[self._link_segment[link]]

    # ------------------------------------------------------------------
    def shutdown_plan_for_link(self, link_name: str) -> ShutdownPlan:
        """Valves to close (and cost) to isolate a failing link.

        With few valves (the evaluation networks have 1-2), a single
        segment can span most of the zone — exactly the "entire pressure
        zone" shutdown the paper warns about; ``contains_source`` flags
        those plans.
        """
        segment = self.segment_of_link(link_name)
        return self._plan(link_name, [segment])

    def shutdown_plan_for_node(self, node_name: str) -> ShutdownPlan:
        """Valves to close to isolate a failing node (e.g. a burst joint)."""
        segment = self.segment_of_node(node_name)
        return self._plan(node_name, [segment])

    def _plan(self, target: str, segments: list[IsolationSegment]) -> ShutdownPlan:
        from ..hydraulics import Reservoir, Tank

        all_nodes: set[str] = set()
        valves: set[str] = set()
        demand = 0.0
        for segment in segments:
            all_nodes |= segment.nodes
            valves |= segment.boundary_valves
            demand += segment.demand
        sources_inside = any(
            isinstance(self.network.nodes[name], (Reservoir, Tank))
            for name in all_nodes
        )
        customers = sum(
            1
            for junction in self.network.junctions()
            if junction.name in all_nodes and junction.base_demand > 0
        )
        return ShutdownPlan(
            target=target,
            segments=segments,
            valves_to_close=frozenset(valves),
            demand_lost=demand,
            customers_affected=customers,
            contains_source=sources_inside,
        )

    def criticality_ranking(self) -> list[tuple[int, float]]:
        """Segments by demand at risk, worst first — planning priorities."""
        return sorted(
            ((s.segment_id, s.demand) for s in self._segments),
            key=lambda item: item[1],
            reverse=True,
        )
