"""Hydraulic resilience and service-level metrics.

Used by the decision-support layer to express "higher level impact": the
Todini resilience index (surplus head as a fraction of the maximum
surplus the sources could deliver), pressure-adequacy statistics, and the
supply ratio under failures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hydraulics import (
    GGASolver,
    Reservoir,
    SteadyStateSolution,
    Tank,
    WaterNetwork,
)


@dataclass(frozen=True)
class ResilienceReport:
    """Network-state health summary.

    Attributes:
        todini_index: surplus-power ratio in [<=1]; higher is better,
            negative means demands outstrip delivered energy.
        min_pressure: worst junction pressure head (m).
        pressure_deficit_nodes: junctions below the required pressure.
        supply_ratio: delivered / requested demand (1.0 under DDA unless
            leaks steal supply in PDD mode).
        total_leak_flow: water lost through emitters (m^3/s).
    """

    todini_index: float
    min_pressure: float
    pressure_deficit_nodes: int
    supply_ratio: float
    total_leak_flow: float


def todini_index(
    network: WaterNetwork,
    solution: SteadyStateSolution,
    required_pressure: float | None = None,
) -> float:
    """Todini (2000) resilience index, extended for pumped systems.

    ``I_r = sum_i q_i (h_i - h_req,i)
           / (sum_k Q_k H_k + sum_p Q_p h_gain,p - sum_i q_i h_req,i)``

    Numerator: surplus power at the demand nodes.  Denominator: input
    power from sources *plus pumps* minus the minimum power demands
    require — without the pump term, low-head pumped sources make the
    denominator negative and the index meaningless.
    """
    h_req = (
        required_pressure
        if required_pressure is not None
        else network.options.required_pressure
    )
    surplus = 0.0
    required = 0.0
    for junction in network.junctions():
        demand = solution.node_demand[junction.name]
        if demand <= 0:
            continue
        head = solution.node_head[junction.name]
        head_required = junction.elevation + h_req
        surplus += demand * (head - head_required)
        required += demand * head_required
    source_power = 0.0
    for node in network.nodes.values():
        if isinstance(node, (Reservoir, Tank)):
            outflow = 0.0
            for link in network.links.values():
                flow = solution.link_flow[link.name]
                if link.start_node == node.name:
                    outflow += flow
                elif link.end_node == node.name:
                    outflow -= flow
            source_power += max(outflow, 0.0) * solution.node_head[node.name]
    for pump in network.pumps():
        flow = solution.link_flow[pump.name]
        if flow <= 0:
            continue
        gain = (
            solution.node_head[pump.end_node] - solution.node_head[pump.start_node]
        )
        source_power += flow * max(gain, 0.0)
    denominator = source_power - required
    if abs(denominator) < 1e-12:
        return 0.0
    return surplus / denominator


def resilience_report(
    network: WaterNetwork,
    solution: SteadyStateSolution | None = None,
    required_pressure: float | None = None,
) -> ResilienceReport:
    """Full health summary for a (possibly failing) network state."""
    if solution is None:
        solution = GGASolver(network).solve()
    h_req = (
        required_pressure
        if required_pressure is not None
        else network.options.required_pressure
    )
    pressures = [
        solution.node_pressure[j.name] for j in network.junctions()
    ]
    requested = sum(
        j.base_demand * network.options.demand_multiplier
        for j in network.junctions()
    )
    delivered = sum(
        solution.node_demand[j.name] for j in network.junctions()
    )
    return ResilienceReport(
        todini_index=todini_index(network, solution, required_pressure),
        min_pressure=float(min(pressures)) if pressures else 0.0,
        pressure_deficit_nodes=sum(1 for p in pressures if p < h_req),
        supply_ratio=delivered / requested if requested > 0 else 1.0,
        total_leak_flow=solution.total_leak_flow(),
    )
