"""Network analysis: baselines, isolation planning, resilience metrics."""

from .centrality import CentralityResult, CurrentFlowLocalizer
from .isolation import IsolationAnalyzer, IsolationSegment, ShutdownPlan
from .resilience import ResilienceReport, resilience_report, todini_index

__all__ = [
    "CentralityResult",
    "CurrentFlowLocalizer",
    "IsolationAnalyzer",
    "IsolationSegment",
    "ResilienceReport",
    "ShutdownPlan",
    "resilience_report",
    "todini_index",
]
