"""Current-flow (electrical) leak-localization baseline.

The paper's related work localizes leaks with current-flow centrality
over very few meters (Narayanan et al. "One meter to find them all",
Abbas et al. multilevel sensing).  The idea: linearise the hydraulic
network into a resistor graph; a leak at node ``v`` behaves like a
current sink, and the resulting edge-current pattern is the Laplacian
response to injecting at the sources and extracting at ``v``.  Candidates
are ranked by the correlation between their predicted meter response and
the observed flow changes.

This gives a second baseline besides enumeration: much faster (one
Laplacian factorisation amortised over all candidates) but, as the paper
notes, "limited by specific contexts (e.g. single leak ...)".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..hydraulics import GGASolver, Pipe, Reservoir, Tank, WaterNetwork
from ..hydraulics.headloss import HW_EXPONENT, hazen_williams_resistance
from ..sensing import SensorNetwork, SensorType


@dataclass
class CentralityResult:
    """Ranking produced by the current-flow localizer.

    Attributes:
        ranking: (node, score) pairs, best first; higher = better match.
        leak_node: the top-ranked node.
    """

    ranking: list[tuple[str, float]]

    @property
    def leak_node(self) -> str:
        return self.ranking[0][0]

    def rank_of(self, node: str) -> int:
        """1-based rank of a node (len(ranking)+1 when absent)."""
        for i, (name, _score) in enumerate(self.ranking, start=1):
            if name == node:
                return i
        return len(self.ranking) + 1


class CurrentFlowLocalizer:
    """Ranks leak candidates via linearised (electrical) flow responses.

    Args:
        network: the water network.
        sensor_network: deployment; only FLOW sensors participate (the
            method is flow-meter based), pressure sensors are ignored.

    Raises:
        ValueError: when the deployment has no flow meters.
    """

    def __init__(self, network: WaterNetwork, sensor_network: SensorNetwork):
        self.network = network
        self.flow_sensors = [
            s for s in sensor_network.sensors if s.sensor_type is SensorType.FLOW
        ]
        if not self.flow_sensors:
            raise ValueError("current-flow localization needs flow meters")
        self._build_laplacian()

    def _build_laplacian(self) -> None:
        network = self.network
        # Linearise each link around the operating point: conductance
        # g = 1 / (d hL/dq) evaluated at the baseline flow.
        baseline = GGASolver(network).solve()
        names = network.node_names()
        self._node_index = {n: i for i, n in enumerate(names)}
        self._names = names
        n = len(names)
        rows, cols, data = [], [], []
        self._edges: list[tuple[str, int, int, float]] = []
        for link in network.links.values():
            i = self._node_index[link.start_node]
            j = self._node_index[link.end_node]
            if isinstance(link, Pipe):
                r = hazen_williams_resistance(link.length, link.diameter, link.roughness)
                q0 = max(abs(baseline.link_flow[link.name]), 1e-4)
                gradient = HW_EXPONENT * r * q0 ** (HW_EXPONENT - 1.0)
            else:
                gradient = 1e-2  # pumps/valves: stiff, low-loss conduits
            conductance = 1.0 / max(gradient, 1e-9)
            rows += [i, j, i, j]
            cols += [i, j, j, i]
            data += [conductance, conductance, -conductance, -conductance]
            self._edges.append((link.name, i, j, conductance))
        laplacian = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsc()
        # Ground the fixed-head nodes (sources supply the leak current).
        self._source_indices = [
            self._node_index[node.name]
            for node in network.nodes.values()
            if isinstance(node, (Reservoir, Tank))
        ]
        grounded = laplacian.tolil()
        for s in self._source_indices:
            grounded.rows[s] = [s]
            grounded.data[s] = [1.0]
        self._solve = spla.factorized(grounded.tocsc())

    # ------------------------------------------------------------------
    def predicted_meter_response(self, leak_node: str) -> np.ndarray:
        """Edge currents at the meters for a unit leak at ``leak_node``."""
        index = self._node_index.get(leak_node)
        if index is None:
            raise ValueError(f"unknown node {leak_node!r}")
        rhs = np.zeros(len(self._names))
        rhs[index] = -1.0  # unit extraction; sources are grounded
        potential = self._solve(rhs)
        meter_edges = {s.target for s in self.flow_sensors}
        response = []
        for name, i, j, conductance in self._edges:
            if name in meter_edges:
                response.append(conductance * (potential[i] - potential[j]))
        return np.array(response)

    def observed_meter_delta(self, delta_by_key: dict[str, float]) -> np.ndarray:
        """Extract the flow-meter deltas from a keyed Δ mapping."""
        return np.array(
            [delta_by_key[f"flow:{s.target}"] for s in self.flow_sensors]
        )

    def localize(self, observed_flow_delta: np.ndarray) -> CentralityResult:
        """Rank every junction by response correlation with observations.

        Args:
            observed_flow_delta: Δ flow per deployed meter (signed,
                ordered like the deployment's flow sensors).
        """
        observed = np.asarray(observed_flow_delta, dtype=float)
        if observed.shape != (len(self.flow_sensors),):
            raise ValueError(
                f"expected {len(self.flow_sensors)} meter deltas, got {observed.shape}"
            )
        norm_observed = np.linalg.norm(observed)
        scores = []
        for node in self.network.junction_names():
            predicted = self.predicted_meter_response(node)
            denominator = np.linalg.norm(predicted) * norm_observed
            if denominator <= 1e-15:
                scores.append((node, 0.0))
                continue
            scores.append((node, float(predicted @ observed / denominator)))
        scores.sort(key=lambda item: item[1], reverse=True)
        return CentralityResult(ranking=scores)
