"""Monte Carlo robustness campaigns and localization-aware placement.

The paper evaluates at one noise level, one sensor layout and one leak
count per figure; an operator deploying this asks the question those
figures skip: *how fast does localization degrade as conditions drift?*
This package answers it, Branitz2-style (machine-readable validation
reports driven by convergence-checked Monte Carlo sweeps):

* :mod:`~repro.robustness.axes` — the perturbation axes (demand
  uncertainty, sensor dropout/bias, telemetry noise, concurrent-leak
  count) and the adaptive-draw campaign configuration;
* :mod:`~repro.robustness.campaign` — :class:`CampaignRunner`, sweeping
  the grid with SeedSequence-pure per-cell case streams over the
  batched hydraulic engine (``workers=N`` is bit-identical to serial);
* :mod:`~repro.robustness.report` — :class:`RobustnessReport`, the
  deterministic JSON artifact ``repro verify`` pins as a golden;
* :mod:`~repro.robustness.placement` — :func:`iterative_placement`,
  the "just one more sensor" greedy search maximising campaign-measured
  hit@1 (arXiv:2406.19900).

CLI: ``repro robustness run | report | place``; benchmarked by
``repro bench --robustness``.
"""

from .axes import (
    AXIS_NAMES,
    AxisSpec,
    CampaignConfig,
    Cell,
    DEFAULT_AXES,
    NOMINAL_VALUES,
    QUICK_AXES,
    quick_config,
)
from .campaign import (
    CampaignRunner,
    DrawCase,
    campaign_dataset,
    draw_case,
    run_campaign,
    train_campaign_model,
)
from .placement import PlacementResult, PlacementStep, iterative_placement
from .report import SCHEMA, CellResult, RobustnessReport

__all__ = [
    "AXIS_NAMES",
    "AxisSpec",
    "CampaignConfig",
    "CampaignRunner",
    "Cell",
    "CellResult",
    "DEFAULT_AXES",
    "DrawCase",
    "NOMINAL_VALUES",
    "PlacementResult",
    "PlacementStep",
    "QUICK_AXES",
    "RobustnessReport",
    "SCHEMA",
    "campaign_dataset",
    "draw_case",
    "iterative_placement",
    "quick_config",
    "run_campaign",
    "train_campaign_model",
]
