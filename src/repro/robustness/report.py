"""Machine-readable robustness reports.

A :class:`RobustnessReport` is the campaign's only output: per-axis
accuracy curves (hamming score, hit@1, hit@3, detection rate/latency),
per-cell convergence metadata, and a pass/fail verdict against the
config's declared thresholds — the shape of Branitz2's
``design_validator`` reports, applied to leak localization.

The report is deliberately a pure function of ``(network, config,
seed)``: wall-clock time and worker counts are *not* part of it, so a
``workers=4`` campaign serializes bit-identically to a serial one and
the epanet report can be committed as a tolerance-0.0 golden.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Report schema identifier, bumped on any structural change.
SCHEMA = "repro.robustness/1"


@dataclass(frozen=True)
class CellResult:
    """Converged metrics for one campaign grid cell.

    Attributes:
        axis: swept axis name (``"nominal"`` for the all-nominal cell).
        value: the swept axis's value at this cell.
        values: full axis -> value mapping the cell ran under.
        n_draws: Monte Carlo draws evaluated (failed ones included).
        n_failed: draws whose perturbed hydraulics did not converge.
        batches: adaptive batches run before the stop rule fired.
        hit1: fraction of evaluable draws whose top-1 suspect is a true
            leak node (the campaign's primary metric).
        hit3: ditto for the top-3 suspect set intersecting the truth.
        accuracy: mean per-draw hamming score of the predicted label
            vector against the truth.
        detection_rate: fraction of draws where at least one live sensor
            Δ cleared the 3-sigma detection threshold.
        detection_latency_slots: slots from onset to the evaluated
            reading window for detected draws (the campaign evaluates
            one fixed window, so this is the window length — reported
            per cell for schema stability, null when nothing detected).
        ci_halfwidth: final CI half-width of the hit@1 estimate.
        converged: the CI target was met before the draw cap.
    """

    axis: str
    value: float
    values: dict[str, float]
    n_draws: int
    n_failed: int
    batches: int
    hit1: float
    hit3: float
    accuracy: float
    detection_rate: float
    detection_latency_slots: float | None
    ci_halfwidth: float
    converged: bool


@dataclass(frozen=True)
class RobustnessReport:
    """One campaign's full, deterministic output.

    Attributes:
        schema: :data:`SCHEMA`.
        network: catalog name (or caller-supplied label).
        seed: campaign master seed.
        config: :meth:`~repro.robustness.axes.CampaignConfig.as_dict`
            echo — consumers and the golden gate key off it.
        sensors: deployed sensor keys the campaign certified.
        nominal: the all-nominal cell's :class:`CellResult`.
        axes: per-axis curves: ``{"axis", "values", "cells"}`` entries
            in sweep order.
        thresholds: the declared pass/fail floors.
        checks: named boolean outcomes against the thresholds.
        passed: conjunction of all checks.
        convergence: campaign-level convergence metadata (total draws,
            failed draws, converged cell count).
    """

    network: str
    seed: int
    config: dict
    sensors: list[str]
    nominal: CellResult
    axes: list[dict] = field(default_factory=list)
    thresholds: dict = field(default_factory=dict)
    checks: dict = field(default_factory=dict)
    passed: bool = False
    convergence: dict = field(default_factory=dict)
    schema: str = SCHEMA

    # ------------------------------------------------------------------
    def cells(self) -> list[CellResult]:
        """Every cell in enumeration order, nominal first."""
        out = [self.nominal]
        for axis in self.axes:
            out.extend(axis["cells"])
        return out

    def grid(self) -> list[list[float]]:
        """The accuracy grid the golden gate pins at tolerance 0.0.

        One row per cell in enumeration order:
        ``[accuracy, hit1, hit3, detection_rate, n_draws]``.
        """
        return [
            [
                cell.accuracy,
                cell.hit1,
                cell.hit3,
                cell.detection_rate,
                float(cell.n_draws),
            ]
            for cell in self.cells()
        ]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping (deterministic: no wall-clock content)."""
        payload = asdict(self)
        payload["axes"] = [
            {
                "axis": axis["axis"],
                "values": list(axis["values"]),
                "cells": [asdict(cell) for cell in axis["cells"]],
            }
            for axis in self.axes
        ]
        return payload

    def to_json(self) -> str:
        """Canonical serialized form (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def write(self, path: str | Path) -> Path:
        """Serialize to ``path``; parent directories are created."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "RobustnessReport":
        """Rebuild a report from :meth:`to_dict` output.

        Raises:
            ValueError: for an unrecognised schema identifier.
        """
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported robustness report schema {payload.get('schema')!r}"
            )
        axes = [
            {
                "axis": axis["axis"],
                "values": list(axis["values"]),
                "cells": [CellResult(**cell) for cell in axis["cells"]],
            }
            for axis in payload["axes"]
        ]
        return cls(
            network=payload["network"],
            seed=payload["seed"],
            config=payload["config"],
            sensors=list(payload["sensors"]),
            nominal=CellResult(**payload["nominal"]),
            axes=axes,
            thresholds=dict(payload["thresholds"]),
            checks=dict(payload["checks"]),
            passed=bool(payload["passed"]),
            convergence=dict(payload["convergence"]),
        )

    @classmethod
    def read(cls, path: str | Path) -> "RobustnessReport":
        """Load a serialized report from disk."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def lines(self) -> list[str]:
        """Human-readable rendering, one cell per line."""
        out = [
            f"robustness report — network {self.network}, seed {self.seed} "
            f"({self.schema})",
            f"sensors: {len(self.sensors)} deployed, "
            f"classifier {self.config.get('classifier')}, "
            f"n_train {self.config.get('n_train')}",
        ]
        header = (
            f"  {'axis':<14s} {'value':>7s} {'hit@1':>6s} {'hit@3':>6s} "
            f"{'acc':>6s} {'detect':>6s} {'draws':>5s} {'ci±':>6s} conv"
        )

        def row(cell: CellResult) -> str:
            return (
                f"  {cell.axis:<14s} {cell.value:>7.3g} {cell.hit1:>6.3f} "
                f"{cell.hit3:>6.3f} {cell.accuracy:>6.3f} "
                f"{cell.detection_rate:>6.3f} {cell.n_draws:>5d} "
                f"{cell.ci_halfwidth:>6.3f} {'yes' if cell.converged else 'CAP'}"
            )

        out.append(header)
        out.append(row(self.nominal))
        for axis in self.axes:
            out.extend(row(cell) for cell in axis["cells"])
        conv = self.convergence
        out.append(
            f"convergence: {conv.get('total_draws', 0)} draws "
            f"({conv.get('failed_draws', 0)} failed), "
            f"{conv.get('converged_cells', 0)}/{conv.get('n_cells', 0)} cells "
            f"met the CI target"
        )
        for name, ok in sorted(self.checks.items()):
            out.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        out.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return out

    def render_text(self) -> str:
        """The :meth:`lines` rendering as one string."""
        return "\n".join(self.lines())


__all__ = ["SCHEMA", "CellResult", "RobustnessReport"]
