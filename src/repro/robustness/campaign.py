"""The Monte Carlo campaign runner.

A campaign certifies one trained deployment: for every cell of the
perturbation grid (see :mod:`~repro.robustness.axes`) it draws failure
cases under that cell's drift conditions, pushes them through the
*batched* hydraulic engine and the Phase-II inference stack, and
accumulates localization metrics until the hit@1 estimate converges.

Determinism contract (the part ``repro verify`` enforces):

* cell ``i`` draws from SeedSequence child ``i`` of the campaign seed
  (:func:`~repro.verify.streams.case_streams` — the fuzzer's
  discipline); draw ``j`` of a cell comes from sub-child ``j``
  (:func:`~repro.verify.streams.substreams`), so batch boundaries never
  leak into the stream;
* each draw consumes its RNG in a fixed order — start slot, leak
  locations, leak sizes, demand factors, dropout uniforms, bias
  normals, then reading noise — so every case replays in isolation;
* cells are embarrassingly parallel pure functions; ``workers=N``
  assembles the identical report a serial run does, bit for bit.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..core import LeakInferenceEngine, ProfileModel
from ..failures import FailureScenario, LeakEvent
from ..failures.events import DEFAULT_EC_RANGE
from ..hydraulics import WaterNetwork
from ..networks import build_network
from ..sensing import (
    FLOW_NOISE_STD,
    PRESSURE_NOISE_STD,
    SensorNetwork,
    SteadyStateTelemetry,
    kmedoids_placement,
    percentage_to_count,
    sensor_column_indices,
)
from ..sensing.optimization import DETECTION_SIGMAS
from ..verify.streams import case_streams, stream_rng, substreams
from .axes import CampaignConfig, Cell, quick_config
from .report import CellResult, RobustnessReport


def _candidate_noise_std(telemetry: SteadyStateTelemetry) -> np.ndarray:
    """Per-candidate reading-noise stds (pressure nodes, then flow links)."""
    return np.concatenate(
        [
            np.full(telemetry._n_nodes, PRESSURE_NOISE_STD),
            np.full(telemetry._n_links, FLOW_NOISE_STD),
        ]
    )


@dataclass(frozen=True)
class DrawCase:
    """One Monte Carlo draw, fully materialised before hydraulics.

    Attributes:
        scenario: the concurrent-leak failure to localize.
        factors: per-junction multiplicative demand factors
            (``GGASolver.junction_names`` order).
        dropped: per-*candidate* dead-device mask — indexed by candidate
            column so the same draw is meaningful under any layout (the
            placement search compares layouts on identical draws).
        bias: per-candidate systematic reading offset (same indexing).
    """

    scenario: FailureScenario
    factors: np.ndarray
    dropped: np.ndarray
    bias: np.ndarray


def draw_case(
    rng: np.random.Generator,
    values: dict[str, float],
    junction_names: list[str],
    n_solver_junctions: int,
    noise_std: np.ndarray,
    slots_per_day: int = 96,
    ec_range: tuple[float, float] = DEFAULT_EC_RANGE,
) -> DrawCase:
    """Materialise one draw from a cell's per-draw stream.

    The RNG consumption order is part of the campaign's determinism
    contract (see the module docstring); reordering any draw here is a
    breaking change that invalidates committed robustness goldens.
    """
    n_candidates = len(noise_std)
    start_slot = int(rng.integers(1, slots_per_day))
    count = min(int(values["leak_count"]), len(junction_names))
    locations = rng.choice(junction_names, size=count, replace=False)
    low, high = ec_range
    sizes = np.exp(rng.uniform(np.log(low), np.log(high), size=count))
    events = tuple(
        LeakEvent(location=str(loc), size=float(size), start_slot=start_slot)
        for loc, size in zip(locations, sizes)
    )
    scenario = FailureScenario(events=events, start_slot=start_slot)
    sigma = float(values["demand_sigma"])
    if sigma > 0:
        # Mean-preserving lognormal: E[exp(sigma z - sigma^2/2)] = 1.
        z = rng.standard_normal(n_solver_junctions)
        factors = np.exp(sigma * z - 0.5 * sigma * sigma)
    else:
        factors = np.ones(n_solver_junctions)
    rate = float(values["sensor_dropout"])
    if rate > 0:
        dropped = rng.random(n_candidates) < rate
    else:
        dropped = np.zeros(n_candidates, dtype=bool)
    bias_sigmas = float(values["sensor_bias"])
    if bias_sigmas > 0:
        bias = bias_sigmas * noise_std * rng.standard_normal(n_candidates)
    else:
        bias = np.zeros(n_candidates)
    return DrawCase(scenario=scenario, factors=factors, dropped=dropped, bias=bias)


def _evaluate_cell(
    telemetry: SteadyStateTelemetry,
    engine: LeakInferenceEngine,
    columns: np.ndarray,
    noise_std: np.ndarray,
    config: CampaignConfig,
    seed: int,
    n_cells: int,
    cell: Cell,
) -> CellResult:
    """Run one grid cell to convergence; a pure function of its inputs."""
    values = cell.values
    noise_scale = float(values["noise_scale"])
    stream = case_streams(seed, n_cells)[cell.index]
    profile = engine.profile
    junction_names = profile.junction_names
    n_solver_junctions = telemetry.slot_demand_array(0).shape[0]
    window = np.sqrt(1.0 + 1.0 / max(config.elapsed_slots, 1))
    threshold = DETECTION_SIGMAS * noise_std[columns] * noise_scale * window

    hit1, hit3, accuracy, detected = [], [], [], []
    drawn = 0
    n_failed = 0
    batches = 0
    halfwidth = float("inf")
    while True:
        batch = min(config.batch_draws, config.max_draws - drawn)
        if batch <= 0:
            break
        cases, rngs = [], []
        for child in substreams(stream, drawn, batch):
            rng = stream_rng(child)
            cases.append(
                draw_case(
                    rng,
                    values,
                    junction_names,
                    n_solver_junctions,
                    noise_std,
                    slots_per_day=telemetry.slots_per_day,
                )
            )
            rngs.append(rng)
        deltas = telemetry.perturbed_deltas_batch(
            [case.scenario for case in cases],
            np.stack([case.factors for case in cases]),
            elapsed_slots=config.elapsed_slots,
            pressure_noise=PRESSURE_NOISE_STD * noise_scale,
            flow_noise=FLOW_NOISE_STD * noise_scale,
            rngs=rngs,
            allow_failures=True,
        )
        rows, row_cases = [], []
        for k, case in enumerate(cases):
            if np.isnan(deltas[k, 0]):
                n_failed += 1
                continue
            feature = deltas[k, columns] + case.bias[columns]
            live = ~case.dropped[columns]
            detected.append(bool(np.any(np.abs(feature[live]) > threshold[live])))
            feature = feature.copy()
            feature[~live] = np.nan
            rows.append(feature)
            row_cases.append(case)
        if rows:
            results = engine.infer_batch(np.vstack(rows))
            for case, result in zip(row_cases, results):
                truth = case.scenario.leak_nodes
                suspects = [name for name, _ in result.top_suspects(3)]
                hit1.append(suspects[0] in truth)
                hit3.append(bool(truth.intersection(suspects)))
                accuracy.append(
                    float(
                        np.mean(
                            result.label_vector()
                            == case.scenario.label_vector(junction_names)
                        )
                    )
                )
        drawn += batch
        batches += 1
        n_ok = len(hit1)
        if n_ok:
            p = float(np.mean(hit1))
            halfwidth = config.ci_z * np.sqrt(p * (1.0 - p) / n_ok)
        if drawn >= config.min_draws and (
            halfwidth <= config.ci_halfwidth or drawn >= config.max_draws
        ):
            break
    rate = float(np.mean(detected)) if detected else 0.0
    return CellResult(
        axis=cell.axis,
        value=cell.value,
        values=dict(values),
        n_draws=drawn,
        n_failed=n_failed,
        batches=batches,
        hit1=float(np.mean(hit1)) if hit1 else 0.0,
        hit3=float(np.mean(hit3)) if hit3 else 0.0,
        accuracy=float(np.mean(accuracy)) if accuracy else 0.0,
        detection_rate=rate,
        detection_latency_slots=float(config.elapsed_slots) if rate > 0 else None,
        ci_halfwidth=float(halfwidth) if np.isfinite(halfwidth) else float("inf"),
        converged=bool(halfwidth <= config.ci_halfwidth),
    )


# ----------------------------------------------------------------------
# process-pool plumbing: workers evaluate whole cells, which are pure
# functions of (network, profile, config, seed, cell index) — so the
# assignment of cells to processes cannot affect any result.
# ----------------------------------------------------------------------
_WORKER_STATE: dict = {}


def _campaign_worker_init(network, profile, config, seed, n_cells, baselines):
    """Pool initializer: build per-process telemetry/inference state."""
    telemetry = SteadyStateTelemetry(network)
    telemetry.preload_baselines(baselines)
    _WORKER_STATE.update(
        telemetry=telemetry,
        engine=LeakInferenceEngine(profile),
        columns=sensor_column_indices(
            telemetry.candidate_keys(), profile.sensor_network
        ),
        noise_std=_candidate_noise_std(telemetry),
        config=config,
        seed=seed,
        n_cells=n_cells,
    )


def _campaign_worker_cell(cell: Cell) -> tuple[int, CellResult]:
    """Evaluate one cell inside a pool worker."""
    s = _WORKER_STATE
    return cell.index, _evaluate_cell(
        s["telemetry"],
        s["engine"],
        s["columns"],
        s["noise_std"],
        s["config"],
        s["seed"],
        s["n_cells"],
        cell,
    )


class CampaignRunner:
    """Sweeps the perturbation grid for one fitted deployment.

    Args:
        network: the certified network.
        profile: a *fitted* Phase-I :class:`~repro.core.ProfileModel`
            (see :func:`train_campaign_model`).
        config: campaign knobs; defaults to :class:`CampaignConfig`.
        seed: campaign master seed (independent of the training seed).
        network_name: label recorded in the report (catalog name).
    """

    def __init__(
        self,
        network: WaterNetwork,
        profile: ProfileModel,
        config: CampaignConfig | None = None,
        seed: int = 0,
        network_name: str = "custom",
    ):
        self.network = network
        self.profile = profile
        self.config = config or CampaignConfig()
        self.seed = seed
        self.network_name = network_name

    def run(self, workers: int = 1) -> RobustnessReport:
        """Evaluate every grid cell and assemble the report.

        ``workers > 1`` fans cells out over a process pool; the report
        is bit-identical to a serial run (cells are pure functions and
        results are reassembled in cell order).
        """
        cells = self.config.cells()
        telemetry = SteadyStateTelemetry(self.network)
        baselines = telemetry.compute_baselines(range(telemetry.slots_per_day))
        if workers and workers > 1:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_campaign_worker_init,
                initargs=(
                    self.network,
                    self.profile,
                    self.config,
                    self.seed,
                    len(cells),
                    baselines,
                ),
            ) as pool:
                by_index = dict(pool.map(_campaign_worker_cell, cells))
        else:
            engine = LeakInferenceEngine(self.profile)
            columns = sensor_column_indices(
                telemetry.candidate_keys(), self.profile.sensor_network
            )
            noise_std = _candidate_noise_std(telemetry)
            by_index = {
                cell.index: _evaluate_cell(
                    telemetry,
                    engine,
                    columns,
                    noise_std,
                    self.config,
                    self.seed,
                    len(cells),
                    cell,
                )
                for cell in cells
            }
        ordered = [by_index[i] for i in range(len(cells))]
        return self._assemble(ordered)

    def _assemble(self, ordered: list[CellResult]) -> RobustnessReport:
        """Group cell results per axis and judge the declared thresholds."""
        config = self.config
        nominal = ordered[0]
        axes = []
        cursor = 1
        for axis in config.axes:
            count = len(axis.values)
            axes.append(
                {
                    "axis": axis.name,
                    "values": [float(v) for v in axis.values],
                    "cells": ordered[cursor : cursor + count],
                }
            )
            cursor += count
        total_draws = sum(c.n_draws for c in ordered)
        failed = sum(c.n_failed for c in ordered)
        checks = {
            "nominal_hit1": nominal.hit1 >= config.min_nominal_hit1,
            "cell_accuracy": all(
                c.accuracy >= config.min_cell_accuracy for c in ordered
            ),
            "hydraulic_failures": failed <= 0.2 * total_draws,
        }
        return RobustnessReport(
            network=self.network_name,
            seed=self.seed,
            config=config.as_dict(),
            sensors=self.profile.sensor_network.keys(),
            nominal=nominal,
            axes=axes,
            thresholds={
                "min_nominal_hit1": config.min_nominal_hit1,
                "min_cell_accuracy": config.min_cell_accuracy,
                "max_failed_draw_fraction": 0.2,
            },
            checks=checks,
            passed=all(checks.values()),
            convergence={
                "total_draws": total_draws,
                "failed_draws": failed,
                "n_cells": len(ordered),
                "converged_cells": sum(c.converged for c in ordered),
                "min_draws": config.min_draws,
                "max_draws": config.max_draws,
                "ci_halfwidth_target": config.ci_halfwidth,
            },
        )


def campaign_dataset(
    network: WaterNetwork,
    config: CampaignConfig,
    seed: int = 0,
    network_name: str | None = None,
):
    """The campaign model's training dataset, via the dataset cache.

    A catalog ``network_name`` routes through
    :func:`repro.experiments.common.cached_dataset` (per-process memo +
    optional ``REPRO_DATASET_CACHE`` disk bundles); anonymous networks
    generate directly.  Both paths use ``engine="batched"``, which is
    bit-identical to sequential generation.
    """
    if network_name is not None:
        from ..experiments.common import cached_dataset

        return cached_dataset(
            network_name,
            config.n_train,
            config.train_kind,
            seed,
            elapsed_slots=config.elapsed_slots,
            max_events=config.max_events,
            engine="batched",
        )
    from ..datasets import generate_dataset

    return generate_dataset(
        network,
        config.n_train,
        kind=config.train_kind,
        seed=seed,
        elapsed_slots=config.elapsed_slots,
        max_events=config.max_events,
        engine="batched",
    )


def train_campaign_model(
    network: WaterNetwork,
    config: CampaignConfig,
    seed: int = 0,
    sensors: SensorNetwork | None = None,
    network_name: str | None = None,
) -> ProfileModel:
    """Phase-I model for a campaign: k-medoids layout + cached dataset."""
    if sensors is None:
        n_sensors = percentage_to_count(network, config.iot_percent)
        sensors = kmedoids_placement(network, n_sensors, seed=seed)
    dataset = campaign_dataset(network, config, seed=seed, network_name=network_name)
    return ProfileModel(
        network, sensors, classifier=config.classifier, random_state=seed
    ).fit(dataset)


def run_campaign(
    network_name: str,
    config: CampaignConfig | None = None,
    seed: int = 0,
    workers: int = 1,
    quick: bool = False,
    sensors: SensorNetwork | None = None,
) -> RobustnessReport:
    """Train the campaign model and run the sweep on a catalog network.

    Args:
        network_name: catalog entry (``repro networks`` lists them).
        config: explicit campaign config; wins over ``quick``.
        seed: campaign master seed.
        workers: process-pool width (``N`` is bit-identical to serial).
        quick: use :func:`~repro.robustness.axes.quick_config`.
        sensors: explicit deployment; default is the config's k-medoids
            layout.
    """
    if config is None:
        config = quick_config() if quick else CampaignConfig()
    network = build_network(network_name)
    profile = train_campaign_model(
        network, config, seed=seed, sensors=sensors, network_name=network_name
    )
    runner = CampaignRunner(
        network, profile, config=config, seed=seed, network_name=network_name
    )
    return runner.run(workers=workers)


__all__ = [
    "CampaignRunner",
    "DrawCase",
    "campaign_dataset",
    "draw_case",
    "run_campaign",
    "train_campaign_model",
]
