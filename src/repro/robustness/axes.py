"""Perturbation axes and campaign configuration.

A robustness campaign measures localization quality as a function of
*one* deployment-drift axis at a time, everything else held at its
nominal value — the axis-swept accuracy surfaces the paper's fixed-point
evaluation never drew.  Five axes are modelled:

``demand_sigma``
    Demand-forecast error: every junction demand is scaled by an i.i.d.
    multiplicative lognormal factor ``exp(sigma * z - sigma^2 / 2)``
    (mean-preserving), perturbing baseline and leak states alike.
``sensor_dropout``
    Probability that a deployed device is dead for a case; dead sensors
    surface as NaN feature columns, exactly like the streaming runtime's
    masked sensors, and the profile model imputes them as no-evidence.
``sensor_bias``
    Systematic mis-calibration: each surviving sensor carries a constant
    offset of ``bias * noise_std * z`` (one ``z`` per sensor per case) —
    an offset the Δ-feature does *not* cancel because it enters between
    the paired readings.
``noise_scale``
    Multiplier on both modality noise stds (pressure and flow).
``leak_count``
    Exact number of concurrent leak events per scenario (the paper
    varies this only between figures).

The convergence policy is Branitz2-style: per cell, draws accumulate in
fixed batches until the hit@1 estimate's normal-approximation CI
half-width falls under ``ci_halfwidth`` or ``max_draws`` hits; both the
draw count and the final half-width land in the report's convergence
metadata.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

#: Recognised axis names, in canonical sweep order.
AXIS_NAMES = (
    "demand_sigma",
    "sensor_dropout",
    "sensor_bias",
    "noise_scale",
    "leak_count",
)

#: Value each axis takes when another axis is being swept.
NOMINAL_VALUES = {
    "demand_sigma": 0.0,
    "sensor_dropout": 0.0,
    "sensor_bias": 0.0,
    "noise_scale": 1.0,
    "leak_count": 2.0,
}


@dataclass(frozen=True)
class AxisSpec:
    """One swept perturbation axis.

    Attributes:
        name: one of :data:`AXIS_NAMES`.
        values: the sweep grid for this axis; every other axis sits at
            its :data:`NOMINAL_VALUES` entry while this one is swept.
    """

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.name not in AXIS_NAMES:
            raise ValueError(
                f"unknown axis {self.name!r}; expected one of {AXIS_NAMES}"
            )
        if not self.values:
            raise ValueError(f"axis {self.name!r} has an empty value grid")
        if self.name == "leak_count" and any(
            v < 1 or v != int(v) for v in self.values
        ):
            raise ValueError("leak_count values must be positive integers")
        if self.name != "leak_count" and any(v < 0 for v in self.values):
            raise ValueError(f"axis {self.name!r} values must be >= 0")


#: The default sweep: every axis, grids wide enough to show the knee.
DEFAULT_AXES = (
    AxisSpec("demand_sigma", (0.0, 0.05, 0.1, 0.2)),
    AxisSpec("sensor_dropout", (0.0, 0.1, 0.25)),
    AxisSpec("sensor_bias", (0.0, 1.0, 3.0)),
    AxisSpec("noise_scale", (0.5, 1.0, 2.0, 4.0)),
    AxisSpec("leak_count", (1.0, 2.0, 3.0, 5.0)),
)

#: The CI-sized sweep (still >= 3 axes, as the report contract requires).
QUICK_AXES = (
    AxisSpec("demand_sigma", (0.0, 0.1, 0.3)),
    AxisSpec("sensor_dropout", (0.0, 0.25)),
    AxisSpec("noise_scale", (1.0, 3.0)),
    AxisSpec("leak_count", (1.0, 3.0)),
)


@dataclass(frozen=True)
class Cell:
    """One point of the campaign grid.

    Attributes:
        axis: swept axis name, or ``"nominal"`` for the all-nominal cell.
        value: the swept axis's value (nominal cells repeat the nominal).
        index: position in the campaign's deterministic cell enumeration
            — the cell's SeedSequence stream index, so a cell's draws
            are a pure function of ``(campaign seed, index)``.
        values: the full axis-name -> value mapping for this cell.
    """

    axis: str
    value: float
    index: int
    values: dict[str, float] = field(hash=False, compare=True, default_factory=dict)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's output besides the seed.

    Attributes:
        axes: swept axes (the report requires at least 3).
        classifier: Phase-I technique for the campaign model.
        iot_percent: deployment penetration for the default (k-medoids)
            layout when no explicit sensor set is given.
        n_train: training scenarios for the campaign model.
        train_kind: scenario kind for training data.
        max_events: training ``U(1, m)`` bound.
        elapsed_slots: the paper's ``n`` for Δ-features.
        min_draws: draws every cell runs before convergence may stop it.
        max_draws: hard per-cell draw cap.
        batch_draws: draws added per adaptive batch (one batched solve).
        ci_halfwidth: stop once the hit@1 CI half-width is under this.
        ci_z: normal quantile for the CI (1.96 ~ 95%).
        min_nominal_hit1: pass/fail floor on the nominal cell's hit@1.
        min_cell_accuracy: pass/fail floor on every cell's hamming score.
    """

    axes: tuple[AxisSpec, ...] = DEFAULT_AXES
    classifier: str = "logistic"
    iot_percent: float = 40.0
    n_train: int = 200
    train_kind: str = "multi"
    max_events: int = 3
    elapsed_slots: int = 2
    min_draws: int = 24
    max_draws: int = 96
    batch_draws: int = 24
    ci_halfwidth: float = 0.08
    ci_z: float = 1.96
    min_nominal_hit1: float = 0.25
    min_cell_accuracy: float = 0.8

    def __post_init__(self) -> None:
        if len(self.axes) < 3:
            raise ValueError("a campaign needs at least 3 perturbation axes")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axes in {names}")
        if not 1 <= self.min_draws <= self.max_draws:
            raise ValueError("need 1 <= min_draws <= max_draws")
        if self.batch_draws < 1:
            raise ValueError("batch_draws must be >= 1")
        if self.ci_halfwidth <= 0:
            raise ValueError("ci_halfwidth must be > 0")

    def cells(self) -> list[Cell]:
        """The campaign grid: one nominal cell, then every axis value.

        The enumeration order is part of the campaign's contract — cell
        ``i`` draws from SeedSequence child ``i`` of the campaign seed,
        so reordering cells would change results.
        """
        out = [Cell("nominal", 0.0, 0, dict(NOMINAL_VALUES))]
        for axis in self.axes:
            for value in axis.values:
                values = dict(NOMINAL_VALUES)
                values[axis.name] = float(value)
                out.append(Cell(axis.name, float(value), len(out), values))
        return out

    def as_dict(self) -> dict:
        """JSON-ready config echo (golden invalidation compares this)."""
        payload = asdict(self)
        payload["axes"] = [
            {"name": axis.name, "values": list(axis.values)} for axis in self.axes
        ]
        return payload


def quick_config(**overrides) -> CampaignConfig:
    """The CI-sized campaign: trimmed axes and draw caps.

    ``n_train`` deliberately matches the full default so quick and full
    campaigns share one cached training dataset per network.
    """
    config = CampaignConfig(
        axes=QUICK_AXES,
        min_draws=8,
        max_draws=24,
        batch_draws=8,
        ci_halfwidth=0.12,
    )
    return replace(config, **overrides) if overrides else config


__all__ = [
    "AXIS_NAMES",
    "AxisSpec",
    "CampaignConfig",
    "Cell",
    "DEFAULT_AXES",
    "NOMINAL_VALUES",
    "QUICK_AXES",
    "quick_config",
]
