"""Localization-aware greedy sensor placement.

"Just One More Sensor is Enough" (arXiv:2406.19900) closes the loop the
detection-coverage greedy (:mod:`repro.sensing.optimization`) leaves
open: the sensor worth adding is the one that most improves *where* the
model localizes leaks, not merely whether anything trips a threshold.

:func:`iterative_placement` wraps the campaign runner's case machinery:
it materialises a fixed evaluation set — the first ``draws_per_cell``
draws of every campaign grid cell, i.e. a deterministic prefix of the
very draws a full campaign would score — solves their perturbed
hydraulics *once* for all |V| + |E| candidate columns, then greedily
adds the candidate whose refit model maximises campaign-measured hit@1
on that set.  Per-candidate cost is one Phase-I refit plus a batched
inference pass; no hydraulics re-run, and dropout/bias draws are indexed
by candidate column so every layout is judged on identical conditions.

The loop stops early when no candidate strictly improves hit@1, which
guarantees the returned layout scores at least the starting layout.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core import LeakInferenceEngine, ProfileModel
from ..hydraulics import WaterNetwork
from ..networks import build_network
from ..sensing import (
    FLOW_NOISE_STD,
    PRESSURE_NOISE_STD,
    SensorNetwork,
    SteadyStateTelemetry,
    full_candidate_set,
    kmedoids_placement,
    percentage_to_count,
    sensor_column_indices,
)
from ..verify.streams import case_streams, stream_rng, substreams
from .axes import CampaignConfig, quick_config
from .campaign import _candidate_noise_std, campaign_dataset, draw_case


@dataclass(frozen=True)
class PlacementStep:
    """One accepted greedy addition.

    Attributes:
        round: 1-based addition round.
        added: key of the sensor adopted this round.
        hit1_before: campaign-measured hit@1 entering the round.
        hit1_after: hit@1 with the addition adopted.
        candidates_evaluated: layouts scored this round.
    """

    round: int
    added: str
    hit1_before: float
    hit1_after: float
    candidates_evaluated: int


@dataclass(frozen=True)
class PlacementResult:
    """The reproducible trace of one placement search.

    Everything here is a pure function of ``(network, config, seed,
    add, max_candidates, draws_per_cell)`` — re-running with the same
    arguments reproduces the trace bit for bit.
    """

    network: str
    seed: int
    add_requested: int
    start_keys: list[str]
    final_keys: list[str]
    hit1_start: float
    hit1_final: float
    steps: list[PlacementStep] = field(default_factory=list)
    stopped_early: bool = False
    eval_draws: int = 0
    eval_failed: int = 0
    max_candidates: int = 0
    draws_per_cell: int = 0
    config: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return asdict(self)

    def to_json(self) -> str:
        """Canonical serialized form (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def lines(self) -> list[str]:
        """Human-readable trace, one round per line."""
        out = [
            f"placement search — network {self.network}, seed {self.seed}",
            f"start: {len(self.start_keys)} sensors, hit@1 {self.hit1_start:.3f} "
            f"({self.eval_draws} eval draws, {self.eval_failed} failed)",
        ]
        for step in self.steps:
            out.append(
                f"  round {step.round}: +{step.added}  "
                f"hit@1 {step.hit1_before:.3f} -> {step.hit1_after:.3f} "
                f"({step.candidates_evaluated} candidates)"
            )
        if self.stopped_early:
            out.append(
                f"  stopped after {len(self.steps)}/{self.add_requested} "
                f"additions: no candidate improved hit@1"
            )
        out.append(
            f"final: {len(self.final_keys)} sensors, hit@1 {self.hit1_final:.3f}"
        )
        return out

    def render_text(self) -> str:
        """The :meth:`lines` rendering as one string."""
        return "\n".join(self.lines())


def _evaluation_set(
    telemetry: SteadyStateTelemetry,
    config: CampaignConfig,
    seed: int,
    draws_per_cell: int,
    junction_names: list[str],
):
    """Solve the fixed full-candidate evaluation set once.

    Returns ``(F, bias, dropped, truths, labels, n_failed)`` where ``F``
    is the ``(E, |V|+|E|)`` noisy Δ matrix over the evaluable draws and
    the companion arrays carry each draw's candidate-indexed bias
    offsets, dead-device masks and ground truth.
    """
    cells = config.cells()
    noise_std = _candidate_noise_std(telemetry)
    n_solver_junctions = telemetry.slot_demand_array(0).shape[0]
    streams = case_streams(seed, len(cells))
    features, biases, drops, truths, labels = [], [], [], [], []
    n_failed = 0
    for cell in cells:
        cases, rngs = [], []
        for child in substreams(streams[cell.index], 0, draws_per_cell):
            rng = stream_rng(child)
            cases.append(
                draw_case(
                    rng,
                    cell.values,
                    junction_names,
                    n_solver_junctions,
                    noise_std,
                    slots_per_day=telemetry.slots_per_day,
                )
            )
            rngs.append(rng)
        noise_scale = float(cell.values["noise_scale"])
        deltas = telemetry.perturbed_deltas_batch(
            [case.scenario for case in cases],
            np.stack([case.factors for case in cases]),
            elapsed_slots=config.elapsed_slots,
            pressure_noise=PRESSURE_NOISE_STD * noise_scale,
            flow_noise=FLOW_NOISE_STD * noise_scale,
            rngs=rngs,
            allow_failures=True,
        )
        for k, case in enumerate(cases):
            if np.isnan(deltas[k, 0]):
                n_failed += 1
                continue
            features.append(deltas[k])
            biases.append(case.bias)
            drops.append(case.dropped)
            truths.append(case.scenario.leak_nodes)
            labels.append(case.scenario.label_vector(junction_names))
    if not features:
        raise RuntimeError(
            "every placement evaluation draw failed to converge; "
            "the network/config pair cannot be scored"
        )
    return (
        np.vstack(features),
        np.vstack(biases),
        np.vstack(drops),
        truths,
        labels,
        n_failed,
    )


def _score_layout(
    network: WaterNetwork,
    sensors: list,
    dataset,
    config: CampaignConfig,
    seed: int,
    candidate_keys: list[str],
    F: np.ndarray,
    bias: np.ndarray,
    dropped: np.ndarray,
    truths: list[set[str]],
) -> float:
    """Refit Phase I for one layout and score hit@1 on the eval set."""
    deployment = SensorNetwork(list(sensors), seed=seed)
    profile = ProfileModel(
        network, deployment, classifier=config.classifier, random_state=seed
    ).fit(dataset)
    engine = LeakInferenceEngine(profile)
    columns = sensor_column_indices(candidate_keys, deployment)
    X = F[:, columns] + bias[:, columns]
    X[dropped[:, columns]] = np.nan
    results = engine.infer_batch(X)
    hits = [
        result.top_suspects(1)[0][0] in truth
        for result, truth in zip(results, truths)
    ]
    return float(np.mean(hits))


def iterative_placement(
    network: WaterNetwork | str,
    add: int = 2,
    config: CampaignConfig | None = None,
    seed: int = 0,
    start_sensors: SensorNetwork | None = None,
    iot_percent: float = 10.0,
    max_candidates: int = 24,
    draws_per_cell: int = 6,
    quick: bool = False,
    network_name: str | None = None,
) -> tuple[SensorNetwork, PlacementResult]:
    """Greedily add the sensors that most improve campaign hit@1.

    Args:
        network: a catalog name or a built network.
        add: additions to attempt (fewer may be adopted — an addition
            must *strictly* improve hit@1, so the final layout never
            scores below the starting one).
        config: campaign config shaping the evaluation sweep; defaults
            to the quick or full default per ``quick``.
        seed: master seed for the starting layout, evaluation draws and
            refits.
        start_sensors: explicit starting deployment; default is the
            k-medoids layout at ``iot_percent``.
        iot_percent: starting-layout penetration when ``start_sensors``
            is None (deliberately sparse — the search is about what one
            more sensor buys).
        max_candidates: candidate pool cap per round; candidates are
            screened by mean signal-to-noise over the evaluation set
            (deterministic, key-tie-broken).
        draws_per_cell: evaluation draws per campaign grid cell.
        quick: use the CI-sized campaign config when ``config`` is None.
        network_name: dataset-cache label; inferred when ``network`` is
            a catalog name.

    Returns:
        ``(final deployment, trace)``.

    Raises:
        ValueError: for a non-positive ``add``.
    """
    if add < 1:
        raise ValueError(f"add must be >= 1, got {add}")
    if isinstance(network, str):
        network_name = network_name or network
        network = build_network(network)
    label = network_name or "custom"
    if config is None:
        config = quick_config() if quick else CampaignConfig()
    if start_sensors is None:
        n_start = percentage_to_count(network, iot_percent)
        start_sensors = kmedoids_placement(network, n_start, seed=seed)

    dataset = campaign_dataset(network, config, seed=seed, network_name=network_name)
    telemetry = SteadyStateTelemetry(network)
    junction_names = network.junction_names()
    F, bias, dropped, truths, labels, n_failed = _evaluation_set(
        telemetry, config, seed, draws_per_cell, junction_names
    )
    candidate_keys = telemetry.candidate_keys()
    noise_std = _candidate_noise_std(telemetry)

    # Candidate screening: mean |Δ| in noise units over the eval set —
    # a cheap, deterministic proxy that keeps per-round refits bounded.
    snr = np.mean(np.abs(F), axis=0) / noise_std
    all_candidates = full_candidate_set(network)
    current = list(start_sensors.sensors)
    current_keys = {s.key for s in current}
    pool = [c for c in all_candidates if c.key not in current_keys]
    pool.sort(key=lambda c: (-snr[candidate_keys.index(c.key)], c.key))
    pool = pool[:max_candidates]

    def score(sensor_list):
        return _score_layout(
            network, sensor_list, dataset, config, seed,
            candidate_keys, F, bias, dropped, truths,
        )

    hit1_start = score(current)
    current_score = hit1_start
    steps: list[PlacementStep] = []
    stopped_early = False
    for round_index in range(1, add + 1):
        remaining = [c for c in pool if c.key not in current_keys]
        if not remaining:
            stopped_early = True
            break
        best = None
        best_score = -1.0
        for candidate in remaining:
            candidate_score = score(current + [candidate])
            better = candidate_score > best_score or (
                candidate_score == best_score
                and best is not None
                and candidate.key < best.key
            )
            if better:
                best, best_score = candidate, candidate_score
        if best is None or best_score <= current_score:
            stopped_early = True
            break
        steps.append(
            PlacementStep(
                round=round_index,
                added=best.key,
                hit1_before=current_score,
                hit1_after=best_score,
                candidates_evaluated=len(remaining),
            )
        )
        current.append(best)
        current_keys.add(best.key)
        current_score = best_score

    deployment = SensorNetwork(current, seed=seed)
    trace = PlacementResult(
        network=label,
        seed=seed,
        add_requested=add,
        start_keys=start_sensors.keys(),
        final_keys=deployment.keys(),
        hit1_start=hit1_start,
        hit1_final=current_score,
        steps=steps,
        stopped_early=stopped_early,
        eval_draws=len(truths),
        eval_failed=n_failed,
        max_candidates=max_candidates,
        draws_per_cell=draws_per_cell,
        config=config.as_dict(),
    )
    return deployment, trace


__all__ = ["PlacementResult", "PlacementStep", "iterative_placement"]
