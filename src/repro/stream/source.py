"""Telemetry sources: slot-by-slot feeds for the streaming runtime.

A *feed* produces one :class:`SlotReading` per 15-minute IoT slot for one
managed network.  Two implementations are provided:

* :class:`TelemetryStream` — simulates/replays a
  :class:`~repro.failures.FailureScenario` through the steady-state
  hydraulic engine, with configurable reading noise and per-slot sensor
  dropout (devices in the field lose power and connectivity; the paper's
  Sec. III-B measurement model is explicitly noisy and incomplete);
* :class:`RecordedStream` — replays a recorded trace matrix, for feeding
  the runtime from captured data instead of the simulator.

Both expose the same protocol the runtime consumes: ``feed_id``,
``noise_scales``, ``baseline(slot)`` and ``readings(n_slots, start_slot)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..failures import FailureScenario, LeakEvent
from ..hydraulics import WaterNetwork
from ..sensing import (
    FLOW_NOISE_STD,
    PRESSURE_NOISE_STD,
    SensorNetwork,
    SteadyStateTelemetry,
    sensor_column_indices,
)


@dataclass(frozen=True)
class SlotReading:
    """One slot of readings from one feed.

    Attributes:
        feed_id: originating feed.
        slot: absolute slot index.
        values: per-sensor readings, NaN where the device dropped out.
        mask: True where a reading is present.
    """

    feed_id: str
    slot: int
    values: np.ndarray
    mask: np.ndarray

    @property
    def n_dropped(self) -> int:
        return int((~self.mask).sum())


def restamp_scenario(scenario: FailureScenario, start_slot: int) -> FailureScenario:
    """The same failure, shifted to begin at ``start_slot``.

    Scenario generators draw onsets anywhere in the day; a stream run
    observes a bounded window, so the runtime re-stamps sampled scenarios
    onto its own timeline.

    Raises:
        ValueError: for ``start_slot < 1`` (slot 0 has no predecessor to
            difference against).
    """
    if start_slot < 1:
        raise ValueError(f"start_slot must be >= 1, got {start_slot}")
    events = tuple(
        LeakEvent(
            location=e.location, size=e.size, start_slot=start_slot, beta=e.beta
        )
        for e in scenario.events
    )
    return FailureScenario(
        events=events,
        start_slot=start_slot,
        frozen_nodes=scenario.frozen_nodes,
        temperature_f=scenario.temperature_f,
    )


class TelemetryStream:
    """Simulated slot-by-slot feed from the deployed sensors.

    Args:
        network: the managed network.
        sensors: the deployed IoT devices (fixes the column order).
        scenario: the failure unfolding in this feed, or None for a
            healthy feed.
        feed_id: name used in readings, logs and metrics.
        seed: RNG seed for noise and dropout (per feed).
        dropout: per-slot probability that any one sensor's reading is
            missing.
        pressure_noise: reading-noise std for pressure sensors (m).
        flow_noise: reading-noise std for flow sensors (m^3/s).
        telemetry: share a :class:`SteadyStateTelemetry` (and its baseline
            cache) across feeds on the same network; built fresh when
            omitted.

    Raises:
        ValueError: for dropout outside [0, 1).
    """

    def __init__(
        self,
        network: WaterNetwork,
        sensors: SensorNetwork,
        scenario: FailureScenario | None = None,
        feed_id: str = "feed-0",
        seed: int = 0,
        dropout: float = 0.0,
        pressure_noise: float = PRESSURE_NOISE_STD,
        flow_noise: float = FLOW_NOISE_STD,
        telemetry: SteadyStateTelemetry | None = None,
    ):
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.network = network
        self.sensors = sensors
        self.scenario = scenario
        self.feed_id = feed_id
        self.dropout = dropout
        self.pressure_noise = pressure_noise
        self.flow_noise = flow_noise
        self.telemetry = telemetry or SteadyStateTelemetry(network, seed=seed)
        self._columns = sensor_column_indices(
            self.telemetry.candidate_keys(), sensors
        )
        self._rng = np.random.default_rng(seed)
        kinds = [s.sensor_type.value for s in sensors.sensors]
        self.noise_scales = np.array(
            [
                pressure_noise if kind == "pressure" else flow_noise
                for kind in kinds
            ]
        )

    def __len__(self) -> int:
        return len(self.sensors)

    def baseline(self, slot: int) -> np.ndarray:
        """Noiseless no-leak readings the deployment expects at a slot."""
        return self.telemetry.baseline_candidates(slot)[self._columns]

    def readings(self, n_slots: int, start_slot: int = 1) -> Iterator[SlotReading]:
        """Generate ``n_slots`` consecutive readings from ``start_slot``.

        Raises:
            ValueError: for ``start_slot < 1`` or ``n_slots < 1``.
        """
        if start_slot < 1:
            raise ValueError(f"start_slot must be >= 1, got {start_slot}")
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        for slot in range(start_slot, start_slot + n_slots):
            full = self.telemetry.candidate_readings(
                slot,
                scenario=self.scenario,
                pressure_noise=self.pressure_noise,
                flow_noise=self.flow_noise,
                rng=self._rng,
            )
            values = full[self._columns]
            mask = np.ones(len(values), dtype=bool)
            if self.dropout > 0.0:
                mask = self._rng.random(len(values)) >= self.dropout
                values = np.where(mask, values, np.nan)
            yield SlotReading(
                feed_id=self.feed_id, slot=slot, values=values, mask=mask
            )


class RecordedStream:
    """Replays a recorded trace matrix through the feed protocol.

    Args:
        trace: (n_slots, n_sensors) readings; NaN marks dropped readings.
        baseline: (n_sensors,) expected no-leak readings, or a
            (slots_per_day, n_sensors) matrix when the baseline varies by
            slot of day.
        noise_scales: per-sensor residual normalisation scale.
        feed_id: name used in readings, logs and metrics.
        start_slot: absolute slot of the trace's first row.
        scenario: ground truth when known (enables delay/false-trigger
            accounting); None for field data.

    Raises:
        ValueError: on shape mismatches between trace, baseline and
            scales.
    """

    def __init__(
        self,
        trace: np.ndarray,
        baseline: np.ndarray,
        noise_scales: np.ndarray,
        feed_id: str = "recorded-0",
        start_slot: int = 1,
        scenario: FailureScenario | None = None,
    ):
        self.trace = np.asarray(trace, dtype=float)
        if self.trace.ndim != 2:
            raise ValueError(f"trace must be 2-D, got shape {self.trace.shape}")
        self._baseline = np.asarray(baseline, dtype=float)
        if self._baseline.shape[-1] != self.trace.shape[1]:
            raise ValueError(
                f"baseline covers {self._baseline.shape[-1]} sensors, "
                f"trace has {self.trace.shape[1]}"
            )
        self.noise_scales = np.asarray(noise_scales, dtype=float)
        if self.noise_scales.shape != (self.trace.shape[1],):
            raise ValueError(
                f"noise_scales must have shape ({self.trace.shape[1]},), "
                f"got {self.noise_scales.shape}"
            )
        self.feed_id = feed_id
        self.start_slot = start_slot
        self.scenario = scenario

    def __len__(self) -> int:
        return self.trace.shape[1]

    def baseline(self, slot: int) -> np.ndarray:
        """Expected no-leak readings at a slot (wrapping a daily matrix)."""
        if self._baseline.ndim == 1:
            return self._baseline
        return self._baseline[slot % self._baseline.shape[0]]

    def readings(self, n_slots: int, start_slot: int = 1) -> Iterator[SlotReading]:
        """Replay up to ``n_slots`` rows whose slots fall in the window."""
        for row, values in enumerate(self.trace):
            slot = self.start_slot + row
            if slot < start_slot:
                continue
            if slot >= start_slot + n_slots:
                break
            mask = ~np.isnan(values)
            yield SlotReading(
                feed_id=self.feed_id, slot=slot, values=values, mask=mask
            )
