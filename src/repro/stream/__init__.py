"""Streaming operations runtime: online leak detection & localization.

The paper's online phase consumes live per-slot telemetry; this package
is the always-on half of that story.  :class:`TelemetryStream` feeds
slot-by-slot readings (with noise and sensor dropout),
:class:`TriggerDetector` decides *when* something broke (EWMA + CUSUM on
baseline residuals), and :class:`StreamRuntime` batches windowed
Δ-features on trigger and dispatches Phase-II localization to a worker
pool — with :class:`MetricsRegistry` counters/histograms and structured
logs for the operations floor.
"""

from .detector import TriggerDetector, TriggerState
from .log import StructuredLogger, get_stream_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import DetectionEvent, StreamReport, StreamRuntime
from .source import RecordedStream, SlotReading, TelemetryStream, restamp_scenario

__all__ = [
    "Counter",
    "DetectionEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RecordedStream",
    "SlotReading",
    "StreamReport",
    "StreamRuntime",
    "StructuredLogger",
    "TelemetryStream",
    "TriggerDetector",
    "TriggerState",
    "get_stream_logger",
    "restamp_scenario",
]
