"""The always-on event loop: ingest -> detect -> localize.

:class:`StreamRuntime` turns the batch pipeline into an operations
runtime.  It consumes any number of concurrent feeds in slot lockstep,
runs one :class:`~repro.stream.detector.TriggerDetector` per feed, and —
when a window opens — assembles the paper's Δ-feature from the feed's
recent history (reading at the trigger slot minus the reading just
before the *estimated* onset) and dispatches Phase-II localization to a
thread pool, so slow inference on one feed never stalls ingest on the
others.  Triggers that fire on the same slot are grouped into a single
vectorized ``localize_batch`` dispatch: the profile model scores the
stacked Δ-features through its flattened tree kernel in one pass.

Determinism: detection runs single-threaded in slot order, and each
localization job is a pure function of its Δ-feature, so the detections
and localizations are identical for any worker count — only wall-clock
changes.  Dropped-out sensors surface as NaN columns and are masked all
the way down (the profile model imputes them as "no evidence") rather
than crashing the loop.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core import AquaScale, InferenceResult
from .detector import TriggerDetector
from .log import StructuredLogger, get_stream_logger
from .metrics import MetricsRegistry
from .source import SlotReading


@dataclass
class DetectionEvent:
    """One detected (and localized) anomaly on one feed.

    Attributes:
        feed_id: feed the trigger fired on.
        trigger_slot: slot the anomaly window opened.
        onset_slot: the detector's estimated first anomalous slot.
        detection_delay: ``trigger_slot - true onset`` when the feed
            carries ground truth, else None.
        false_trigger: trigger on a feed with no active failure.
        elapsed_slots: evidence slots between estimated onset and trigger.
        masked_sensors: NaN columns in the dispatched Δ-feature.
        leak_nodes: localized leak set (empty until inference returns).
        inference: the full Phase-II result, when localization ran.
        localization_latency: seconds Phase II took for this event.
    """

    feed_id: str
    trigger_slot: int
    onset_slot: int
    detection_delay: int | None
    false_trigger: bool
    elapsed_slots: int
    masked_sensors: int
    leak_nodes: tuple[str, ...] = ()
    inference: InferenceResult | None = None
    localization_latency: float = 0.0


@dataclass
class StreamReport:
    """Everything one runtime run produced.

    Attributes:
        events: detections in (trigger_slot, feed_id) order.
        slots: slots ingested per feed.
        feeds: feed ids served.
        metrics: the metrics registry snapshot at end of run.
    """

    events: list[DetectionEvent]
    slots: int
    feeds: tuple[str, ...]
    metrics: dict = field(default_factory=dict)

    @property
    def triggered(self) -> bool:
        return bool(self.events)


class StreamRuntime:
    """Serves concurrent telemetry feeds against one trained core.

    Args:
        core: a *trained* :class:`~repro.core.AquaScale` (Phase I done).
        workers: localization worker threads (1 = serial dispatch).
        detector_params: overrides forwarded to every feed's
            :class:`TriggerDetector` (thresholds, quorum, cooldown).
        history_slots: per-feed ring of recent readings kept for Δ-feature
            assembly (bounds memory for long-running streams).
        metrics: shared registry; a fresh one is created when omitted.
        logger: structured logger; the default logs to stderr.
        inference: Phase-II aggregation mode for every localization this
            runtime dispatches — ``"independent"`` (paper) or ``"crf"``
            (factor-graph message passing).

    Raises:
        RuntimeError: if the core is not trained (via ``core.engine``).
        ValueError: for a non-positive worker count or unknown
            ``inference`` mode.
    """

    def __init__(
        self,
        core: AquaScale,
        workers: int = 1,
        detector_params: dict | None = None,
        history_slots: int = 16,
        metrics: MetricsRegistry | None = None,
        logger: StructuredLogger | None = None,
        inference: str = "independent",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        from ..inference import INFERENCE_MODES

        if inference not in INFERENCE_MODES:
            raise ValueError(
                f"inference must be one of {INFERENCE_MODES}, got {inference!r}"
            )
        core.engine  # fail fast when untrained
        self.core = core
        self.workers = workers
        self.detector_params = dict(detector_params or {})
        self.history_slots = history_slots
        self.metrics = metrics or MetricsRegistry()
        self.log = logger or get_stream_logger()
        self.inference = inference

    # ------------------------------------------------------------------
    def _localize(
        self, delta: np.ndarray, weather=None, human=None
    ) -> tuple[InferenceResult, float]:
        start = time.perf_counter()
        result = self.core.localize(
            delta, weather=weather, human=human, inference=self.inference
        )
        return result, time.perf_counter() - start

    def _localize_batch(
        self, deltas: np.ndarray, weather: list, human: list
    ) -> tuple[list[InferenceResult], float]:
        """One vectorized Phase-II dispatch for all of a slot's triggers.

        Localization is row-independent, so the batch results are
        identical to per-trigger :meth:`_localize` calls — the batch
        just pays the profile-model dispatch overhead once.
        """
        start = time.perf_counter()
        results = self.core.localize_batch(
            deltas, weather=weather, human=human, inference=self.inference
        )
        return results, time.perf_counter() - start

    def _delta_feature(
        self,
        history: dict[int, np.ndarray],
        reading: SlotReading,
        onset_slot: int,
    ) -> np.ndarray:
        """The paper's Δ: reading(trigger) - reading(onset - 1).

        Falls back to the oldest retained reading when the estimated
        pre-onset slot has already left the history ring.  NaN survives
        wherever either endpoint was dropped — the mask travels with the
        feature vector.
        """
        before_slot = onset_slot - 1
        if before_slot not in history:
            before_slot = min(history)
        return reading.values - history[before_slot]

    # ------------------------------------------------------------------
    def run(
        self,
        feeds: Sequence,
        n_slots: int,
        start_slot: int = 1,
        observer: Callable[[str, int], tuple] | None = None,
    ) -> StreamReport:
        """Drive every feed for ``n_slots`` slots and collect detections.

        Args:
            feeds: feed objects (``TelemetryStream`` / ``RecordedStream``
                or anything matching the feed protocol).
            n_slots: slots to ingest per feed.
            start_slot: first absolute slot (>= 1).
            observer: optional ``(feed_id, slot) -> (weather, human)``
                hook supplying external observations to localization —
                by default inference is IoT-only, as a live system would
                start out.

        Raises:
            ValueError: for an empty feed list, duplicate feed ids, or
                ``n_slots < 1`` (feed generators validate lazily, so the
                runtime checks before a zero-slot run silently succeeds).
        """
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        feeds = list(feeds)
        if not feeds:
            raise ValueError("run() needs at least one feed")
        ids = [feed.feed_id for feed in feeds]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate feed ids: {sorted(ids)}")

        # Touch every lazy code path (detrend column split, scaler, the
        # CRF engine's adjacency build) once before the pool starts, so
        # worker threads only ever read.
        self.core.localize(np.zeros(len(self.core.sensors)), inference=self.inference)

        detectors = {
            feed.feed_id: TriggerDetector(feed.noise_scales, **self.detector_params)
            for feed in feeds
        }
        histories: dict[str, dict[int, np.ndarray]] = {fid: {} for fid in ids}
        iterators: dict[str, Iterable[SlotReading]] = {
            feed.feed_id: iter(feed.readings(n_slots, start_slot=start_slot))
            for feed in feeds
        }
        scenarios = {feed.feed_id: getattr(feed, "scenario", None) for feed in feeds}

        slots_ingested = self.metrics.counter("slots_ingested")
        readings_dropped = self.metrics.counter("readings_dropped")
        triggers_fired = self.metrics.counter("triggers_fired")
        false_triggers = self.metrics.counter("false_triggers")
        open_windows = self.metrics.gauge("open_windows")
        delay_hist = self.metrics.histogram("detection_delay_slots")
        latency_hist = self.metrics.histogram("localization_latency_seconds")
        localizations = self.metrics.counter("localizations_completed")

        events: list[DetectionEvent] = []
        pending: list[tuple[list[DetectionEvent], Future]] = []
        self.log.event(
            "stream.start", feeds=ids, slots=n_slots, workers=self.workers
        )
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            for slot in range(start_slot, start_slot + n_slots):
                slot_events: list[DetectionEvent] = []
                slot_deltas: list[np.ndarray] = []
                slot_weather: list = []
                slot_human: list = []
                for feed in feeds:  # fixed order: determinism
                    reading = next(iterators[feed.feed_id])
                    slots_ingested.inc()
                    if reading.n_dropped:
                        readings_dropped.inc(reading.n_dropped)
                    history = histories[feed.feed_id]
                    history[slot] = reading.values
                    for old in [s for s in history if s <= slot - self.history_slots]:
                        del history[old]

                    state = detectors[feed.feed_id].update(
                        reading.values,
                        feed.baseline(slot),
                        slot,
                        mask=reading.mask,
                    )
                    if not state.triggered:
                        continue

                    triggers_fired.inc()
                    scenario = scenarios[feed.feed_id]
                    true_onset = scenario.start_slot if scenario is not None else None
                    false_trigger = true_onset is None or slot < true_onset
                    delay = None
                    if not false_trigger:
                        delay = slot - true_onset
                        delay_hist.observe(delay)
                    else:
                        false_triggers.inc()
                    delta = self._delta_feature(history, reading, state.onset_slot)
                    event = DetectionEvent(
                        feed_id=feed.feed_id,
                        trigger_slot=slot,
                        onset_slot=state.onset_slot,
                        detection_delay=delay,
                        false_trigger=false_trigger,
                        elapsed_slots=state.elapsed_slots,
                        masked_sensors=int(np.isnan(delta).sum()),
                    )
                    self.log.event(
                        "trigger",
                        feed=feed.feed_id,
                        slot=slot,
                        onset=state.onset_slot,
                        score=state.score,
                        alarmed=len(state.alarmed),
                        masked=event.masked_sensors,
                        false=false_trigger,
                    )
                    weather, human = (
                        observer(feed.feed_id, slot) if observer else (None, None)
                    )
                    slot_events.append(event)
                    slot_deltas.append(delta)
                    slot_weather.append(weather)
                    slot_human.append(human)
                open_windows.set(
                    sum(1 for detector in detectors.values() if detector.active)
                )
                # All triggers from the same slot share one vectorized
                # Phase-II dispatch — the profile model scores the stacked
                # Δ-features through the flattened tree kernel in one pass
                # instead of per-trigger.
                if slot_events:
                    pending.append(
                        (
                            slot_events,
                            pool.submit(
                                self._localize_batch,
                                np.vstack(slot_deltas),
                                slot_weather,
                                slot_human,
                            ),
                        )
                    )

            for batch_events, future in pending:
                inferences, latency = future.result()
                for event, inference in zip(batch_events, inferences):
                    event.inference = inference
                    event.leak_nodes = tuple(sorted(inference.leak_nodes))
                    event.localization_latency = latency
                    latency_hist.observe(latency)
                    localizations.inc()
                    self.log.event(
                        "localized",
                        feed=event.feed_id,
                        slot=event.trigger_slot,
                        leaks=event.leak_nodes or "(none)",
                        latency=latency,
                    )
                    events.append(event)

        events.sort(key=lambda e: (e.trigger_slot, e.feed_id))
        report = StreamReport(
            events=events,
            slots=n_slots,
            feeds=tuple(ids),
            metrics=self.metrics.snapshot(),
        )
        self.log.event(
            "stream.end",
            feeds=len(ids),
            slots=n_slots,
            triggers=len(events),
        )
        return report
