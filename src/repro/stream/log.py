"""Structured logging for the streaming runtime.

Operations events (triggers, localizations, stream lifecycle) are logged
as flat key=value lines — or JSON lines with ``json_lines=True`` — so
they can be grepped on a terminal and ingested by log pipelines alike.
Built on stdlib :mod:`logging`; a runtime owns one
:class:`StructuredLogger` and calls :meth:`StructuredLogger.event`.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple, set, frozenset)):
        return ",".join(str(v) for v in sorted(value, key=str))
    text = str(value)
    if " " in text or "=" in text:
        return json.dumps(text)
    return text


class StructuredLogger:
    """Emits one structured record per operations event.

    Args:
        name: logger name (namespaced under ``repro.stream``).
        json_lines: emit JSON objects instead of key=value lines.
        stream: output stream (default stderr, like logging itself).
        level: minimum level for the attached handler.
    """

    def __init__(
        self,
        name: str = "repro.stream",
        json_lines: bool = False,
        stream: TextIO | None = None,
        level: int = logging.INFO,
    ):
        self.json_lines = json_lines
        self._logger = logging.getLogger(name)
        self._logger.setLevel(level)
        self._logger.propagate = False
        # Re-binding the stream (e.g. a test's capture buffer) replaces the
        # handler rather than stacking a duplicate.
        for handler in list(self._logger.handlers):
            self._logger.removeHandler(handler)
        self._handler = logging.StreamHandler(stream or sys.stderr)
        self._handler.setFormatter(logging.Formatter("%(message)s"))
        self._logger.addHandler(self._handler)

    def event(self, event: str, level: int = logging.INFO, **fields: Any) -> None:
        """Log one event with its context fields.

        Args:
            event: short event name, e.g. ``"trigger"``.
            level: logging level for the record.
            **fields: arbitrary context (feed, slot, delay, ...).
        """
        if self.json_lines:
            record = {"event": event, **fields}
            self._logger.log(level, json.dumps(record, default=str, sort_keys=True))
            return
        parts = [f"event={event}"]
        parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
        self._logger.log(level, " ".join(parts))


def get_stream_logger(
    json_lines: bool = False, stream: TextIO | None = None
) -> StructuredLogger:
    """The runtime's default logger (``repro.stream`` namespace)."""
    return StructuredLogger("repro.stream", json_lines=json_lines, stream=stream)
