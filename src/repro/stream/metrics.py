"""Operational metrics for the streaming runtime.

A tiny, dependency-free registry in the spirit of Prometheus client
libraries: named counters, gauges and histograms behind one lock, with a
:meth:`MetricsRegistry.snapshot` dict that the CLI prints and tests
assert against.  Instruments are cheap enough to update per slot and
thread-safe, because localization workers record latency concurrently
with the ingest loop.
"""

from __future__ import annotations

import threading


class Counter:
    """Monotonically increasing count (slots ingested, triggers fired)."""

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0).

        Raises:
            ValueError: on negative increments (use a Gauge instead).
        """
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (open anomaly windows, queue depth)."""

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram:
    """Observation distribution (detection delay, localization latency).

    Stores raw observations — streams here are thousands of slots, not
    billions, so exact percentiles beat bucketing complexity.
    """

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        with self._lock:
            return len(self._values)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (0-100) of the observations so far.

        Raises:
            ValueError: when nothing has been observed yet.
        """
        with self._lock:
            if not self._values:
                raise ValueError(f"histogram {self.name!r} has no observations")
            ordered = sorted(self._values)
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return self._interpolate(ordered, q)

    @staticmethod
    def _interpolate(ordered: list[float], q: float) -> float:
        """Exact q-th percentile of an already-sorted sample."""
        index = (len(ordered) - 1) * q / 100.0
        low = int(index)
        high = min(low + 1, len(ordered) - 1)
        fraction = index - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> dict[str, float]:
        """count/total/min/mean/max/p50/p95/p99 of the observations."""
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0}
        values.sort()
        total = sum(values)
        return {
            "count": len(values),
            "total": total,
            "min": values[0],
            "mean": total / len(values),
            "max": values[-1],
            "p50": self._interpolate(values, 50.0),
            "p95": self._interpolate(values, 95.0),
            "p99": self._interpolate(values, 99.0),
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    One registry per runtime; :meth:`snapshot` is the read path for the
    CLI, logs and tests.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _claim(self, name: str, kind: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise ValueError(f"metric {name!r} already registered as another type")

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``.

        Raises:
            ValueError: when ``name`` is already a gauge or histogram.
        """
        with self._lock:
            self._claim(name, self._counters)
            if name not in self._counters:
                self._counters[name] = Counter(name, self._lock)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``.

        Raises:
            ValueError: when ``name`` is already another instrument type.
        """
        with self._lock:
            self._claim(name, self._gauges)
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, self._lock)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``.

        Raises:
            ValueError: when ``name`` is already another instrument type.
        """
        with self._lock:
            self._claim(name, self._histograms)
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, self._lock)
            return self._histograms[name]

    def snapshot(self) -> dict:
        """Point-in-time view of every instrument, JSON-serialisable."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }
