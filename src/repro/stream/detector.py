"""Online change detection: when did something break?

The batch pipeline is handed the ground-truth onset; an operations
runtime has to *find* it.  :class:`TriggerDetector` watches per-sensor
residuals — live readings minus the cached no-leak baseline, normalised
by each device's noise scale — with two classic sequential statistics:

* **EWMA** (exponentially weighted moving average): fast on large level
  shifts, with steady-state std ``sqrt(alpha / (2 - alpha))``;
* **two-sided CUSUM**: ``s+ = max(0, s+ + r - k)`` and
  ``s- = max(0, s- - r - k)``, optimal for small persistent shifts and —
  via the slot where the winning excursion left zero — a natural onset
  estimator.

A sensor is *in alarm* when either statistic crosses its threshold; the
detector opens an anomaly window once ``quorum`` sensors alarm
simultaneously, and then accumulates ``elapsed_slots`` of evidence until
the alarms clear for ``cooldown`` slots.  Dropped-out readings (NaN)
simply hold that sensor's state — degradation, not a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TriggerState:
    """The detector's verdict after one slot.

    Attributes:
        slot: the slot just processed.
        triggered: an anomaly window opened at this slot.
        active: an anomaly window is open (including the trigger slot).
        onset_slot: estimated first anomalous slot of the open window.
        elapsed_slots: evidence accumulated since the estimated onset
            (>= 1 while active, 0 otherwise).
        score: largest normalised alarm statistic this slot.
        alarmed: indices of sensors currently in alarm.
    """

    slot: int
    triggered: bool
    active: bool
    onset_slot: int | None
    elapsed_slots: int
    score: float
    alarmed: tuple[int, ...] = field(default_factory=tuple)


class TriggerDetector:
    """EWMA + CUSUM residual change detector for one feed.

    Args:
        scales: per-sensor residual normalisation (reading-noise std).
        ewma_alpha: EWMA smoothing weight.
        ewma_threshold: alarm when ``|ewma| > threshold * sigma_ewma``
            (in units of the EWMA's own steady-state std).
        cusum_k: CUSUM reference value (allowance) in noise-std units —
            drifts smaller than ``k`` per slot are ignored.
        cusum_h: CUSUM decision threshold in noise-std units.
        quorum: sensors that must alarm simultaneously to open a window.
        cooldown: alarm-free slots that close an open window.

    Raises:
        ValueError: for non-positive scales or out-of-range parameters.
    """

    def __init__(
        self,
        scales: np.ndarray,
        ewma_alpha: float = 0.25,
        ewma_threshold: float = 6.0,
        cusum_k: float = 0.75,
        cusum_h: float = 8.0,
        quorum: int = 1,
        cooldown: int = 4,
    ):
        scales = np.asarray(scales, dtype=float)
        if scales.ndim != 1 or len(scales) == 0:
            raise ValueError("scales must be a non-empty 1-D array")
        if np.any(scales <= 0):
            raise ValueError("noise scales must be strictly positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        self.scales = scales
        self.ewma_alpha = ewma_alpha
        self.ewma_threshold = ewma_threshold
        self.cusum_k = cusum_k
        self.cusum_h = cusum_h
        self.quorum = quorum
        self.cooldown = cooldown
        #: Steady-state std of the EWMA of unit-variance residuals.
        self.sigma_ewma = float(np.sqrt(ewma_alpha / (2.0 - ewma_alpha)))
        self.reset()

    def reset(self) -> None:
        """Forget all state (statistics and any open window)."""
        n = len(self.scales)
        self._ewma = np.zeros(n)
        self._cusum_pos = np.zeros(n)
        self._cusum_neg = np.zeros(n)
        # Slot at which each sensor's current CUSUM excursion left zero;
        # -1 while the statistic sits at zero.
        self._excursion_start = np.full(n, -1, dtype=np.int64)
        self._active = False
        self._onset_slot: int | None = None
        self._quiet_slots = 0

    @property
    def active(self) -> bool:
        """True while an anomaly window is open."""
        return self._active

    def update(
        self,
        values: np.ndarray,
        baseline: np.ndarray,
        slot: int,
        mask: np.ndarray | None = None,
    ) -> TriggerState:
        """Advance the detector by one slot of readings.

        Args:
            values: per-sensor readings (NaN allowed where dropped).
            baseline: expected no-leak readings at this slot.
            slot: absolute slot index.
            mask: True where a reading is present; inferred from NaN when
                omitted.

        Raises:
            ValueError: on a shape mismatch with the configured scales.
        """
        values = np.asarray(values, dtype=float)
        baseline = np.asarray(baseline, dtype=float)
        if values.shape != self.scales.shape or baseline.shape != self.scales.shape:
            raise ValueError(
                f"expected {self.scales.shape[0]} readings, got values "
                f"{values.shape} / baseline {baseline.shape}"
            )
        if mask is None:
            mask = ~np.isnan(values)
        mask = np.asarray(mask, dtype=bool) & ~np.isnan(values)

        residuals = np.zeros_like(self.scales)
        residuals[mask] = (values[mask] - baseline[mask]) / self.scales[mask]

        # Present sensors advance; dropped sensors hold their state.
        alpha = self.ewma_alpha
        self._ewma[mask] = (1.0 - alpha) * self._ewma[mask] + alpha * residuals[mask]
        was_zero = (self._cusum_pos == 0.0) & (self._cusum_neg == 0.0)
        self._cusum_pos[mask] = np.maximum(
            0.0, self._cusum_pos[mask] + residuals[mask] - self.cusum_k
        )
        self._cusum_neg[mask] = np.maximum(
            0.0, self._cusum_neg[mask] - residuals[mask] - self.cusum_k
        )
        nonzero = (self._cusum_pos > 0.0) | (self._cusum_neg > 0.0)
        self._excursion_start[was_zero & nonzero] = slot
        self._excursion_start[~nonzero] = -1

        ewma_alarm = np.abs(self._ewma) > self.ewma_threshold * self.sigma_ewma
        cusum_alarm = (self._cusum_pos > self.cusum_h) | (
            self._cusum_neg > self.cusum_h
        )
        alarm = ewma_alarm | cusum_alarm
        alarmed = np.flatnonzero(alarm)
        score = float(
            max(
                np.abs(self._ewma).max(initial=0.0) / max(self.sigma_ewma, 1e-12),
                self._cusum_pos.max(initial=0.0),
                self._cusum_neg.max(initial=0.0),
            )
        )

        triggered = False
        if not self._active:
            if len(alarmed) >= self.quorum:
                self._active = True
                triggered = True
                self._quiet_slots = 0
                self._onset_slot = self._estimate_onset(alarmed, slot)
        else:
            if len(alarmed) == 0:
                self._quiet_slots += 1
                if self._quiet_slots >= self.cooldown:
                    self._active = False
                    self._onset_slot = None
            else:
                self._quiet_slots = 0

        onset = self._onset_slot if self._active else None
        elapsed = max(1, slot - onset + 1) if onset is not None else 0
        return TriggerState(
            slot=slot,
            triggered=triggered,
            active=self._active,
            onset_slot=onset,
            elapsed_slots=elapsed,
            score=score,
            alarmed=tuple(int(i) for i in alarmed),
        )

    def _estimate_onset(self, alarmed: np.ndarray, slot: int) -> int:
        """First anomalous slot: median CUSUM excursion start among the
        alarming sensors (each excursion began when the shift reached that
        sensor; the median ignores sensors whose excursion predates the
        event because of noise), falling back to the trigger slot for
        EWMA-only alarms."""
        starts = self._excursion_start[alarmed]
        starts = starts[starts >= 0]
        if len(starts) == 0:
            return slot
        return int(np.median(starts))
