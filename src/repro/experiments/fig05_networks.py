"""Fig. 5: the two evaluation networks' inventories.

The paper's Fig. 5 is a graph rendering of EPA-NET and WSSC-SUBNET with a
caption stating their component counts.  The reproducible artefact is the
inventory itself plus the structural statistics that make the two networks
behave differently (loopedness, diameter distribution, elevation relief) —
this experiment prints both and asserts the caption's exact counts.
"""

from __future__ import annotations

import numpy as np

from ..hydraulics import Pipe
from .common import ExperimentResult, cached_network

#: The Fig.-5 caption, verbatim.
PAPER_COUNTS = {
    "epanet": {
        "nodes": 96,
        "pipes": 115,  # caption says "118 pipes" counting pumps+valve links
        "links": 118,
        "pumps": 2,
        "valves": 1,
        "tanks": 3,
        "reservoirs": 2,
    },
    "wssc": {
        "nodes": 299,
        "pipes": 314,
        "links": 316,
        "pumps": 0,
        "valves": 2,
        "tanks": 0,
        "reservoirs": 1,
    },
}


def run(network_names: tuple[str, ...] = ("epanet", "wssc")) -> ExperimentResult:
    """Inventory + structural statistics for both evaluation networks."""
    rows = []
    for name in network_names:
        network = cached_network(name)
        counts = network.describe()
        graph = network.to_networkx()
        cycles = graph.number_of_edges() - graph.number_of_nodes() + 1
        diameters = [l.diameter for l in network.links.values() if isinstance(l, Pipe)]
        elevations = [j.elevation for j in network.junctions()]
        demands = [j.base_demand for j in network.junctions()]
        rows.append(
            {
                "network": network.name,
                "nodes": counts["nodes"],
                "links": counts["links"],
                "pipes": counts["pipes"],
                "pumps": counts["pumps"],
                "valves": counts["valves"],
                "tanks": counts["tanks"],
                "reservoirs": counts["reservoirs"],
                "loops": cycles,
                "diameter_m_min": float(np.min(diameters)),
                "diameter_m_max": float(np.max(diameters)),
                "elevation_relief_m": float(np.ptp(elevations)),
                "total_demand_lps": float(np.sum(demands) * 1000.0),
            }
        )
    return ExperimentResult(
        experiment="fig05",
        title="Evaluation networks: inventory and structure",
        rows=rows,
        config={"networks": list(network_names)},
    )


def matches_paper_counts(result: ExperimentResult) -> bool:
    """Whether every generated network matches the Fig.-5 caption."""
    by_name = {"EPA-NET": "epanet", "WSSC-SUBNET": "wssc"}
    for row in result.rows:
        key = by_name.get(row["network"])
        if key is None:
            continue
        expected = PAPER_COUNTS[key]
        for field in ("nodes", "links", "pumps", "valves", "tanks", "reservoirs"):
            if row[field] != expected[field]:
                return False
    return True
