"""Fig. 6: comparison of ML techniques for single-leak identification.

(a) full (100%) IoT observations — all techniques score similarly high;
(b) 10% IoT — RF and SVM hold up while the linear techniques drop.
LinearR, LogisticR, GB, RF and SVM are compared on EPA-NET with single
failures, exactly the paper's panel.
"""

from __future__ import annotations

from ..core import PAPER_NAMES
from .common import ExperimentResult, cached_dataset, cached_model

DEFAULT_TECHNIQUES = ("linear", "logistic", "gb", "rf", "svm")
DEFAULT_IOT_LEVELS = (100.0, 10.0)


def run(
    network_name: str = "epanet",
    techniques: tuple[str, ...] = DEFAULT_TECHNIQUES,
    iot_levels: tuple[float, ...] = DEFAULT_IOT_LEVELS,
    n_train: int = 1500,
    n_test: int = 200,
    seed: int = 0,
) -> ExperimentResult:
    """Hamming score per (technique, IoT level) on single failures."""
    test = cached_dataset(network_name, n_test, "single", seed + 101)
    rows = []
    for iot in iot_levels:
        for technique in techniques:
            model = cached_model(
                network_name,
                technique,
                iot_percent=iot,
                train_samples=n_train,
                train_kind="single",
                seed=seed,
            )
            score = model.evaluate(test, sources="iot")
            rows.append(
                {
                    "iot_percent": iot,
                    "technique": PAPER_NAMES.get(technique, technique),
                    "hamming_score": score,
                }
            )
    return ExperimentResult(
        experiment="fig06",
        title="ML techniques, single failure, full vs 10% IoT (EPA-NET)",
        rows=rows,
        config={
            "network": network_name,
            "n_train": n_train,
            "n_test": n_test,
            "seed": seed,
        },
    )
