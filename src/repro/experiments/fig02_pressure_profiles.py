"""Fig. 2: pressure-change-vs-distance profiles for 1/2/3 concurrent leaks.

The paper's empirical observation: with a single leak at ``e1``, the sum
of pressure-head changes of nodes within a distance ring of ``e1.l``
decays with distance — a learnable signature.  With 2-3 concurrent leaks
the profile no longer follows that pattern, which is why external sources
are needed.  This experiment reproduces the three scenarios on EPA-NET.
"""

from __future__ import annotations

import numpy as np

from ..failures import LeakEvent, events_to_emitters
from ..hydraulics import GGASolver
from .common import ExperimentResult, cached_network

#: Distance rings (m) used to bucket nodes around e1.
DEFAULT_RING_EDGES = (0.0, 400.0, 800.0, 1200.0, 1600.0, 2000.0, 2600.0, 3400.0)


def run(
    network_name: str = "epanet",
    leak_size: float = 2.5e-3,
    ring_edges: tuple[float, ...] = DEFAULT_RING_EDGES,
    seed: int = 7,
) -> ExperimentResult:
    """Reproduce the three Fig. 2 scenarios.

    Scenario 1: {e1}; scenario 2: {e1, e2}; scenario 3: {e1, e3, e4} —
    the extra events are placed at increasing distance from e1, like the
    paper's sketch.
    """
    network = cached_network(network_name)
    rng = np.random.default_rng(seed)
    junctions = network.junction_names()

    # e1 near the topological centre; companions at spread-out locations.
    e1 = junctions[len(junctions) // 2]
    distances = network.shortest_path_lengths(e1)
    ordered = sorted(
        (name for name in junctions if name != e1), key=lambda n: distances[n]
    )
    e2 = ordered[2 * len(ordered) // 3]
    e3 = ordered[len(ordered) // 2]
    e4 = ordered[3 * len(ordered) // 4]

    # Companion leaks are larger so their signatures visibly interfere
    # with e1's decay pattern, as in the paper's sketch.
    scenarios = {
        "scenario-1 (single: e1)": [LeakEvent(e1, leak_size)],
        "scenario-2 (two: e1, e2)": [
            LeakEvent(e1, leak_size),
            LeakEvent(e2, leak_size * 1.5),
        ],
        "scenario-3 (three: e1, e3, e4)": [
            LeakEvent(e1, leak_size),
            LeakEvent(e3, leak_size * 1.5),
            LeakEvent(e4, leak_size * 1.5),
        ],
    }

    solver = GGASolver(network)
    baseline = solver.solve()
    rows = []
    for label, events in scenarios.items():
        solution = solver.solve(emitters=events_to_emitters(events))
        for lo, hi in zip(ring_edges, ring_edges[1:]):
            total_change = 0.0
            count = 0
            for name in junctions:
                d = distances.get(name, np.inf)
                if lo <= d < hi:
                    total_change += (
                        solution.node_pressure[name] - baseline.node_pressure[name]
                    )
                    count += 1
            rows.append(
                {
                    "scenario": label,
                    "ring_lo_m": lo,
                    "ring_hi_m": hi,
                    "n_nodes": count,
                    "sum_pressure_change_m": total_change,
                    # Rings farther out contain more nodes, so the decay
                    # pattern shows in the per-node mean change.
                    "mean_pressure_change_m": (
                        total_change / count if count else 0.0
                    ),
                }
            )
    return ExperimentResult(
        experiment="fig02",
        title="Sum of pressure-head changes vs distance from e1",
        rows=rows,
        config={
            "network": network_name,
            "e1": e1,
            "companions": [e2, e3, e4],
            "leak_size_EC": leak_size,
        },
    )


def monotone_fraction(result: ExperimentResult, scenario_substring: str) -> float:
    """Fraction of consecutive ring pairs with shrinking per-node |change|.

    Near 1.0 for the single-leak scenario (the paper's decaying pattern);
    visibly lower for the multi-leak scenarios.
    """
    values = [
        abs(row["mean_pressure_change_m"])
        for row in result.rows
        if scenario_substring in row["scenario"] and row["n_nodes"] > 0
    ]
    if len(values) < 2:
        return 1.0
    good = sum(1 for a, b in zip(values, values[1:]) if b <= a + 1e-9)
    return good / (len(values) - 1)
