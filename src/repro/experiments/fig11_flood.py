"""Fig. 11: flood prediction from two leaks on the WSSC-SUBNET DEM.

Two leak events with different sizes but the same start time discharge
through Eq. (1); the outflow feeds the diffusive-wave flood solver on the
DEM interpolated from node elevations.  The reproduced artefacts are the
flood summary statistics and the depth field ("H represents the flood
depth in meter").
"""

from __future__ import annotations

import numpy as np

from ..failures import LeakEvent
from ..flood import predict_flood
from .common import ExperimentResult, cached_network


def run(
    network_name: str = "wssc",
    leak_sizes: tuple[float, float] = (4e-2, 1.5e-2),
    duration: float = 4 * 3600.0,
    cell_size: float = 40.0,
    seed: int = 5,
) -> ExperimentResult:
    """Simulate the two-leak flood and summarise the depth field.

    The leak sizes model a main burst (tens of L/s), matching the paper's
    burst-driven flooding scene rather than a pinhole leak.
    """
    network = cached_network(network_name)
    rng = np.random.default_rng(seed)
    junctions = network.junction_names()
    # Two leaks in the low-lying half of the network (water pools there).
    elevations = {
        name: network.nodes[name].elevation for name in junctions
    }
    low_half = sorted(junctions, key=lambda n: elevations[n])[: len(junctions) // 2]
    v1, v2 = rng.choice(low_half, size=2, replace=False)
    events = [LeakEvent(str(v1), leak_sizes[0]), LeakEvent(str(v2), leak_sizes[1])]

    dem, flood = predict_flood(
        network, events, duration=duration, cell_size=cell_size
    )
    depth = flood.max_depth
    rows = [
        {
            "quantity": "leak v1 node",
            "value": str(v1),
        },
        {"quantity": "leak v2 node", "value": str(v2)},
        {
            "quantity": "total outflow volume (m^3)",
            "value": round(flood.total_inflow_volume, 1),
        },
        {"quantity": "max flood depth H (m)", "value": round(float(depth.max()), 3)},
        {
            "quantity": "flooded cells (H > 1 cm)",
            "value": flood.flooded_cells(0.01),
        },
        {
            "quantity": "flooded area (m^2, H > 1 cm)",
            "value": round(flood.flooded_area(dem.cell_area, 0.01), 0),
        },
        {
            "quantity": "DEM relief (m)",
            "value": round(float(dem.elevation.max() - dem.elevation.min()), 1),
        },
    ]
    return ExperimentResult(
        experiment="fig11",
        title="Flood prediction from two simultaneous leaks (WSSC-SUBNET DEM)",
        rows=rows,
        config={
            "network": network_name,
            "leak_sizes_EC": list(leak_sizes),
            "duration_s": duration,
            "cell_size_m": cell_size,
        },
    )
