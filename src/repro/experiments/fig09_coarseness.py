"""Fig. 9: effect of coarser Twitter data (gamma) on WSSC-SUBNET.

As the clique radius gamma grows, a tweet implicates more nodes, so human
input gets less precise and its benefit decays; adding temperature
information compensates and keeps the score up.  Sources compared:
IoT only, IoT + Human, IoT + Human + Temp.
"""

from __future__ import annotations

from ..core import ObservationFactory
from ..datasets import generate_dataset
from .common import ExperimentResult, cached_model, cached_network

DEFAULT_GAMMA_SWEEP = (30.0, 120.0, 300.0, 600.0, 1200.0)


def run(
    network_name: str = "wssc",
    gamma_sweep: tuple[float, ...] = DEFAULT_GAMMA_SWEEP,
    iot_percent: float = 30.0,
    n_train: int = 1000,
    n_test: int = 120,
    elapsed_slots: int = 2,
    seed: int = 0,
    technique: str = "hybrid-rsl",
) -> ExperimentResult:
    """Score per (gamma, source mix); one profile reused for all gammas."""
    network = cached_network(network_name)
    model = cached_model(
        network_name,
        technique,
        iot_percent=iot_percent,
        train_samples=n_train,
        train_kind="low-temperature",
        seed=seed,
    )
    test = generate_dataset(
        network,
        n_test,
        kind="low-temperature",
        seed=seed + 501,
        elapsed_slots=elapsed_slots,
    )
    rows = []
    baseline = model.evaluate(test, sources="iot", elapsed_slots=elapsed_slots)
    for gamma in gamma_sweep:
        # Swap the observation factory so cliques use this gamma.
        model.observations = ObservationFactory(
            network, gamma=gamma, seed=seed + int(gamma)
        )
        human_score = model.evaluate(
            test, sources="iot+human", elapsed_slots=elapsed_slots
        )
        all_score = model.evaluate(test, sources="all", elapsed_slots=elapsed_slots)
        rows.append(
            {
                "gamma_m": gamma,
                "iot_only_score": baseline,
                "iot_human_score": human_score,
                "iot_human_temp_score": all_score,
            }
        )
    return ExperimentResult(
        experiment="fig09",
        title="Coarser Twitter data (gamma sweep) on WSSC-SUBNET",
        rows=rows,
        config={
            "network": network_name,
            "technique": technique,
            "iot_percent": iot_percent,
            "elapsed_slots": elapsed_slots,
            "n_train": n_train,
            "n_test": n_test,
            "seed": seed,
        },
    )
