"""Shared experiment infrastructure.

Every figure module exposes ``run(config) -> ExperimentResult`` with a
default config small enough for CI; ``EXPERIMENTS.md`` records the
paper-vs-measured comparison produced by these defaults.  Datasets and
trained profiles are memoised per process so a benchmark session does not
regenerate identical hydraulics.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


from ..core import AquaScale
from ..datasets import LeakDataset, generate_dataset, load_dataset, save_dataset
from ..hydraulics import WaterNetwork, inp_text
from ..networks import build_network


@dataclass
class ExperimentResult:
    """Rows of a reproduced table/figure plus its provenance.

    Attributes:
        experiment: identifier, e.g. ``"fig07"``.
        title: human-readable description.
        rows: list of dict rows (the figure's series points).
        config: the parameters that produced the rows.
    """

    experiment: str
    title: str
    rows: list[dict[str, Any]]
    config: dict[str, Any] = field(default_factory=dict)

    def to_table(self) -> str:
        """Render rows as a GitHub-flavoured markdown table."""
        if not self.rows:
            return "(no rows)"
        columns = list(self.rows[0].keys())
        lines = ["| " + " | ".join(columns) + " |"]
        lines.append("|" + "|".join("---" for _ in columns) + "|")
        for row in self.rows:
            cells = []
            for column in columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    cells.append(f"{value:.3f}")
                else:
                    cells.append(str(value))
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def print_report(self) -> None:
        """Print the figure header and table (bench harness output)."""
        print(f"\n=== {self.experiment}: {self.title} ===")
        for key, value in self.config.items():
            print(f"    {key} = {value}")
        print(self.to_table())

    def series(self, x_key: str, y_key: str, **filters: Any) -> tuple[list, list]:
        """Extract an (x, y) series from rows matching ``filters``."""
        xs, ys = [], []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                xs.append(row[x_key])
                ys.append(row[y_key])
        return xs, ys


# ----------------------------------------------------------------------
# Process-level caches (benchmarks share networks/datasets/profiles).
# ----------------------------------------------------------------------
_NETWORK_CACHE: dict[str, WaterNetwork] = {}
_DATASET_CACHE: dict[tuple, LeakDataset] = {}
_MODEL_CACHE: dict[tuple, AquaScale] = {}


def cached_network(name: str) -> WaterNetwork:
    """Build (or reuse) a catalog network."""
    if name not in _NETWORK_CACHE:
        _NETWORK_CACHE[name] = build_network(name)
    return _NETWORK_CACHE[name]


def _dataset_cache_dir(cache_dir: str | Path | None) -> Path | None:
    """Resolve the on-disk dataset cache directory, if any.

    An explicit ``cache_dir`` wins; otherwise the ``REPRO_DATASET_CACHE``
    environment variable enables persistence.  ``None`` keeps the cache
    purely in-process (the safe default for tests).
    """
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get("REPRO_DATASET_CACHE")
    return Path(env) if env else None


def _dataset_cache_path(
    directory: Path, network: WaterNetwork, key: tuple
) -> Path:
    """Content-addressed bundle path for one parameter tuple.

    The filename digests both the parameter tuple and the network's INP
    rendering, so editing the network (demands, pipes, patterns) can
    never resurrect a stale bundle generated from the old topology.
    """
    digest = hashlib.sha256()
    digest.update(repr(key).encode("utf-8"))
    digest.update(inp_text(network).encode("utf-8"))
    return directory / f"dataset-{digest.hexdigest()[:24]}.npz"


def cached_dataset(
    network_name: str,
    n_samples: int,
    kind: str,
    seed: int,
    elapsed_slots: int = 1,
    max_events: int = 5,
    workers: int | None = None,
    engine: str = "sequential",
    cache_dir: str | Path | None = None,
) -> LeakDataset:
    """Generate (or reuse) a dataset keyed by its full parameter tuple.

    Reuse happens at two levels: a per-process memo, and — when
    ``cache_dir`` or the ``REPRO_DATASET_CACHE`` environment variable
    names a directory — an on-disk ``.npz`` bundle keyed by the
    parameter tuple plus a hash of the network's INP content.  A disk
    hit loads bit-identical arrays instead of re-running hydraulics;
    corrupt or unreadable bundles are regenerated and overwritten.

    ``engine`` and ``workers`` are deliberately *excluded* from the
    cache key: the batched engine reproduces the sequential engine
    bit-for-bit (see :mod:`repro.verify.differential`), so a bundle
    generated by either engine is valid for both and they share cache
    entries.
    """
    key = (network_name, n_samples, kind, seed, elapsed_slots, max_events)
    if key in _DATASET_CACHE:
        return _DATASET_CACHE[key]
    network = cached_network(network_name)
    directory = _dataset_cache_dir(cache_dir)
    path = None
    if directory is not None:
        path = _dataset_cache_path(directory, network, key)
        if path.exists():
            try:
                dataset = load_dataset(path)
            except (OSError, ValueError, KeyError):
                pass  # regenerate below and overwrite the bad bundle
            else:
                _DATASET_CACHE[key] = dataset
                return dataset
    dataset = generate_dataset(
        network,
        n_samples,
        kind=kind,
        seed=seed,
        elapsed_slots=elapsed_slots,
        max_events=max_events,
        workers=workers,
        engine=engine,
    )
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        save_dataset(dataset, path)
    _DATASET_CACHE[key] = dataset
    return dataset


def cached_model(
    network_name: str,
    classifier: str,
    iot_percent: float,
    train_samples: int,
    train_kind: str,
    seed: int = 0,
    max_events: int = 5,
    gamma: float = 30.0,
) -> AquaScale:
    """Train (or reuse) an AquaScale pipeline for a sweep point."""
    key = (
        network_name,
        classifier,
        iot_percent,
        train_samples,
        train_kind,
        seed,
        max_events,
        gamma,
    )
    if key not in _MODEL_CACHE:
        model = AquaScale(
            cached_network(network_name),
            iot_percent=iot_percent,
            classifier=classifier,
            seed=seed,
            gamma=gamma,
        )
        dataset = cached_dataset(
            network_name, train_samples, train_kind, seed + 11, max_events=max_events
        )
        model.train(dataset=dataset)
        _MODEL_CACHE[key] = model
    return _MODEL_CACHE[key]


def clear_caches() -> None:
    """Drop all memoised networks/datasets/models (tests use this)."""
    _NETWORK_CACHE.clear()
    _DATASET_CACHE.clear()
    _MODEL_CACHE.clear()
