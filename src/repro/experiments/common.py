"""Shared experiment infrastructure.

Every figure module exposes ``run(config) -> ExperimentResult`` with a
default config small enough for CI; ``EXPERIMENTS.md`` records the
paper-vs-measured comparison produced by these defaults.  Datasets and
trained profiles are memoised per process so a benchmark session does not
regenerate identical hydraulics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


from ..core import AquaScale
from ..datasets import LeakDataset, generate_dataset
from ..hydraulics import WaterNetwork
from ..networks import build_network


@dataclass
class ExperimentResult:
    """Rows of a reproduced table/figure plus its provenance.

    Attributes:
        experiment: identifier, e.g. ``"fig07"``.
        title: human-readable description.
        rows: list of dict rows (the figure's series points).
        config: the parameters that produced the rows.
    """

    experiment: str
    title: str
    rows: list[dict[str, Any]]
    config: dict[str, Any] = field(default_factory=dict)

    def to_table(self) -> str:
        """Render rows as a GitHub-flavoured markdown table."""
        if not self.rows:
            return "(no rows)"
        columns = list(self.rows[0].keys())
        lines = ["| " + " | ".join(columns) + " |"]
        lines.append("|" + "|".join("---" for _ in columns) + "|")
        for row in self.rows:
            cells = []
            for column in columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    cells.append(f"{value:.3f}")
                else:
                    cells.append(str(value))
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def print_report(self) -> None:
        """Print the figure header and table (bench harness output)."""
        print(f"\n=== {self.experiment}: {self.title} ===")
        for key, value in self.config.items():
            print(f"    {key} = {value}")
        print(self.to_table())

    def series(self, x_key: str, y_key: str, **filters: Any) -> tuple[list, list]:
        """Extract an (x, y) series from rows matching ``filters``."""
        xs, ys = [], []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                xs.append(row[x_key])
                ys.append(row[y_key])
        return xs, ys


# ----------------------------------------------------------------------
# Process-level caches (benchmarks share networks/datasets/profiles).
# ----------------------------------------------------------------------
_NETWORK_CACHE: dict[str, WaterNetwork] = {}
_DATASET_CACHE: dict[tuple, LeakDataset] = {}
_MODEL_CACHE: dict[tuple, AquaScale] = {}


def cached_network(name: str) -> WaterNetwork:
    """Build (or reuse) a catalog network."""
    if name not in _NETWORK_CACHE:
        _NETWORK_CACHE[name] = build_network(name)
    return _NETWORK_CACHE[name]


def cached_dataset(
    network_name: str,
    n_samples: int,
    kind: str,
    seed: int,
    elapsed_slots: int = 1,
    max_events: int = 5,
) -> LeakDataset:
    """Generate (or reuse) a dataset keyed by its full parameter tuple."""
    key = (network_name, n_samples, kind, seed, elapsed_slots, max_events)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_dataset(
            cached_network(network_name),
            n_samples,
            kind=kind,
            seed=seed,
            elapsed_slots=elapsed_slots,
            max_events=max_events,
        )
    return _DATASET_CACHE[key]


def cached_model(
    network_name: str,
    classifier: str,
    iot_percent: float,
    train_samples: int,
    train_kind: str,
    seed: int = 0,
    max_events: int = 5,
    gamma: float = 30.0,
) -> AquaScale:
    """Train (or reuse) an AquaScale pipeline for a sweep point."""
    key = (
        network_name,
        classifier,
        iot_percent,
        train_samples,
        train_kind,
        seed,
        max_events,
        gamma,
    )
    if key not in _MODEL_CACHE:
        model = AquaScale(
            cached_network(network_name),
            iot_percent=iot_percent,
            classifier=classifier,
            seed=seed,
            gamma=gamma,
        )
        dataset = cached_dataset(
            network_name, train_samples, train_kind, seed + 11, max_events=max_events
        )
        model.train(dataset=dataset)
        _MODEL_CACHE[key] = model
    return _MODEL_CACHE[key]


def clear_caches() -> None:
    """Drop all memoised networks/datasets/models (tests use this)."""
    _NETWORK_CACHE.clear()
    _DATASET_CACHE.clear()
    _MODEL_CACHE.clear()
