"""Fig. 7: RF vs SVM vs HybridRSL across the IoT sweep (EPA-NET).

(a) single failures, (b) multiple failures: hamming score as the IoT
percentage grows; HybridRSL should dominate both base techniques, RF
should lead at low penetration with SVM catching up as sensors are added.
(c) the average score increment from adding weather + human inputs, which
grows as IoT coverage shrinks.
"""

from __future__ import annotations

import numpy as np

from ..core import PAPER_NAMES
from .common import ExperimentResult, cached_dataset, cached_model

DEFAULT_TECHNIQUES = ("rf", "svm", "hybrid-rsl")
DEFAULT_IOT_SWEEP = (10.0, 25.0, 50.0, 75.0, 100.0)


def run(
    network_name: str = "epanet",
    techniques: tuple[str, ...] = DEFAULT_TECHNIQUES,
    iot_sweep: tuple[float, ...] = DEFAULT_IOT_SWEEP,
    n_train: int = 1500,
    n_test: int = 150,
    seed: int = 0,
    fusion_technique: str = "hybrid-rsl",
) -> ExperimentResult:
    """Panels (a)/(b): technique x IoT sweep; panel (c): fusion increment."""
    rows = []
    for kind, panel in (("single", "a"), ("multi", "b")):
        test = cached_dataset(network_name, n_test, kind, seed + 201)
        for iot in iot_sweep:
            for technique in techniques:
                model = cached_model(
                    network_name,
                    technique,
                    iot_percent=iot,
                    train_samples=n_train,
                    train_kind=kind,
                    seed=seed,
                )
                score = model.evaluate(test, sources="iot")
                rows.append(
                    {
                        "panel": panel,
                        "failure_kind": kind,
                        "iot_percent": iot,
                        "technique": PAPER_NAMES.get(technique, technique),
                        "hamming_score": score,
                    }
                )

    # Panel (c): increment from weather+human, low-temperature scenarios.
    test_lt = cached_dataset(network_name, n_test, "low-temperature", seed + 301)
    for iot in iot_sweep:
        model = cached_model(
            network_name,
            fusion_technique,
            iot_percent=iot,
            train_samples=n_train,
            train_kind="low-temperature",
            seed=seed,
        )
        base = model.evaluate(test_lt, sources="iot")
        fused = model.evaluate(test_lt, sources="all")
        rows.append(
            {
                "panel": "c",
                "failure_kind": "low-temperature",
                "iot_percent": iot,
                "technique": PAPER_NAMES.get(fusion_technique, fusion_technique),
                "hamming_score": fused,
                "iot_only_score": base,
                "increment": fused - base,
            }
        )
    return ExperimentResult(
        experiment="fig07",
        title="RF / SVM / HybridRSL across IoT sweep + fusion increment",
        rows=rows,
        config={
            "network": network_name,
            "n_train": n_train,
            "n_test": n_test,
            "seed": seed,
        },
    )


def hybrid_dominates(result: ExperimentResult, panel: str, slack: float = 0.05) -> bool:
    """Whether HybridRSL >= max(RF, SVM) - slack at every sweep point."""
    points: dict[float, dict[str, float]] = {}
    for row in result.rows:
        if row["panel"] != panel:
            continue
        points.setdefault(row["iot_percent"], {})[row["technique"]] = row[
            "hamming_score"
        ]
    for iot, scores in points.items():
        if "HybridRSL" not in scores:
            return False
        best_base = max(v for k, v in scores.items() if k != "HybridRSL")
        if scores["HybridRSL"] < best_base - slack:
            return False
    return True
