"""Fig. 8: hamming-score surface over (IoT %, elapsed slots) on
WSSC-SUBNET with *Multiple Failures due to Low Temperature*.

(a) IoT data only, (b) IoT + temperature + human input, (c) the
increment.  The paper's claims: fused AquaSCALE stays robust even with
little IoT data, and the increment grows as IoT coverage shrinks.
"""

from __future__ import annotations

from ..datasets import generate_dataset
from .common import ExperimentResult, cached_model, cached_network

DEFAULT_IOT_SWEEP = (10.0, 30.0, 60.0, 100.0)
DEFAULT_SLOT_SWEEP = (1, 2, 4, 8)


def run(
    network_name: str = "wssc",
    iot_sweep: tuple[float, ...] = DEFAULT_IOT_SWEEP,
    slot_sweep: tuple[int, ...] = DEFAULT_SLOT_SWEEP,
    n_train: int = 1000,
    n_test: int = 120,
    seed: int = 0,
    technique: str = "hybrid-rsl",
    gamma: float = 30.0,
) -> ExperimentResult:
    """Score per (IoT %, elapsed slots) for IoT-only and all sources.

    One profile is trained per IoT level (at n = 1 features); for each
    elapsed-slot value a fresh test set is featurised with that ``n``
    (noise averaging improves with n; human reports accumulate with n).
    """
    network = cached_network(network_name)
    rows = []
    for iot in iot_sweep:
        model = cached_model(
            network_name,
            technique,
            iot_percent=iot,
            train_samples=n_train,
            train_kind="low-temperature",
            seed=seed,
            gamma=gamma,
        )
        for slots in slot_sweep:
            test = generate_dataset(
                network,
                n_test,
                kind="low-temperature",
                seed=seed + 401,
                elapsed_slots=slots,
            )
            iot_only = model.evaluate(test, sources="iot", elapsed_slots=slots)
            fused = model.evaluate(test, sources="all", elapsed_slots=slots)
            rows.append(
                {
                    "iot_percent": iot,
                    "elapsed_slots": slots,
                    "iot_only_score": iot_only,
                    "all_sources_score": fused,
                    "increment": fused - iot_only,
                }
            )
    return ExperimentResult(
        experiment="fig08",
        title="WSSC-SUBNET score surface: IoT %% x elapsed slots, IoT vs all sources",
        rows=rows,
        config={
            "network": network_name,
            "technique": technique,
            "n_train": n_train,
            "n_test": n_test,
            "gamma_m": gamma,
            "seed": seed,
        },
    )


def mean_increment_at(result: ExperimentResult, iot_percent: float) -> float:
    """Average fusion increment across elapsed slots at one IoT level."""
    values = [
        row["increment"] for row in result.rows if row["iot_percent"] == iot_percent
    ]
    if not values:
        return float("nan")
    return float(sum(values) / len(values))
