"""Per-figure reproduction drivers (one module per paper figure)."""

from . import (
    fig02_pressure_profiles,
    fig03_breaks_vs_temperature,
    fig06_ml_comparison,
    fig07_hybrid_comparison,
    fig08_wssc_surface,
    fig09_coarseness,
    fig10_max_leaks,
    fig11_flood,
)
from .common import (
    ExperimentResult,
    cached_dataset,
    cached_model,
    cached_network,
    clear_caches,
)

__all__ = [
    "ExperimentResult",
    "cached_dataset",
    "cached_model",
    "cached_network",
    "clear_caches",
    "fig02_pressure_profiles",
    "fig03_breaks_vs_temperature",
    "fig06_ml_comparison",
    "fig07_hybrid_comparison",
    "fig08_wssc_surface",
    "fig09_coarseness",
    "fig10_max_leaks",
    "fig11_flood",
]
