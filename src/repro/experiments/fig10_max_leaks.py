"""Fig. 10: score vs the maximum number of concurrent leak events.

Detection using only IoT data degrades as more simultaneous leaks
interact; aggregating temperature and human input flattens the curve.
Scenarios draw U(1, m) events for m = 2..8 on WSSC-SUBNET.
"""

from __future__ import annotations

from ..datasets import generate_dataset
from ..failures import ScenarioGenerator
from .common import ExperimentResult, cached_model, cached_network

DEFAULT_MAX_EVENTS_SWEEP = (2, 3, 4, 5, 6, 7, 8)


def run(
    network_name: str = "wssc",
    max_events_sweep: tuple[int, ...] = DEFAULT_MAX_EVENTS_SWEEP,
    iot_percent: float = 100.0,
    n_train: int = 1000,
    n_test: int = 100,
    elapsed_slots: int = 2,
    seed: int = 0,
    technique: str = "hybrid-rsl",
    train_max_events: int = 5,
) -> ExperimentResult:
    """Score per (max events, source mix).

    The profile is trained once on the paper's dataset condition —
    U(1, ``train_max_events``) with the paper's 5 — and the test
    population sweeps the maximum to 8, exactly as the paper's x-axis
    does.  Beyond the training condition the IoT-only profile faces
    concurrency levels it never saw, which is where its sensitivity
    shows; the external sources are unaffected by that shift.
    """
    network = cached_network(network_name)
    model = cached_model(
        network_name,
        technique,
        iot_percent=iot_percent,
        train_samples=n_train,
        train_kind="low-temperature",
        seed=seed,
        max_events=train_max_events,
    )
    rows = []
    for max_events in max_events_sweep:
        generator = ScenarioGenerator(network, seed=seed + 601 + max_events)
        scenarios = [
            generator.low_temperature_failure(max_events=max_events)
            for _ in range(n_test)
        ]
        test = generate_dataset(
            network,
            n_test,
            seed=seed + 601 + max_events,
            elapsed_slots=elapsed_slots,
            scenarios=scenarios,
        )
        rows.append(
            {
                "max_events": max_events,
                "iot_only_score": model.evaluate(
                    test, sources="iot", elapsed_slots=elapsed_slots
                ),
                "iot_human_score": model.evaluate(
                    test, sources="iot+human", elapsed_slots=elapsed_slots
                ),
                "all_sources_score": model.evaluate(
                    test, sources="all", elapsed_slots=elapsed_slots
                ),
            }
        )
    return ExperimentResult(
        experiment="fig10",
        title="Score vs maximum number of concurrent leak events (WSSC-SUBNET)",
        rows=rows,
        config={
            "network": network_name,
            "technique": technique,
            "iot_percent": iot_percent,
            "n_train": n_train,
            "n_test": n_test,
            "seed": seed,
        },
    )
