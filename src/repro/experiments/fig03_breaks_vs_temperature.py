"""Fig. 3: average pipe breaks/day vs ambient temperature, two counties.

The paper plots five years (2012-2016) of WSSC break reports against NOAA
temperatures for Prince George's and Montgomery counties; breaks rise
sharply below freezing.  The WSSC records are proprietary, so the series
is regenerated from the temperature-driven Poisson break model
(:mod:`repro.failures.breaks`) over a synthetic 5-year daily temperature
record — same mechanism, same shape.
"""

from __future__ import annotations

import numpy as np

from ..failures import (
    COUNTY_MODELS,
    breaks_by_temperature_bin,
    synthetic_daily_temperatures,
)
from .common import ExperimentResult

#: Five years of daily records, like the paper's 2012-2016 window.
N_DAYS = 5 * 365


def run(seed: int = 3, bin_width_f: float = 5.0) -> ExperimentResult:
    """Generate the two county series binned by temperature."""
    rng = np.random.default_rng(seed)
    temperatures = synthetic_daily_temperatures(N_DAYS, rng)
    edges = np.arange(
        np.floor(temperatures.min() / bin_width_f) * bin_width_f,
        temperatures.max() + bin_width_f,
        bin_width_f,
    )
    rows = []
    for county, model in COUNTY_MODELS.items():
        breaks = model.sample_daily_breaks(temperatures, rng)
        centres, means = breaks_by_temperature_bin(temperatures, breaks, edges)
        for centre, mean in zip(centres, means):
            if np.isnan(mean):
                continue
            rows.append(
                {
                    "county": county,
                    "temperature_f": float(centre),
                    "breaks_per_day": float(mean),
                }
            )
    return ExperimentResult(
        experiment="fig03",
        title="Average pipe breaks/day vs ambient temperature (5 synthetic years)",
        rows=rows,
        config={"n_days": N_DAYS, "bin_width_f": bin_width_f, "seed": seed},
    )


def cold_warm_ratio(result: ExperimentResult, county: str) -> float:
    """Mean breaks/day below 25F divided by mean above 55F.

    The paper's qualitative claim is that this ratio is well above 1.
    """
    cold = [
        r["breaks_per_day"]
        for r in result.rows
        if r["county"] == county and r["temperature_f"] < 25.0
    ]
    warm = [
        r["breaks_per_day"]
        for r in result.rows
        if r["county"] == county and r["temperature_f"] > 55.0
    ]
    if not cold or not warm:
        return float("nan")
    return float(np.mean(cold) / np.mean(warm))
