"""Feature preprocessing."""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_array


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are centred but left unscaled, so
    dead sensors do not blow up downstream linear models.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X, copy: bool = True) -> np.ndarray:
        """Standardise X.

        Args:
            X: (n_samples, n_features) input.
            copy: with ``copy=False`` an owned float64 array is scaled
                in place and returned — callers that already copied once
                (e.g. the ProfileModel feature path) avoid a second
                allocation.  Non-float64 input is converted (and thus
                copied) regardless.
        """
        self._check_fitted("mean_")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with "
                f"{self.mean_.shape[0]}"
            )
        if not copy:
            X -= self.mean_
            X /= self.scale_
            return X
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features to the [0, 1] range (constant features map to 0)."""

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = check_array(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.span_ = span
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("min_")
        X = check_array(X)
        return (X - self.min_) / self.span_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)
