"""Flattened tree-ensemble inference kernel.

A fitted forest is a list of small Python objects, and predicting walks
them one tree at a time — dozens of tiny numpy dispatches per batch.
:class:`FlattenedForest` compiles the ensemble once into flat arrays
(``feature``, ``threshold``, ``left``, ``right``, ``value`` with absolute
node indices and per-tree ``roots``) and traverses **all trees for all
samples** level-synchronously, so a Phase-II batch costs one short loop of
large vector ops instead of ``n_trees`` traversals.

Predictions are exactly those of the recursive estimators: traversal uses
the same ``x <= threshold`` comparisons, and accumulation replays the same
per-tree sequential order (see :meth:`predict_proba` / :meth:`raw_score`),
which is what the ``repro verify`` flattened==recursive oracle asserts.
"""

from __future__ import annotations

import numpy as np


class FlattenedForest:
    """Array-of-structs compilation of a fitted tree ensemble.

    Attributes:
        feature: (n_nodes,) split feature per node, -1 for leaves.
        threshold: (n_nodes,) split threshold (go left when x <= t).
        left/right: (n_nodes,) absolute child node indices, -1 at leaves.
        value: (n_nodes, n_outputs) per-node output rows.
        roots: (n_trees,) absolute root index of every tree.

    Instances hold only plain numpy arrays, so they pickle with the
    fitted estimator and survive process-pool round-trips.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
    ):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.roots = roots

    @classmethod
    def from_trees(cls, trees, values=None) -> "FlattenedForest":
        """Compile fitted trees (objects owning a ``_TreeArrays``).

        Args:
            trees: fitted estimators with a finalized ``_tree``.
            values: optional per-tree (n_nodes_t, n_outputs) matrices that
                replace each tree's own ``value_arr`` — used to pre-align
                forest class columns or to store boosting leaf values.
        """
        features, thresholds, lefts, rights, vals, roots = [], [], [], [], [], []
        offset = 0
        for t, tree in enumerate(trees):
            arrays = tree._tree
            n_nodes = len(arrays.feature_arr)
            roots.append(offset)
            features.append(arrays.feature_arr)
            thresholds.append(arrays.threshold_arr)
            internal = arrays.feature_arr >= 0
            lefts.append(np.where(internal, arrays.left_arr + offset, -1))
            rights.append(np.where(internal, arrays.right_arr + offset, -1))
            vals.append(values[t] if values is not None else arrays.value_arr)
            offset += n_nodes
        return cls(
            feature=np.concatenate(features),
            threshold=np.concatenate(thresholds),
            left=np.concatenate(lefts),
            right=np.concatenate(rights),
            value=np.vstack(vals),
            roots=np.asarray(roots, dtype=np.int64),
        )

    @property
    def n_trees(self) -> int:
        return len(self.roots)

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def nbytes(self) -> int:
        """Total bytes across the flat node tables.

        The bulk of a trained forest's memory — what multi-worker
        serving shares zero-copy (see :mod:`repro.serve.shm`).
        """
        return sum(array.nbytes for array in self.arrays().values())

    def arrays(self) -> dict[str, np.ndarray]:
        """The flat node tables by name (shared-memory publishing unit)."""
        return {
            "feature": self.feature,
            "threshold": self.threshold,
            "left": self.left,
            "right": self.right,
            "value": self.value,
            "roots": self.roots,
        }

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Absolute leaf node index for every (sample, tree) pair.

        Level-synchronous traversal: each iteration advances every sample
        that has not reached a leaf in *any* tree, so the loop runs
        max-depth times over the whole (n_samples, n_trees) frontier.
        """
        n = X.shape[0]
        nodes = np.repeat(self.roots[None, :], n, axis=0)
        active = self.feature[nodes] >= 0
        while np.any(active):
            rows, cols = np.nonzero(active)
            idx = nodes[rows, cols]
            go_left = X[rows, self.feature[idx]] <= self.threshold[idx]
            nodes[rows, cols] = np.where(go_left, self.left[idx], self.right[idx])
            active = self.feature[nodes] >= 0
        return nodes

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of per-tree output rows (random-forest voting).

        Accumulates tree-by-tree in index order — the same float addition
        sequence as the recursive forest loop — so results are
        bit-identical to the pre-flattening implementation.
        """
        leaves = self.apply(X)
        total = np.zeros((X.shape[0], self.value.shape[1]))
        for t in range(self.n_trees):
            total += self.value[leaves[:, t]]
        return total / self.n_trees

    def raw_score(self, X: np.ndarray, baseline: float, learning_rate: float) -> np.ndarray:
        """Boosting decision function: baseline + lr * sum of leaf values.

        Replays the per-stage ``raw = raw + lr * value[leaves]`` update of
        the sequential boosting loop, keeping the result bit-identical.
        """
        leaves = self.apply(X)
        raw = np.full(X.shape[0], baseline)
        for t in range(self.n_trees):
            raw = raw + learning_rate * self.value[leaves[:, t], 0]
        return raw
