"""CART decision trees (classification and regression).

Split search is vectorised with prefix sums over per-feature sort orders,
and prediction walks all samples through the tree level-by-level with
boolean masks, so both scale to the paper's 20k-sample training sets
without leaving numpy.

The regression tree doubles as the base learner for gradient boosting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base import BaseEstimator, ClassifierMixin, RegressorMixin, check_array, check_X_y


@dataclass
class _TreeArrays:
    """Flat array representation of a fitted tree."""

    feature: list[int] = field(default_factory=list)  # -1 for leaves
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[np.ndarray] = field(default_factory=list)  # class dist / mean

    def add_node(self, value: np.ndarray) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(value)
        return len(self.feature) - 1

    def finalize(self) -> None:
        self.feature_arr = np.asarray(self.feature, dtype=np.int64)
        self.threshold_arr = np.asarray(self.threshold)
        self.left_arr = np.asarray(self.left, dtype=np.int64)
        self.right_arr = np.asarray(self.right, dtype=np.int64)
        self.value_arr = np.vstack(self.value)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of X (vectorised level traversal)."""
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_arr[nodes] >= 0
        while np.any(active):
            idx = nodes[active]
            feat = self.feature_arr[idx]
            go_left = X[active, feat] <= self.threshold_arr[idx]
            nodes[active] = np.where(go_left, self.left_arr[idx], self.right_arr[idx])
            active = self.feature_arr[nodes] >= 0
        return nodes


def _best_split_classification(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, gini_gain) over candidate features.

    Returns None when no valid split exists.
    """
    n = len(y)
    counts_total = np.bincount(y, minlength=n_classes).astype(float)
    gini_parent = 1.0 - np.sum((counts_total / n) ** 2)
    best: tuple[int, float, float] | None = None
    best_gain = 1e-12
    onehot = np.eye(n_classes)[y]
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        prefix = np.cumsum(onehot[order], axis=0)  # (n, n_classes)
        # Valid split positions: between distinct consecutive values,
        # leaving >= min_samples_leaf on each side.
        distinct = xs[:-1] < xs[1:]
        positions = np.nonzero(distinct)[0] + 1  # left side size
        positions = positions[
            (positions >= min_samples_leaf) & (positions <= n - min_samples_leaf)
        ]
        if len(positions) == 0:
            continue
        left_counts = prefix[positions - 1]
        right_counts = counts_total - left_counts
        n_left = positions.astype(float)
        n_right = n - n_left
        gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2, axis=1)
        weighted = (n_left * gini_left + n_right * gini_right) / n
        gains = gini_parent - weighted
        k = int(np.argmax(gains))
        if gains[k] > best_gain:
            best_gain = float(gains[k])
            pos = positions[k]
            threshold = 0.5 * (xs[pos - 1] + xs[pos])
            best = (int(f), float(threshold), best_gain)
    return best


def _best_split_regression(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, variance_gain) for a regression node."""
    n = len(y)
    total_sum = float(np.sum(y))
    total_sq = float(np.sum(y**2))
    sse_parent = total_sq - total_sum**2 / n
    best: tuple[int, float, float] | None = None
    best_gain = 1e-12
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        ys = y[order]
        prefix_sum = np.cumsum(ys)
        prefix_sq = np.cumsum(ys**2)
        distinct = xs[:-1] < xs[1:]
        positions = np.nonzero(distinct)[0] + 1
        positions = positions[
            (positions >= min_samples_leaf) & (positions <= n - min_samples_leaf)
        ]
        if len(positions) == 0:
            continue
        left_sum = prefix_sum[positions - 1]
        left_sq = prefix_sq[positions - 1]
        n_left = positions.astype(float)
        n_right = n - n_left
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        sse = (left_sq - left_sum**2 / n_left) + (right_sq - right_sum**2 / n_right)
        gains = sse_parent - sse
        k = int(np.argmax(gains))
        if gains[k] > best_gain:
            best_gain = float(gains[k])
            pos = positions[k]
            best = (int(f), float(0.5 * (xs[pos - 1] + xs[pos])), best_gain)
    return best


def _bin_features(X: np.ndarray, max_bins: int) -> tuple[np.ndarray, np.ndarray]:
    """Quantile-bin every feature column for the histogram splitter.

    Thin wrapper over :class:`~repro.ml.binning.BinMapper` kept for the
    estimators' standalone ``fit`` paths; shared-binning callers build
    the mapper once and pass ``binned=(codes, edges)`` down instead.
    """
    from .binning import BinMapper

    mapper = BinMapper(max_bins=max_bins)
    codes = mapper.fit_transform(X)
    return codes, mapper.edges_


def _best_split_from_hist(
    hist: np.ndarray,
    n: int,
    counts_total: np.ndarray,
    feature_indices: np.ndarray,
    edges: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, int] | None:
    """Best Gini split from a pre-built (F, bins, classes) histogram.

    ``hist`` holds the candidate features' histograms in
    ``feature_indices`` order (exact integer counts in float64); the
    caller maintains them with the parent-minus-child subtraction trick,
    so this function is pure prefix-sum arithmetic.

    Returns (feature, edge_value, bin) or None when no split gains.
    """
    gini_parent = 1.0 - np.sum((counts_total / n) ** 2)
    prefix = np.cumsum(hist, axis=1)                # (F, bins, classes)
    left = prefix[:, :-1, :]                        # split after bin b
    n_left = left.sum(axis=2)                       # (F, bins-1)
    n_right = n - n_left
    valid = (n_left >= min_samples_leaf) & (n_right >= min_samples_leaf)
    if not np.any(valid):
        return None
    right = counts_total[None, None, :] - left
    safe_left = np.maximum(n_left, 1.0)[:, :, None]
    safe_right = np.maximum(n_right, 1.0)[:, :, None]
    gini_left = 1.0 - np.sum((left / safe_left) ** 2, axis=2)
    gini_right = 1.0 - np.sum((right / safe_right) ** 2, axis=2)
    weighted = (n_left * gini_left + n_right * gini_right) / n
    gains = np.where(valid, gini_parent - weighted, -np.inf)
    pos = int(np.argmax(gains))
    f_pos, b = divmod(pos, gains.shape[1])
    if gains[f_pos, b] <= 1e-12:
        return None
    feature = int(feature_indices[f_pos])
    return feature, float(edges[feature, b]), int(b)


def _best_split_from_hist_regression(
    counts: np.ndarray,
    sums: np.ndarray,
    sqs: np.ndarray,
    n: int,
    feature_indices: np.ndarray,
    edges: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, int] | None:
    """Best variance-reduction split from pre-built (F, bins) statistics."""
    total_sum = float(sums[0].sum())
    total_sq = float(sqs[0].sum())
    sse_parent = total_sq - total_sum**2 / n

    c_left = np.cumsum(counts, axis=1)[:, :-1]
    s_left = np.cumsum(sums, axis=1)[:, :-1]
    q_left = np.cumsum(sqs, axis=1)[:, :-1]
    c_right = n - c_left
    s_right = total_sum - s_left
    q_right = total_sq - q_left
    valid = (c_left >= min_samples_leaf) & (c_right >= min_samples_leaf)
    if not np.any(valid):
        return None
    with np.errstate(divide="ignore", invalid="ignore"):
        sse = (q_left - s_left**2 / np.maximum(c_left, 1.0)) + (
            q_right - s_right**2 / np.maximum(c_right, 1.0)
        )
    gains = np.where(valid, sse_parent - sse, -np.inf)
    pos = int(np.argmax(gains))
    f_pos, b = divmod(pos, gains.shape[1])
    if gains[f_pos, b] <= 1e-12:
        return None
    feature = int(feature_indices[f_pos])
    return feature, float(edges[feature, b]), int(b)


class _HistGrowerClassification:
    """Grows one classification tree from pre-binned codes.

    The expensive per-node work of the old splitter — building a flat
    (feature, bin, class) index and bincounting it — is hoisted: the flat
    index is built once per tree, each node bincounts only the *smaller*
    child, and the sibling histogram is the parent's minus the child's
    (exact for integer counts held in float64).
    """

    def __init__(
        self,
        tree,  # DecisionTreeClassifier being fitted
        codes: np.ndarray,
        y: np.ndarray,
        edges: np.ndarray,
        rng: np.random.Generator,
        k_features: int,
    ):
        self.tree = tree
        self.codes = codes
        self.edges = edges
        self.rng = rng
        self.k_features = k_features
        self.n_classes = tree._n_classes
        self.d = codes.shape[1]
        self.max_bins = edges.shape[1] + 1
        stride = self.max_bins * self.n_classes
        offsets = np.arange(self.d, dtype=np.int64) * stride
        self.flat = (
            offsets[None, :] + codes.astype(np.int64) * self.n_classes + y[:, None]
        ).astype(np.int32)
        self.size = self.d * stride

    def hist(self, rows: np.ndarray | None) -> np.ndarray:
        flat = self.flat if rows is None else self.flat[rows]
        return (
            np.bincount(flat.ravel(), minlength=self.size)
            .reshape(self.d, self.max_bins, self.n_classes)
            .astype(float)
        )

    def grow(self, rows: np.ndarray, hist: np.ndarray, depth: int) -> int:
        tree = self.tree
        counts = hist[0].sum(axis=0)  # any feature's bins sum to the class counts
        node = tree._tree.add_node(counts / counts.sum())
        n = len(rows)
        if (
            n < tree.min_samples_split
            or (tree.max_depth is not None and depth >= tree.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node
        if self.k_features < self.d:
            features = self.rng.choice(self.d, size=self.k_features, replace=False)
        else:
            features = np.arange(self.d)
        split = _best_split_from_hist(
            hist[features], n, counts, features, self.edges, tree.min_samples_leaf
        )
        if split is None:
            return node
        feature, edge_value, bin_index = split
        # codes <= b  <=>  x < edges[b]; record a strict-equivalent
        # threshold so apply()'s (x <= threshold) matches the binning.
        threshold = float(np.nextafter(edge_value, -np.inf))
        mask = self.codes[rows, feature] <= bin_index
        rows_left, rows_right = rows[mask], rows[~mask]
        if len(rows_left) <= len(rows_right):
            hist_left = self.hist(rows_left)
            hist_right = hist - hist_left
        else:
            hist_right = self.hist(rows_right)
            hist_left = hist - hist_right
        left = self.grow(rows_left, hist_left, depth + 1)
        right = self.grow(rows_right, hist_right, depth + 1)
        tree._tree.feature[node] = feature
        tree._tree.threshold[node] = threshold
        tree._tree.left[node] = left
        tree._tree.right[node] = right
        return node


class _HistForestGrower:
    """Level-synchronous trainer for a whole hist-splitter forest.

    Per-junction forests are many *tiny* trees (tens of nodes on a few
    hundred subsampled rows), so recursive growth pays numpy dispatch
    overhead per node.  This grower advances every still-growing node of
    every tree in lock step: one ``bincount`` builds the (node, feature,
    bin, class) histograms for the whole frontier, split selection is one
    broadcast gain evaluation across the frontier, and rows are routed to
    children with one gather — the per-*node* Python cost collapses to a
    small bookkeeping loop.

    Bootstrap multiplicity is handled by listing a row index once per
    draw.  Feature subsets are sampled per node from the single forest
    RNG (argsort-of-uniforms, one draw per level), so fits are
    deterministic in the forest seed.
    """

    def __init__(
        self,
        codes: np.ndarray,
        y: np.ndarray,
        edges: np.ndarray,
        n_classes: int,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        k_features: int,
        rng: np.random.Generator,
    ):
        self.codes = codes
        self.y = y
        self.edges = edges
        self.n_classes = n_classes
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.k_features = k_features
        self.rng = rng
        self.d = codes.shape[1]
        self.max_bins = edges.shape[1] + 1
        stride = self.max_bins * n_classes
        self.stride_tree = self.d * stride
        self.y64 = np.ascontiguousarray(y, dtype=np.int64)
        if k_features < self.d:
            # Subset path: gather pre-scaled codes so the per-level key is
            # one fancy-index plus two in-place adds (no astype, no mult).
            self.codes_c = codes.astype(np.int64) * n_classes
        else:
            offsets = np.arange(self.d, dtype=np.int64) * stride
            self.flat = (
                offsets[None, :] + codes.astype(np.int64) * n_classes + y[:, None]
            )

    def _eligible(self, counts: np.ndarray, depth: int) -> bool:
        return (
            counts.sum() >= self.min_samples_split
            and (self.max_depth is None or depth < self.max_depth)
            and int(np.count_nonzero(counts)) > 1
        )

    def grow(self, samples_per_tree: list[np.ndarray]) -> list[_TreeArrays]:
        n_trees = len(samples_per_tree)
        arrays = [_TreeArrays() for _ in range(n_trees)]
        C, S = self.n_classes, self.stride_tree
        rows = np.concatenate(samples_per_tree)
        slots = np.repeat(
            np.arange(n_trees, dtype=np.int64),
            [len(s) for s in samples_per_tree],
        )
        root_counts = (
            np.bincount(slots * C + self.y[rows], minlength=n_trees * C)
            .reshape(n_trees, C)
            .astype(float)
        )
        frontier_tree: list[int] = []
        frontier_node: list[int] = []
        keep_tree = np.zeros(n_trees, dtype=bool)
        slot_of_tree = np.full(n_trees, -1, dtype=np.int64)
        for t in range(n_trees):
            counts = root_counts[t]
            arrays[t].add_node(counts / counts.sum())
            if self._eligible(counts, depth=0):
                keep_tree[t] = True
                slot_of_tree[t] = len(frontier_tree)
                frontier_tree.append(t)
                frontier_node.append(0)
        mask = keep_tree[slots]
        rows, slots = rows[mask], slot_of_tree[slots[mask]]
        depth = 0

        while frontier_tree:
            L = len(frontier_tree)
            if self.k_features < self.d:
                order = np.argsort(self.rng.random((L, self.d)), axis=1)
                feats = order[:, : self.k_features]
                # Histograms are only consumed for each node's sampled
                # feature subset, so bin just those columns: the bincount
                # key gathers codes[row, feats[slot]] per row — k/d of
                # the full-histogram work (k = sqrt(d) for forests).
                F = self.k_features
                key = self.codes_c[rows[:, None], feats[slots]]
                key += (slots * (F * self.max_bins * C) + self.y64[rows])[:, None]
                key += np.arange(F, dtype=np.int64) * (self.max_bins * C)
                sub = np.bincount(
                    key.ravel(), minlength=L * F * self.max_bins * C
                ).reshape(L, F, self.max_bins, C)
            else:
                feats = np.broadcast_to(np.arange(self.d), (L, self.d))
                sub = np.bincount(
                    ((slots * S)[:, None] + self.flat[rows]).ravel(),
                    minlength=L * S,
                ).reshape(L, self.d, self.max_bins, C)
            counts_int = sub[:, 0].sum(axis=1)  # every feature's bins sum to these
            counts = counts_int.astype(float)
            n_node = counts.sum(axis=1)
            gini_parent = 1.0 - ((counts / n_node[:, None]) ** 2).sum(axis=1)
            idx = np.arange(L)
            if C == 2:
                # Two-class Gini: minimising the weighted child impurity
                # 2/n*(nl0*nl1/nl + nr0*nr1/nr) is (affinely, per node)
                # equivalent to maximising l1^2/nl + r1^2/nr, so the gain
                # surface shrinks to one score plane on (L, F, bins) —
                # integer histograms throughout, two divisions total.
                p1 = np.cumsum(sub[..., 1], axis=2)[:, :, :-1]
                n_left = np.cumsum(sub[..., 0], axis=2)[:, :, :-1]
                n_left += p1
                n_right = counts_int.sum(axis=1)[:, None, None] - n_left
                r1 = counts_int[:, None, None, 1] - p1
                score = p1 * p1 / np.maximum(n_left, 1)
                score += r1 * r1 / np.maximum(n_right, 1)
                if self.min_samples_leaf > 1:
                    valid = (n_left >= self.min_samples_leaf) & (
                        n_right >= self.min_samples_leaf
                    )
                    score = np.where(valid, score, -np.inf)
                # min_samples_leaf == 1 needs no mask: an empty side
                # contributes 0 and the other side exactly the no-split
                # baseline n1^2/n, whose gain is ~0 and fails the
                # has_split threshold below.
                flat_score = score.reshape(L, -1)
                pos = np.argmax(flat_score, axis=1)
                f_pos, b_best = np.divmod(pos, score.shape[2])
                n1_node = counts[:, 1]
                gain_best = gini_parent - (
                    2.0 / n_node
                ) * (n1_node - flat_score[idx, pos])
                has_split = gain_best > 1e-12
                l1_best = p1[idx, f_pos, b_best].astype(float)
                ln_best = n_left[idx, f_pos, b_best].astype(float)
                left_counts = np.stack((ln_best - l1_best, l1_best), axis=1)
            else:
                sub = sub.astype(float)
                prefix = np.cumsum(sub, axis=2)
                left = prefix[:, :, :-1, :]
                n_left = left.sum(axis=3)
                n_right = n_node[:, None, None] - n_left
                valid = (n_left >= self.min_samples_leaf) & (
                    n_right >= self.min_samples_leaf
                )
                right = counts[:, None, None, :] - left
                gini_left = 1.0 - (
                    (left / np.maximum(n_left, 1.0)[..., None]) ** 2
                ).sum(axis=3)
                gini_right = 1.0 - (
                    (right / np.maximum(n_right, 1.0)[..., None]) ** 2
                ).sum(axis=3)
                weighted = (n_left * gini_left + n_right * gini_right) / n_node[
                    :, None, None
                ]
                gains = np.where(
                    valid, gini_parent[:, None, None] - weighted, -np.inf
                )
                flat_gains = gains.reshape(L, -1)
                pos = np.argmax(flat_gains, axis=1)
                has_split = flat_gains[idx, pos] > 1e-12
                f_pos, b_best = np.divmod(pos, gains.shape[2])
                left_counts = left[idx, f_pos, b_best]  # (L, C)
            feat_best = feats[idx, f_pos]
            thresholds = np.nextafter(self.edges[feat_best, b_best], -np.inf)
            right_counts = counts - left_counts
            left_n = left_counts.sum(axis=1)
            right_n = right_counts.sum(axis=1)
            left_values = left_counts / np.maximum(left_n, 1.0)[:, None]
            right_values = right_counts / np.maximum(right_n, 1.0)[:, None]
            child_depth = depth + 1
            # Child eligibility for the whole level at once (the scalar
            # _eligible check per child would dominate the level loop).
            if self.max_depth is None or child_depth < self.max_depth:
                left_ok = (
                    has_split
                    & (left_n >= self.min_samples_split)
                    & ((left_counts > 0).sum(axis=1) > 1)
                )
                right_ok = (
                    has_split
                    & (right_n >= self.min_samples_split)
                    & ((right_counts > 0).sum(axis=1) > 1)
                )
            else:
                left_ok = right_ok = np.zeros(L, dtype=bool)
            left_ok_list = left_ok.tolist()
            right_ok_list = right_ok.tolist()
            has_split_list = has_split.tolist()
            feat_list = feat_best.tolist()
            thr_list = thresholds.tolist()

            next_tree: list[int] = []
            next_node: list[int] = []
            left_slot = np.full(L, -1, dtype=np.int64)
            right_slot = np.full(L, -1, dtype=np.int64)
            slot_feat = np.full(L, -1, dtype=np.int64)
            slot_bin = np.zeros(L, dtype=np.int64)
            for i in range(L):
                if not has_split_list[i]:
                    continue
                t = frontier_tree[i]
                tree_arrays = arrays[t]
                node = frontier_node[i]
                left_id = tree_arrays.add_node(left_values[i])
                right_id = tree_arrays.add_node(right_values[i])
                tree_arrays.feature[node] = feat_list[i]
                tree_arrays.threshold[node] = thr_list[i]
                tree_arrays.left[node] = left_id
                tree_arrays.right[node] = right_id
                slot_feat[i] = feat_list[i]
                slot_bin[i] = b_best[i]
                if left_ok_list[i]:
                    left_slot[i] = len(next_tree)
                    next_tree.append(t)
                    next_node.append(left_id)
                if right_ok_list[i]:
                    right_slot[i] = len(next_tree)
                    next_tree.append(t)
                    next_node.append(right_id)

            survivors = slot_feat[slots] >= 0
            rows, slots = rows[survivors], slots[survivors]
            go_left = self.codes[rows, slot_feat[slots]] <= slot_bin[slots]
            new_slots = np.where(go_left, left_slot[slots], right_slot[slots])
            keep = new_slots >= 0
            rows, slots = rows[keep], new_slots[keep]
            frontier_tree, frontier_node = next_tree, next_node
            depth = child_depth

        for tree_arrays in arrays:
            tree_arrays.finalize()
        return arrays


class _HistGrowerRegression:
    """Regression twin of :class:`_HistGrowerClassification`.

    Maintains (counts, sums, sums-of-squares) per (feature, bin) with the
    same smaller-child + subtraction strategy.  Count subtraction is
    exact; sum subtraction is float arithmetic, i.e. equivalent to the
    split statistics the old per-node splitter derived from parent totals.
    """

    def __init__(
        self,
        tree,  # DecisionTreeRegressor being fitted
        codes: np.ndarray,
        y: np.ndarray,
        edges: np.ndarray,
        rng: np.random.Generator,
        k_features: int,
    ):
        self.tree = tree
        self.codes = codes
        self.y = y
        self.y_sq = y**2
        self.edges = edges
        self.rng = rng
        self.k_features = k_features
        self.d = codes.shape[1]
        self.max_bins = edges.shape[1] + 1
        offsets = np.arange(self.d, dtype=np.int64) * self.max_bins
        self.flat = (offsets[None, :] + codes.astype(np.int64)).astype(np.int32)
        self.size = self.d * self.max_bins

    def stats(self, rows: np.ndarray | None) -> tuple[np.ndarray, ...]:
        flat = (self.flat if rows is None else self.flat[rows]).ravel()
        y = self.y if rows is None else self.y[rows]
        y_sq = self.y_sq if rows is None else self.y_sq[rows]
        shape = (self.d, self.max_bins)
        counts = np.bincount(flat, minlength=self.size).reshape(shape).astype(float)
        weights = np.repeat(y, self.d)
        sums = np.bincount(flat, weights=weights, minlength=self.size).reshape(shape)
        weights_sq = np.repeat(y_sq, self.d)
        sqs = np.bincount(flat, weights=weights_sq, minlength=self.size).reshape(shape)
        return counts, sums, sqs

    def grow(
        self,
        rows: np.ndarray,
        stats: tuple[np.ndarray, ...],
        depth: int,
    ) -> int:
        tree = self.tree
        y_node = self.y[rows]
        node = tree._tree.add_node(np.array([float(np.mean(y_node))]))
        n = len(rows)
        if (
            n < tree.min_samples_split
            or (tree.max_depth is not None and depth >= tree.max_depth)
            or float(np.ptp(y_node)) == 0.0
        ):
            return node
        if self.k_features < self.d:
            features = self.rng.choice(self.d, size=self.k_features, replace=False)
        else:
            features = np.arange(self.d)
        counts, sums, sqs = stats
        split = _best_split_from_hist_regression(
            counts[features],
            sums[features],
            sqs[features],
            n,
            features,
            self.edges,
            tree.min_samples_leaf,
        )
        if split is None:
            return node
        feature, edge_value, bin_index = split
        threshold = float(np.nextafter(edge_value, -np.inf))
        mask = self.codes[rows, feature] <= bin_index
        rows_left, rows_right = rows[mask], rows[~mask]
        if len(rows_left) <= len(rows_right):
            stats_left = self.stats(rows_left)
            stats_right = tuple(p - c for p, c in zip(stats, stats_left))
        else:
            stats_right = self.stats(rows_right)
            stats_left = tuple(p - c for p, c in zip(stats, stats_right))
        left = self.grow(rows_left, stats_left, depth + 1)
        right = self.grow(rows_right, stats_right, depth + 1)
        tree._tree.feature[node] = feature
        tree._tree.threshold[node] = threshold
        tree._tree.left[node] = left
        tree._tree.right[node] = right
        return node


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, float):
        return max(1, min(n_features, int(max_features * n_features)))
    return max(1, min(n_features, int(max_features)))


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classifier with Gini impurity.

    Args:
        max_depth: depth cap (None = unbounded).
        min_samples_split: minimum node size eligible for splitting.
        min_samples_leaf: minimum samples on each side of a split.
        max_features: features considered per split (None, "sqrt",
            "log2", an int, or a float fraction) — resampled per split,
            which is what makes random forests random.
        splitter: "exact" scans every distinct value; "hist" quantile-bins
            each feature once (``max_bins`` bins) and scans bin edges —
            an order of magnitude faster on wide telemetry matrices with
            negligible accuracy cost.
        max_bins: bin count for the "hist" splitter.
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        splitter: str = "exact",
        max_bins: int = 32,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y, sample_indices: np.ndarray | None = None) -> "DecisionTreeClassifier":
        if self.splitter not in ("exact", "hist"):
            raise ValueError(f"splitter must be 'exact' or 'hist', got {self.splitter!r}")
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if sample_indices is not None:
            X = X[sample_indices]
            encoded = encoded[sample_indices]
        self._n_classes = len(self.classes_)
        self._tree = _TreeArrays()
        rng = np.random.default_rng(self.random_state)
        k = _resolve_max_features(self.max_features, X.shape[1])
        if self.splitter == "hist":
            codes, edges = _bin_features(X, self.max_bins)
            grower = _HistGrowerClassification(self, codes, encoded, edges, rng, k)
            grower.grow(np.arange(X.shape[0]), grower.hist(None), depth=0)
        else:
            self._grow(X, encoded, depth=0, rng=rng, k_features=k)
        self._tree.finalize()
        return self

    def fit_binned(
        self,
        codes: np.ndarray,
        edges: np.ndarray,
        y: np.ndarray,
        classes: np.ndarray,
    ) -> "DecisionTreeClassifier":
        """Fit on pre-binned features (random forests bin once, not per
        tree).  ``y`` must already be encoded as indices into ``classes``.
        """
        self.classes_ = classes
        self._n_classes = len(classes)
        self._tree = _TreeArrays()
        rng = np.random.default_rng(self.random_state)
        k = _resolve_max_features(self.max_features, codes.shape[1])
        grower = _HistGrowerClassification(self, codes, y, edges, rng, k)
        grower.grow(np.arange(codes.shape[0]), grower.hist(None), depth=0)
        self._tree.finalize()
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator, k_features: int
    ) -> int:
        counts = np.bincount(y, minlength=self._n_classes).astype(float)
        node = self._tree.add_node(counts / counts.sum())
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node
        if k_features < X.shape[1]:
            features = rng.choice(X.shape[1], size=k_features, replace=False)
        else:
            features = np.arange(X.shape[1])
        split = _best_split_classification(
            X, y, self._n_classes, features, self.min_samples_leaf
        )
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], y[mask], depth + 1, rng, k_features)
        right = self._grow(X[~mask], y[~mask], depth + 1, rng, k_features)
        self._tree.feature[node] = feature
        self._tree.threshold[node] = threshold
        self._tree.left[node] = left
        self._tree.right[node] = right
        return node

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("_tree")
        X = check_array(X)
        leaves = self._tree.apply(X)
        return self._tree.value_arr[leaves]

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def node_count(self) -> int:
        """Total nodes (internal + leaves) in the fitted tree."""
        self._check_fitted("_tree")
        return len(self._tree.feature)


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regressor with variance reduction (the boosting base learner).

    Supports the same "hist" splitter as the classifier; gradient
    boosting bins once per fit and reuses the codes across stages.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        splitter: str = "exact",
        max_bins: int = 32,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        if self.splitter not in ("exact", "hist"):
            raise ValueError(f"splitter must be 'exact' or 'hist', got {self.splitter!r}")
        X, y = check_X_y(X, np.asarray(y, dtype=float))
        if self.splitter == "hist":
            codes, edges = _bin_features(X, self.max_bins)
            return self.fit_binned(codes, edges, y)
        self._tree = _TreeArrays()
        rng = np.random.default_rng(self.random_state)
        k = _resolve_max_features(self.max_features, X.shape[1])
        self._grow(X, y, depth=0, rng=rng, k_features=k)
        self._tree.finalize()
        return self

    def fit_binned(
        self, codes: np.ndarray, edges: np.ndarray, y: np.ndarray
    ) -> "DecisionTreeRegressor":
        """Fit on pre-binned features (see DecisionTreeClassifier)."""
        y = np.asarray(y, dtype=float)
        self._tree = _TreeArrays()
        rng = np.random.default_rng(self.random_state)
        k = _resolve_max_features(self.max_features, codes.shape[1])
        grower = _HistGrowerRegression(self, codes, y, edges, rng, k)
        grower.grow(np.arange(codes.shape[0]), grower.stats(None), depth=0)
        self._tree.finalize()
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator, k_features: int
    ) -> int:
        node = self._tree.add_node(np.array([float(np.mean(y))]))
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or float(np.ptp(y)) == 0.0
        ):
            return node
        if k_features < X.shape[1]:
            features = rng.choice(X.shape[1], size=k_features, replace=False)
        else:
            features = np.arange(X.shape[1])
        split = _best_split_regression(X, y, features, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], y[mask], depth + 1, rng, k_features)
        right = self._grow(X[~mask], y[~mask], depth + 1, rng, k_features)
        self._tree.feature[node] = feature
        self._tree.threshold[node] = threshold
        self._tree.left[node] = left
        self._tree.right[node] = right
        return node

    def predict(self, X) -> np.ndarray:
        self._check_fitted("_tree")
        X = check_array(X)
        leaves = self._tree.apply(X)
        return self._tree.value_arr[leaves, 0]

    def apply(self, X) -> np.ndarray:
        """Leaf index per sample (used by gradient boosting's leaf update)."""
        self._check_fitted("_tree")
        return self._tree.apply(check_array(X))

    @property
    def node_count(self) -> int:
        """Total nodes (internal + leaves) in the fitted tree."""
        self._check_fitted("_tree")
        return len(self._tree.feature)
