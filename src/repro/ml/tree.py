"""CART decision trees (classification and regression).

Split search is vectorised with prefix sums over per-feature sort orders,
and prediction walks all samples through the tree level-by-level with
boolean masks, so both scale to the paper's 20k-sample training sets
without leaving numpy.

The regression tree doubles as the base learner for gradient boosting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base import BaseEstimator, ClassifierMixin, RegressorMixin, check_array, check_X_y


@dataclass
class _TreeArrays:
    """Flat array representation of a fitted tree."""

    feature: list[int] = field(default_factory=list)  # -1 for leaves
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[np.ndarray] = field(default_factory=list)  # class dist / mean

    def add_node(self, value: np.ndarray) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(value)
        return len(self.feature) - 1

    def finalize(self) -> None:
        self.feature_arr = np.asarray(self.feature, dtype=np.int64)
        self.threshold_arr = np.asarray(self.threshold)
        self.left_arr = np.asarray(self.left, dtype=np.int64)
        self.right_arr = np.asarray(self.right, dtype=np.int64)
        self.value_arr = np.vstack(self.value)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of X (vectorised level traversal)."""
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_arr[nodes] >= 0
        while np.any(active):
            idx = nodes[active]
            feat = self.feature_arr[idx]
            go_left = X[active, feat] <= self.threshold_arr[idx]
            nodes[active] = np.where(go_left, self.left_arr[idx], self.right_arr[idx])
            active = self.feature_arr[nodes] >= 0
        return nodes


def _best_split_classification(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, gini_gain) over candidate features.

    Returns None when no valid split exists.
    """
    n = len(y)
    counts_total = np.bincount(y, minlength=n_classes).astype(float)
    gini_parent = 1.0 - np.sum((counts_total / n) ** 2)
    best: tuple[int, float, float] | None = None
    best_gain = 1e-12
    onehot = np.eye(n_classes)[y]
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        prefix = np.cumsum(onehot[order], axis=0)  # (n, n_classes)
        # Valid split positions: between distinct consecutive values,
        # leaving >= min_samples_leaf on each side.
        distinct = xs[:-1] < xs[1:]
        positions = np.nonzero(distinct)[0] + 1  # left side size
        positions = positions[
            (positions >= min_samples_leaf) & (positions <= n - min_samples_leaf)
        ]
        if len(positions) == 0:
            continue
        left_counts = prefix[positions - 1]
        right_counts = counts_total - left_counts
        n_left = positions.astype(float)
        n_right = n - n_left
        gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2, axis=1)
        weighted = (n_left * gini_left + n_right * gini_right) / n
        gains = gini_parent - weighted
        k = int(np.argmax(gains))
        if gains[k] > best_gain:
            best_gain = float(gains[k])
            pos = positions[k]
            threshold = 0.5 * (xs[pos - 1] + xs[pos])
            best = (int(f), float(threshold), best_gain)
    return best


def _best_split_regression(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, variance_gain) for a regression node."""
    n = len(y)
    total_sum = float(np.sum(y))
    total_sq = float(np.sum(y**2))
    sse_parent = total_sq - total_sum**2 / n
    best: tuple[int, float, float] | None = None
    best_gain = 1e-12
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        ys = y[order]
        prefix_sum = np.cumsum(ys)
        prefix_sq = np.cumsum(ys**2)
        distinct = xs[:-1] < xs[1:]
        positions = np.nonzero(distinct)[0] + 1
        positions = positions[
            (positions >= min_samples_leaf) & (positions <= n - min_samples_leaf)
        ]
        if len(positions) == 0:
            continue
        left_sum = prefix_sum[positions - 1]
        left_sq = prefix_sq[positions - 1]
        n_left = positions.astype(float)
        n_right = n - n_left
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        sse = (left_sq - left_sum**2 / n_left) + (right_sq - right_sum**2 / n_right)
        gains = sse_parent - sse
        k = int(np.argmax(gains))
        if gains[k] > best_gain:
            best_gain = float(gains[k])
            pos = positions[k]
            best = (int(f), float(0.5 * (xs[pos - 1] + xs[pos])), best_gain)
    return best


def _bin_features(X: np.ndarray, max_bins: int) -> tuple[np.ndarray, np.ndarray]:
    """Quantile-bin every feature column for the histogram splitter.

    Returns:
        (codes, edges): ``codes`` is an int16 matrix of bin indices in
        ``[0, max_bins - 1]``; ``edges`` is a (d, max_bins - 1) matrix
        where ``edges[f, b]`` is the raw upper boundary of bin b of
        feature f — padded with +inf for features with fewer distinct
        quantiles (those phantom splits separate nothing and are never
        chosen).
    """
    n, d = X.shape
    codes = np.empty((n, d), dtype=np.int16)
    edges = np.full((d, max_bins - 1), np.inf)
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    for f in range(d):
        column = X[:, f]
        cuts = np.unique(np.quantile(column, quantiles))
        codes[:, f] = np.searchsorted(cuts, column, side="right")
        edges[f, : len(cuts)] = cuts
    return codes, edges


def _best_split_hist(
    codes: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    edges: np.ndarray,
    min_samples_leaf: int,
    max_bins: int,
) -> tuple[int, float, float] | None:
    """Histogram-based Gini split, vectorised across all features.

    One ``bincount`` over (feature, bin, class) triples replaces the
    per-feature sorting of the exact splitter: O(rows * features) with a
    single C-level pass.
    """
    n = len(y)
    n_feat = len(feature_indices)
    counts_total = np.bincount(y, minlength=n_classes).astype(float)
    gini_parent = 1.0 - np.sum((counts_total / n) ** 2)

    sub = codes[:, feature_indices].astype(np.int64)  # (n, F)
    offsets = np.arange(n_feat, dtype=np.int64)[None, :] * (max_bins * n_classes)
    flat = offsets + sub * n_classes + y[:, None]
    hist = np.bincount(
        flat.ravel(), minlength=n_feat * max_bins * n_classes
    ).reshape(n_feat, max_bins, n_classes)

    prefix = np.cumsum(hist, axis=1).astype(float)  # (F, bins, classes)
    left = prefix[:, :-1, :]                        # split after bin b
    n_left = left.sum(axis=2)                       # (F, bins-1)
    n_right = n - n_left
    valid = (n_left >= min_samples_leaf) & (n_right >= min_samples_leaf)
    if not np.any(valid):
        return None
    right = counts_total[None, None, :] - left
    safe_left = np.maximum(n_left, 1.0)[:, :, None]
    safe_right = np.maximum(n_right, 1.0)[:, :, None]
    gini_left = 1.0 - np.sum((left / safe_left) ** 2, axis=2)
    gini_right = 1.0 - np.sum((right / safe_right) ** 2, axis=2)
    weighted = (n_left * gini_left + n_right * gini_right) / n
    gains = np.where(valid, gini_parent - weighted, -np.inf)
    pos = int(np.argmax(gains))
    f_pos, b = divmod(pos, gains.shape[1])
    if gains[f_pos, b] <= 1e-12:
        return None
    feature = int(feature_indices[f_pos])
    return feature, float(edges[feature, b]), float(gains[f_pos, b])


def _best_split_hist_regression(
    codes: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    edges: np.ndarray,
    min_samples_leaf: int,
    max_bins: int,
) -> tuple[int, float, float] | None:
    """Histogram variance-reduction split, vectorised across features."""
    n = len(y)
    n_feat = len(feature_indices)
    total_sum = float(np.sum(y))
    total_sq = float(np.sum(y**2))
    sse_parent = total_sq - total_sum**2 / n

    sub = codes[:, feature_indices].astype(np.int64)  # (n, F)
    offsets = np.arange(n_feat, dtype=np.int64)[None, :] * max_bins
    flat = (offsets + sub).ravel()
    counts = np.bincount(flat, minlength=n_feat * max_bins).reshape(n_feat, max_bins)
    sums = np.bincount(
        flat, weights=np.repeat(y, n_feat), minlength=n_feat * max_bins
    ).reshape(n_feat, max_bins)
    sqs = np.bincount(
        flat, weights=np.repeat(y**2, n_feat), minlength=n_feat * max_bins
    ).reshape(n_feat, max_bins)

    c_left = np.cumsum(counts, axis=1)[:, :-1].astype(float)
    s_left = np.cumsum(sums, axis=1)[:, :-1]
    q_left = np.cumsum(sqs, axis=1)[:, :-1]
    c_right = n - c_left
    s_right = total_sum - s_left
    q_right = total_sq - q_left
    valid = (c_left >= min_samples_leaf) & (c_right >= min_samples_leaf)
    if not np.any(valid):
        return None
    with np.errstate(divide="ignore", invalid="ignore"):
        sse = (q_left - s_left**2 / np.maximum(c_left, 1.0)) + (
            q_right - s_right**2 / np.maximum(c_right, 1.0)
        )
    gains = np.where(valid, sse_parent - sse, -np.inf)
    pos = int(np.argmax(gains))
    f_pos, b = divmod(pos, gains.shape[1])
    if gains[f_pos, b] <= 1e-12:
        return None
    feature = int(feature_indices[f_pos])
    return feature, float(edges[feature, b]), float(gains[f_pos, b])


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, float):
        return max(1, min(n_features, int(max_features * n_features)))
    return max(1, min(n_features, int(max_features)))


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classifier with Gini impurity.

    Args:
        max_depth: depth cap (None = unbounded).
        min_samples_split: minimum node size eligible for splitting.
        min_samples_leaf: minimum samples on each side of a split.
        max_features: features considered per split (None, "sqrt",
            "log2", an int, or a float fraction) — resampled per split,
            which is what makes random forests random.
        splitter: "exact" scans every distinct value; "hist" quantile-bins
            each feature once (``max_bins`` bins) and scans bin edges —
            an order of magnitude faster on wide telemetry matrices with
            negligible accuracy cost.
        max_bins: bin count for the "hist" splitter.
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        splitter: str = "exact",
        max_bins: int = 32,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y, sample_indices: np.ndarray | None = None) -> "DecisionTreeClassifier":
        if self.splitter not in ("exact", "hist"):
            raise ValueError(f"splitter must be 'exact' or 'hist', got {self.splitter!r}")
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if sample_indices is not None:
            X = X[sample_indices]
            encoded = encoded[sample_indices]
        self._n_classes = len(self.classes_)
        self._tree = _TreeArrays()
        rng = np.random.default_rng(self.random_state)
        k = _resolve_max_features(self.max_features, X.shape[1])
        if self.splitter == "hist":
            codes, edges = _bin_features(X, self.max_bins)
            self._grow_hist(
                codes, encoded, edges, np.arange(X.shape[0]), depth=0, rng=rng, k_features=k
            )
        else:
            self._grow(X, encoded, depth=0, rng=rng, k_features=k)
        self._tree.finalize()
        return self

    def fit_binned(
        self,
        codes: np.ndarray,
        edges: np.ndarray,
        y: np.ndarray,
        classes: np.ndarray,
    ) -> "DecisionTreeClassifier":
        """Fit on pre-binned features (random forests bin once, not per
        tree).  ``y`` must already be encoded as indices into ``classes``.
        """
        self.classes_ = classes
        self._n_classes = len(classes)
        self._tree = _TreeArrays()
        rng = np.random.default_rng(self.random_state)
        k = _resolve_max_features(self.max_features, codes.shape[1])
        self._grow_hist(
            codes, y, edges, np.arange(codes.shape[0]), depth=0, rng=rng, k_features=k
        )
        self._tree.finalize()
        return self

    def _grow_hist(
        self,
        codes: np.ndarray,
        y: np.ndarray,
        edges: np.ndarray,
        rows: np.ndarray,
        depth: int,
        rng: np.random.Generator,
        k_features: int,
    ) -> int:
        counts = np.bincount(y[rows], minlength=self._n_classes).astype(float)
        node = self._tree.add_node(counts / counts.sum())
        if (
            len(rows) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node
        if k_features < codes.shape[1]:
            features = rng.choice(codes.shape[1], size=k_features, replace=False)
        else:
            features = np.arange(codes.shape[1])
        split = _best_split_hist(
            codes[rows],
            y[rows],
            self._n_classes,
            features,
            edges,
            self.min_samples_leaf,
            self.max_bins,
        )
        if split is None:
            return node
        feature, edge_value, _gain = split
        # codes <= b  <=>  x < edges[b]; record a strict-equivalent
        # threshold so apply()'s (x <= threshold) matches the binning.
        threshold = float(np.nextafter(edge_value, -np.inf))
        bin_index = int(np.searchsorted(edges[feature], edge_value, side="left"))
        mask = codes[rows, feature] <= bin_index
        left = self._grow_hist(codes, y, edges, rows[mask], depth + 1, rng, k_features)
        right = self._grow_hist(codes, y, edges, rows[~mask], depth + 1, rng, k_features)
        self._tree.feature[node] = feature
        self._tree.threshold[node] = threshold
        self._tree.left[node] = left
        self._tree.right[node] = right
        return node

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator, k_features: int
    ) -> int:
        counts = np.bincount(y, minlength=self._n_classes).astype(float)
        node = self._tree.add_node(counts / counts.sum())
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node
        if k_features < X.shape[1]:
            features = rng.choice(X.shape[1], size=k_features, replace=False)
        else:
            features = np.arange(X.shape[1])
        split = _best_split_classification(
            X, y, self._n_classes, features, self.min_samples_leaf
        )
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], y[mask], depth + 1, rng, k_features)
        right = self._grow(X[~mask], y[~mask], depth + 1, rng, k_features)
        self._tree.feature[node] = feature
        self._tree.threshold[node] = threshold
        self._tree.left[node] = left
        self._tree.right[node] = right
        return node

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("_tree")
        X = check_array(X)
        leaves = self._tree.apply(X)
        return self._tree.value_arr[leaves]

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def node_count(self) -> int:
        """Total nodes (internal + leaves) in the fitted tree."""
        self._check_fitted("_tree")
        return len(self._tree.feature)


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regressor with variance reduction (the boosting base learner).

    Supports the same "hist" splitter as the classifier; gradient
    boosting bins once per fit and reuses the codes across stages.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        splitter: str = "exact",
        max_bins: int = 32,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        if self.splitter not in ("exact", "hist"):
            raise ValueError(f"splitter must be 'exact' or 'hist', got {self.splitter!r}")
        X, y = check_X_y(X, np.asarray(y, dtype=float))
        if self.splitter == "hist":
            codes, edges = _bin_features(X, self.max_bins)
            return self.fit_binned(codes, edges, y)
        self._tree = _TreeArrays()
        rng = np.random.default_rng(self.random_state)
        k = _resolve_max_features(self.max_features, X.shape[1])
        self._grow(X, y, depth=0, rng=rng, k_features=k)
        self._tree.finalize()
        return self

    def fit_binned(
        self, codes: np.ndarray, edges: np.ndarray, y: np.ndarray
    ) -> "DecisionTreeRegressor":
        """Fit on pre-binned features (see DecisionTreeClassifier)."""
        y = np.asarray(y, dtype=float)
        self._tree = _TreeArrays()
        rng = np.random.default_rng(self.random_state)
        k = _resolve_max_features(self.max_features, codes.shape[1])
        self._grow_hist(
            codes, y, edges, np.arange(codes.shape[0]), depth=0, rng=rng, k_features=k
        )
        self._tree.finalize()
        return self

    def _grow_hist(
        self,
        codes: np.ndarray,
        y: np.ndarray,
        edges: np.ndarray,
        rows: np.ndarray,
        depth: int,
        rng: np.random.Generator,
        k_features: int,
    ) -> int:
        node = self._tree.add_node(np.array([float(np.mean(y[rows]))]))
        if (
            len(rows) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or float(np.ptp(y[rows])) == 0.0
        ):
            return node
        if k_features < codes.shape[1]:
            features = rng.choice(codes.shape[1], size=k_features, replace=False)
        else:
            features = np.arange(codes.shape[1])
        split = _best_split_hist_regression(
            codes[rows], y[rows], features, edges, self.min_samples_leaf, self.max_bins
        )
        if split is None:
            return node
        feature, edge_value, _gain = split
        threshold = float(np.nextafter(edge_value, -np.inf))
        bin_index = int(np.searchsorted(edges[feature], edge_value, side="left"))
        mask = codes[rows, feature] <= bin_index
        left = self._grow_hist(codes, y, edges, rows[mask], depth + 1, rng, k_features)
        right = self._grow_hist(codes, y, edges, rows[~mask], depth + 1, rng, k_features)
        self._tree.feature[node] = feature
        self._tree.threshold[node] = threshold
        self._tree.left[node] = left
        self._tree.right[node] = right
        return node

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator, k_features: int
    ) -> int:
        node = self._tree.add_node(np.array([float(np.mean(y))]))
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or float(np.ptp(y)) == 0.0
        ):
            return node
        if k_features < X.shape[1]:
            features = rng.choice(X.shape[1], size=k_features, replace=False)
        else:
            features = np.arange(X.shape[1])
        split = _best_split_regression(X, y, features, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], y[mask], depth + 1, rng, k_features)
        right = self._grow(X[~mask], y[~mask], depth + 1, rng, k_features)
        self._tree.feature[node] = feature
        self._tree.threshold[node] = threshold
        self._tree.left[node] = left
        self._tree.right[node] = right
        return node

    def predict(self, X) -> np.ndarray:
        self._check_fitted("_tree")
        X = check_array(X)
        leaves = self._tree.apply(X)
        return self._tree.value_arr[leaves, 0]

    def apply(self, X) -> np.ndarray:
        """Leaf index per sample (used by gradient boosting's leaf update)."""
        self._check_fitted("_tree")
        return self._tree.apply(check_array(X))

    @property
    def node_count(self) -> int:
        """Total nodes (internal + leaves) in the fitted tree."""
        self._check_fitted("_tree")
        return len(self._tree.feature)
