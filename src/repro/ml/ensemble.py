"""Stacking ensemble — the machinery behind the paper's HybridRSL.

HybridRSL (Fig. 4) trains Random Forest and SVM on the same dataset,
concatenates their predicted leak probabilities into a new feature set,
and feeds that to Logistic Regression.  :class:`StackingClassifier`
implements exactly that composition for arbitrary base estimators, with
optional out-of-fold stacking to avoid leaking training labels into the
meta-learner.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y, clone
from .binning import supports_binned_fit
from .model_selection import KFold


class StackingClassifier(BaseEstimator, ClassifierMixin):
    """Two-level stacking: base estimators -> probability features -> meta.

    Args:
        estimators: list of (name, estimator) base models; each must
            implement ``predict_proba``.
        final_estimator: the meta-learner (must accept 2-D features).
        cv: folds for out-of-fold meta-features; ``cv=1`` reproduces the
            paper's simpler in-sample stacking (train base models on the
            full set and stack their in-sample probabilities).
        passthrough: append the original features to the meta-features.
        random_state: seed for the internal K-fold shuffle.
    """

    def __init__(
        self,
        estimators: list[tuple[str, BaseEstimator]],
        final_estimator: BaseEstimator,
        cv: int = 1,
        passthrough: bool = False,
        random_state: int | None = None,
    ):
        self.estimators = estimators
        self.final_estimator = final_estimator
        self.cv = cv
        self.passthrough = passthrough
        self.random_state = random_state

    def fit(self, X, y, binned=None) -> "StackingClassifier":
        """Fit base estimators then the meta-learner.

        Args:
            X, y: training data.
            binned: optional pre-binned ``(codes, edges)`` for X, forwarded
                to base estimators whose ``fit`` accepts a ``binned``
                kwarg (hist-splitter forests/boosters) so the shared
                :class:`~repro.ml.binning.BinMapper` codes flow through
                the stack.
        """
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) == 1:
            self.fitted_estimators_ = []
            return self

        if self.cv and self.cv > 1:
            meta_features = self._out_of_fold_features(X, encoded, binned)
        else:
            meta_features = None

        self.fitted_estimators_ = []
        columns = []
        for _name, estimator in self.estimators:
            model = clone(estimator)
            if binned is not None and supports_binned_fit(model):
                model.fit(X, encoded, binned=binned)
            else:
                model.fit(X, encoded)
            self.fitted_estimators_.append(model)
            columns.append(self._positive_proba(model, X))
        in_sample = np.column_stack(columns)
        if meta_features is None:
            meta_features = in_sample

        if self.passthrough:
            meta_features = np.hstack([meta_features, X])
        self.final_estimator_ = clone(self.final_estimator)
        self.final_estimator_.fit(meta_features, encoded)
        return self

    def _out_of_fold_features(
        self, X: np.ndarray, encoded: np.ndarray, binned=None
    ) -> np.ndarray:
        n = X.shape[0]
        features = np.zeros((n, len(self.estimators)))
        splitter = KFold(min(self.cv, n), shuffle=True, random_state=self.random_state)
        for train_idx, test_idx in splitter.split(X):
            fold_binned = None
            if binned is not None:
                codes, edges = binned
                fold_binned = (codes[train_idx], edges)
            for j, (_name, estimator) in enumerate(self.estimators):
                model = clone(estimator)
                if fold_binned is not None and supports_binned_fit(model):
                    model.fit(X[train_idx], encoded[train_idx], binned=fold_binned)
                else:
                    model.fit(X[train_idx], encoded[train_idx])
                features[test_idx, j] = self._positive_proba(model, X[test_idx])
        return features

    @staticmethod
    def _positive_proba(model, X: np.ndarray) -> np.ndarray:
        """P(encoded class 1), robust to single-class base fits."""
        proba = model.predict_proba(X)
        if proba.shape[1] == 1:
            # Single-class model: probability of class 1 is 1 or 0.
            only = model.classes_[0]
            return np.full(X.shape[0], float(only == 1))
        column = int(np.where(model.classes_ == 1)[0][0]) if 1 in model.classes_ else 1
        return proba[:, column]

    def _meta_features(self, X: np.ndarray) -> np.ndarray:
        columns = [self._positive_proba(m, X) for m in self.fitted_estimators_]
        meta = np.column_stack(columns)
        if self.passthrough:
            meta = np.hstack([meta, X])
        return meta

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("fitted_estimators_")
        X = check_array(X)
        if len(self.classes_) == 1:
            return np.ones((X.shape[0], 1))
        return self.final_estimator_.predict_proba(self._meta_features(X))

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
