"""Clustering: k-medoids (PAM-style) and k-means.

The paper uses k-medoids to pick IoT sensor locations (Sec. IV-A):
candidate locations are clustered on their hydraulic signatures and the
cluster *medoids* — actual candidate locations, unlike k-means centroids —
become the sensor set.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_array


class KMedoids(BaseEstimator):
    """K-medoids by alternating assignment and medoid update (Voronoi
    iteration), with a k-means++-style seeding on the distance matrix.

    Args:
        n_clusters: number of medoids.
        max_iter: iteration cap.
        random_state: seed for initialisation.
        metric: "euclidean" (on feature rows) or "precomputed" (X is a
            square distance matrix).
    """

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 100,
        random_state: int | None = None,
        metric: str = "euclidean",
    ):
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.random_state = random_state
        self.metric = metric

    def fit(self, X) -> "KMedoids":
        X = check_array(X)
        distances = self._distance_matrix(X)
        n = distances.shape[0]
        if self.n_clusters > n:
            raise ValueError(f"n_clusters={self.n_clusters} > n_samples={n}")
        rng = np.random.default_rng(self.random_state)
        medoids = self._plusplus_init(distances, rng)
        labels = np.argmin(distances[:, medoids], axis=1)
        for _ in range(self.max_iter):
            new_medoids = medoids.copy()
            for cluster in range(self.n_clusters):
                members = np.nonzero(labels == cluster)[0]
                if len(members) == 0:
                    # Re-seed an empty cluster at the point farthest from
                    # its current medoid assignment.
                    costs = distances[np.arange(n), medoids[labels]]
                    new_medoids[cluster] = int(np.argmax(costs))
                    continue
                within = distances[np.ix_(members, members)]
                new_medoids[cluster] = int(members[np.argmin(within.sum(axis=1))])
            new_labels = np.argmin(distances[:, new_medoids], axis=1)
            if np.array_equal(new_medoids, medoids) and np.array_equal(new_labels, labels):
                break
            medoids, labels = new_medoids, new_labels
        self.medoid_indices_ = np.sort(medoids)
        self.labels_ = np.argmin(distances[:, self.medoid_indices_], axis=1)
        self.inertia_ = float(
            np.sum(distances[np.arange(n), self.medoid_indices_[self.labels_]])
        )
        return self

    def _distance_matrix(self, X: np.ndarray) -> np.ndarray:
        if self.metric == "precomputed":
            if X.shape[0] != X.shape[1]:
                raise ValueError("precomputed metric needs a square matrix")
            return X
        if self.metric != "euclidean":
            raise ValueError(f"unsupported metric {self.metric!r}")
        squared = np.sum(X**2, axis=1)
        d2 = squared[:, None] + squared[None, :] - 2.0 * (X @ X.T)
        return np.sqrt(np.maximum(d2, 0.0))

    def _plusplus_init(self, distances: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = distances.shape[0]
        medoids = [int(rng.integers(n))]
        while len(medoids) < self.n_clusters:
            closest = np.min(distances[:, medoids], axis=1)
            weights = closest**2
            total = weights.sum()
            if total <= 0:
                remaining = np.setdiff1d(np.arange(n), medoids)
                medoids.append(int(rng.choice(remaining)))
                continue
            medoids.append(int(rng.choice(n, p=weights / total)))
        return np.array(medoids)

    def predict(self, X) -> np.ndarray:
        """Nearest-medoid label per row (euclidean metric only)."""
        self._check_fitted("medoid_indices_")
        if self.metric == "precomputed":
            X = check_array(X)
            return np.argmin(X[:, self.medoid_indices_], axis=1)
        X = check_array(X)
        centres = self._fit_rows[self.medoid_indices_]
        d = np.linalg.norm(X[:, None, :] - centres[None, :, :], axis=2)
        return np.argmin(d, axis=1)

    def fit_predict(self, X) -> np.ndarray:
        X = check_array(X)
        self._fit_rows = X
        self.fit(X)
        return self.labels_


class KMeans(BaseEstimator):
    """Lloyd's algorithm with k-means++ seeding."""

    def __init__(self, n_clusters: int = 8, max_iter: int = 200, random_state: int | None = None):
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.random_state = random_state

    def fit(self, X) -> "KMeans":
        X = check_array(X)
        n = X.shape[0]
        if self.n_clusters > n:
            raise ValueError(f"n_clusters={self.n_clusters} > n_samples={n}")
        rng = np.random.default_rng(self.random_state)
        centres = X[self._plusplus_indices(X, rng)]
        labels = np.zeros(n, dtype=np.int64)
        for _ in range(self.max_iter):
            d = np.linalg.norm(X[:, None, :] - centres[None, :, :], axis=2)
            new_labels = np.argmin(d, axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for cluster in range(self.n_clusters):
                members = X[labels == cluster]
                if len(members):
                    centres[cluster] = members.mean(axis=0)
        self.cluster_centers_ = centres
        self.labels_ = labels
        d = np.linalg.norm(X - centres[labels], axis=1)
        self.inertia_ = float(np.sum(d**2))
        return self

    def _plusplus_indices(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = X.shape[0]
        chosen = [int(rng.integers(n))]
        while len(chosen) < self.n_clusters:
            d = np.min(
                np.linalg.norm(X[:, None, :] - X[chosen][None, :, :], axis=2), axis=1
            )
            weights = d**2
            total = weights.sum()
            if total <= 0:
                remaining = np.setdiff1d(np.arange(n), chosen)
                chosen.append(int(rng.choice(remaining)))
                continue
            chosen.append(int(rng.choice(n, p=weights / total)))
        return np.array(chosen)

    def predict(self, X) -> np.ndarray:
        self._check_fitted("cluster_centers_")
        X = check_array(X)
        d = np.linalg.norm(X[:, None, :] - self.cluster_centers_[None, :, :], axis=2)
        return np.argmin(d, axis=1)

    def fit_predict(self, X) -> np.ndarray:
        self.fit(X)
        return self.labels_
