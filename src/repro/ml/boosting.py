"""Gradient boosting classifier (binary, logistic loss).

Friedman's gradient tree boosting: each stage fits a regression tree to
the negative gradient of the log-loss and then replaces every leaf value
with a single Newton step, giving the usual fast, well-calibrated
convergence.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from .flatten import FlattenedForest
from .linear import _sigmoid
from .tree import DecisionTreeRegressor


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Binary gradient-boosted trees with logistic loss.

    Args:
        n_estimators: boosting stages.
        learning_rate: shrinkage applied to every stage.
        max_depth: depth of each regression tree.
        min_samples_leaf: leaf size floor for each tree.
        subsample: stochastic-boosting row fraction per stage.
        max_features: per-split feature subsample for each tree.
        splitter: "exact" or "hist"; with "hist" the features are binned
            once and every stage reuses the codes.
        max_bins: bin count for the "hist" splitter.
        random_state: seed for subsampling and tree randomness.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        max_features=None,
        splitter: str = "exact",
        max_bins: int = 32,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.max_features = max_features
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y, binned=None) -> "GradientBoostingClassifier":
        """Fit the boosting stages.

        Args:
            X, y: training data.
            binned: optional pre-binned ``(codes, edges)`` for X from a
                shared :class:`~repro.ml.binning.BinMapper` — skips the
                per-estimator quantile binning when ``splitter="hist"``.
        """
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        if len(self.classes_) > 2:
            raise ValueError("GradientBoostingClassifier is binary-only")
        if len(self.classes_) == 1:
            self._baseline = 0.0
            self._stages: list[tuple[DecisionTreeRegressor, np.ndarray]] = []
            self._flattened = None
            return self
        target = encoded.astype(float)
        positive_rate = float(np.clip(np.mean(target), 1e-6, 1.0 - 1e-6))
        self._baseline = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(X.shape[0], self._baseline)
        rng = np.random.default_rng(self.random_state)
        self._stages = []
        n = X.shape[0]
        if self.splitter != "hist":
            binned = None
        elif binned is None:
            from .tree import _bin_features

            binned = _bin_features(X, self.max_bins)
        for _ in range(self.n_estimators):
            p = _sigmoid(raw)
            residual = target - p
            if self.subsample < 1.0:
                size = max(int(self.subsample * n), 2)
                rows = rng.choice(n, size=size, replace=False)
            else:
                rows = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self.splitter,
                max_bins=self.max_bins,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if binned is not None:
                codes, edges = binned
                tree.fit_binned(codes[rows], edges, residual[rows])
            else:
                tree.fit(X[rows], residual[rows])
            # Newton leaf update: sum(residual) / sum(p (1 - p)) per leaf.
            leaves_fit = tree.apply(X[rows])
            hessian = p[rows] * (1.0 - p[rows])
            leaf_values = np.zeros(tree.node_count)
            for leaf in np.unique(leaves_fit):
                mask = leaves_fit == leaf
                numerator = float(np.sum(residual[rows][mask]))
                denominator = float(np.sum(hessian[mask])) + 1e-12
                leaf_values[leaf] = numerator / denominator
            leaves_all = tree.apply(X)
            raw = raw + self.learning_rate * leaf_values[leaves_all]
            self._stages.append((tree, leaf_values))
        self._flattened = self._flatten()
        return self

    def _flatten(self) -> FlattenedForest | None:
        """Compile the fitted stages into the flat inference kernel.

        Each stage's Newton leaf values (not the tree's raw means) become
        the node value rows, so the kernel's additive accumulation replays
        the sequential ``raw + lr * leaf_values[leaves]`` updates exactly.
        """
        if not self._stages:
            return None
        trees = [tree for tree, _ in self._stages]
        values = [leaf_values[:, None] for _, leaf_values in self._stages]
        return FlattenedForest.from_trees(trees, values)

    @property
    def flattened_(self) -> FlattenedForest | None:
        """Flat inference kernel (built lazily for pre-kernel pickles)."""
        self._check_fitted("_stages")
        if getattr(self, "_flattened", None) is None:
            self._flattened = self._flatten()
        return self._flattened

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("_stages")
        X = check_array(X)
        kernel = self.flattened_
        if kernel is None:
            return np.full(X.shape[0], self._baseline)
        return kernel.raw_score(X, self._baseline, self.learning_rate)

    def _decision_function_recursive(self, X) -> np.ndarray:
        """Reference stage-by-stage path (kept for the flattened==recursive
        differential oracle)."""
        X = check_array(X)
        raw = np.full(X.shape[0], self._baseline)
        for tree, leaf_values in self._stages:
            raw = raw + self.learning_rate * leaf_values[tree.apply(X)]
        return raw

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("_stages")
        if len(self.classes_) == 1:
            return np.ones((len(check_array(X)), 1))
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
