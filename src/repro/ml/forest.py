"""Random forest classifier (bagged CART trees with feature subsampling)."""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from .tree import DecisionTreeClassifier


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bootstrap-aggregated decision trees.

    ``predict_proba`` averages the per-tree class distributions, which is
    what the paper's HybridRSL stacks into the logistic meta-learner.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        min_samples_leaf: per-tree leaf size floor.
        max_features: per-split feature subsample ("sqrt" by default).
        bootstrap: draw each tree's sample with replacement.
        splitter: "exact" or "hist" (see DecisionTreeClassifier).
        max_bins: bin count when ``splitter="hist"``.
        random_state: master seed (per-tree seeds derive from it).
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = 12,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        splitter: str = "exact",
        max_bins: int = 32,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        binned = None
        if self.splitter == "hist":
            from .tree import _bin_features

            binned = _bin_features(X, self.max_bins)
        tree_classes = np.arange(len(self.classes_))
        self.estimators_: list[DecisionTreeClassifier] = []
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self.splitter,
                max_bins=self.max_bins,
                random_state=seed,
            )
            if self.bootstrap:
                indices = rng.integers(0, n, size=n)
            else:
                indices = np.arange(n)
            if binned is not None:
                codes, edges = binned
                tree.fit_binned(codes[indices], edges, encoded[indices], tree_classes)
            else:
                tree.fit(X[indices], encoded[indices])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_array(X)
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # A bootstrap draw can miss a class entirely; align columns.
            for j, cls in enumerate(tree.classes_):
                total[:, int(cls)] += proba[:, j]
        return total / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
