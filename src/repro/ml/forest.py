"""Random forest classifier (bagged CART trees with feature subsampling)."""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from .flatten import FlattenedForest
from .tree import DecisionTreeClassifier


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bootstrap-aggregated decision trees.

    ``predict_proba`` averages the per-tree class distributions, which is
    what the paper's HybridRSL stacks into the logistic meta-learner.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        min_samples_leaf: per-tree leaf size floor.
        max_features: per-split feature subsample ("sqrt" by default).
        bootstrap: draw each tree's sample with replacement.
        splitter: "exact" or "hist" (see DecisionTreeClassifier).
        max_bins: bin count when ``splitter="hist"``.
        random_state: master seed (per-tree seeds derive from it).
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = 12,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        splitter: str = "exact",
        max_bins: int = 32,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y, binned=None) -> "RandomForestClassifier":
        """Fit the forest.

        Args:
            X, y: training data.
            binned: optional pre-binned ``(codes, edges)`` for X from a
                shared :class:`~repro.ml.binning.BinMapper` — skips the
                per-forest quantile binning when ``splitter="hist"``.
        """
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        if self.splitter != "hist":
            binned = None
        elif binned is None:
            from .tree import _bin_features

            binned = _bin_features(X, self.max_bins)
        tree_classes = np.arange(len(self.classes_))
        self.estimators_: list[DecisionTreeClassifier] = []
        samples: list[np.ndarray] = []
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self.splitter,
                max_bins=self.max_bins,
                random_state=seed,
            )
            if self.bootstrap:
                indices = rng.integers(0, n, size=n)
            else:
                indices = np.arange(n)
            if binned is None:
                tree.fit(X[indices], encoded[indices])
            else:
                samples.append(indices)
            self.estimators_.append(tree)
        if binned is not None:
            # Hist forests train every tree level-synchronously: one
            # histogram pass per depth covers the whole frontier, which
            # amortises per-node dispatch overhead across the ensemble's
            # many small trees (see _HistForestGrower).
            from .tree import _HistForestGrower, _resolve_max_features

            codes, edges = binned
            grower = _HistForestGrower(
                codes,
                encoded,
                edges,
                n_classes=len(self.classes_),
                max_depth=self.max_depth,
                min_samples_split=2,
                min_samples_leaf=self.min_samples_leaf,
                k_features=_resolve_max_features(self.max_features, codes.shape[1]),
                rng=rng,
            )
            for tree, arrays in zip(self.estimators_, grower.grow(samples)):
                tree.classes_ = tree_classes
                tree._n_classes = len(tree_classes)
                tree._tree = arrays
        self._flattened = self._flatten()
        return self

    def _flatten(self) -> FlattenedForest:
        """Compile the fitted trees into the flat inference kernel.

        Per-tree class distributions are pre-aligned into forest class
        columns (a bootstrap draw can miss a class entirely), so the
        kernel's sequential accumulation reproduces the recursive loop's
        column-aligned additions bit for bit.
        """
        n_classes = len(self.classes_)
        values = []
        for tree in self.estimators_:
            aligned = np.zeros((tree.node_count, n_classes))
            aligned[:, tree.classes_.astype(np.int64)] = tree._tree.value_arr
            values.append(aligned)
        return FlattenedForest.from_trees(self.estimators_, values)

    @property
    def flattened_(self) -> FlattenedForest:
        """Flat inference kernel (built lazily for pre-kernel pickles)."""
        self._check_fitted("estimators_")
        if getattr(self, "_flattened", None) is None:
            self._flattened = self._flatten()
        return self._flattened

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_array(X)
        return self.flattened_.predict_proba(X)

    def _predict_proba_recursive(self, X) -> np.ndarray:
        """Reference tree-by-tree path (kept for the flattened==recursive
        differential oracle)."""
        X = check_array(X)
        n_classes = len(self.classes_)
        total = np.zeros((X.shape[0], n_classes))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            for j, cls in enumerate(tree.classes_):
                total[:, int(cls)] += proba[:, j]
        return total / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
