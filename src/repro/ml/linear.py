"""Linear models: least-squares regression and logistic regression.

The paper plugs ``LinearR`` and ``LogisticR`` into its profile model
(Sec. IV-A) and also uses logistic regression as the meta-learner of
HybridRSL.  Both are implemented directly on numpy/scipy: least squares
via ``lstsq`` and logistic regression by damped Newton/IRLS (default)
or L-BFGS on the L2-regularised negative log-likelihood.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_X_y,
)


class LinearRegression(BaseEstimator, RegressorMixin):
    """Least squares with optional ridge (L2) regularisation.

    When used as a classifier (``predict_label`` / ``predict_proba``) the
    regression output is clipped to [0, 1] and thresholded — the standard
    trick that makes "LinearR" comparable in the paper's Fig. 6.

    Args:
        fit_intercept: include a bias term (never regularised).
        alpha: ridge penalty; 0 = ordinary least squares.  Wide telemetry
            matrices (hundreds of sensors, few hundred rows per node)
            interpolate under OLS, so the classifier wrapper defaults to
            a small positive alpha via the plug-and-play registry.
    """

    def __init__(self, fit_intercept: bool = True, alpha: float = 0.0):
        self.fit_intercept = fit_intercept
        self.alpha = alpha

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_X_y(X, np.asarray(y, dtype=float))
        if self.fit_intercept:
            X = np.hstack([np.ones((X.shape[0], 1)), X])
        if self.alpha > 0.0:
            d = X.shape[1]
            penalty = self.alpha * np.eye(d)
            if self.fit_intercept:
                penalty[0, 0] = 0.0  # do not shrink the bias
            coefficients = np.linalg.solve(X.T @ X + penalty, X.T @ y)
        else:
            coefficients, *_ = np.linalg.lstsq(X, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(coefficients[0])
            self.coef_ = coefficients[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = coefficients
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Clipped regression output interpreted as P(class 1)."""
        p1 = np.clip(self.predict(X), 0.0, 1.0)
        return np.column_stack([1.0 - p1, p1])

    def predict_label(self, X) -> np.ndarray:
        """Binary labels by thresholding the regression output at 0.5."""
        return (self.predict(X) >= 0.5).astype(np.int64)


class LinearRegressionClassifier(BaseEstimator, ClassifierMixin):
    """LinearRegression dressed in the binary-classifier API.

    This is what the paper's plug-and-play engine instantiates for
    "LinearR": fit least squares on 0/1 targets and threshold the score.
    The cut point is the midpoint of the per-class mean scores (the
    Fisher/LDA convention) rather than a fixed 0.5 — with imbalanced
    targets OLS scores cluster near the class prior and a fixed 0.5 would
    never fire.
    """

    def __init__(self, fit_intercept: bool = True, alpha: float = 0.0):
        self.fit_intercept = fit_intercept
        self.alpha = alpha

    def fit(self, X, y) -> "LinearRegressionClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        self._model = LinearRegression(
            fit_intercept=self.fit_intercept, alpha=self.alpha
        )
        self._model.fit(X, encoded.astype(float))
        if len(self.classes_) == 2:
            scores = self._model.predict(X)
            mean_pos = float(scores[encoded == 1].mean())
            mean_neg = float(scores[encoded == 0].mean())
            self.threshold_ = 0.5 * (mean_pos + mean_neg)
        else:
            self.threshold_ = 0.5
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Scores recentred so the decision threshold maps to 0.5."""
        self._check_fitted("_model")
        if len(self.classes_) == 1:
            return np.ones((len(check_array(X)), 1))
        p1 = np.clip(self._model.predict(X) - self.threshold_ + 0.5, 0.0, 1.0)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary logistic regression with L2 regularisation.

    Args:
        C: inverse regularisation strength (sklearn convention).
        fit_intercept: include a bias term.
        max_iter: iteration cap for the chosen solver.
        class_weight: ``None`` or ``"balanced"``; balanced reweights
            classes inversely to their frequency, which matters for the
            per-node leak labels (positives are ~3% of samples).
        solver: ``"newton"`` (default) solves the IRLS normal system
            directly — a handful of exact Newton steps instead of
            hundreds of L-BFGS updates, which matters when the profile
            trains 91 per-junction models; ``"lbfgs"`` keeps the
            quasi-Newton path.  Both minimise the same objective and
            agree to optimiser accuracy.
    """

    def __init__(
        self,
        C: float = 1.0,
        fit_intercept: bool = True,
        max_iter: int = 200,
        class_weight: str | None = None,
        solver: str = "newton",
    ):
        self.C = C
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.class_weight = class_weight
        self.solver = solver

    def fit(self, X, y) -> "LogisticRegression":
        if self.solver not in ("newton", "lbfgs"):
            raise ValueError(
                f"solver must be 'newton' or 'lbfgs', got {self.solver!r}"
            )
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        n, d = X.shape
        if len(self.classes_) == 1:
            self.coef_ = np.zeros(d)
            self.intercept_ = 0.0
            return self
        if len(self.classes_) > 2:
            raise ValueError(
                "LogisticRegression is binary; the multi-output wrapper "
                "decomposes multi-label problems into binary ones"
            )
        target = encoded.astype(float)
        weights = np.ones(n)
        if self.class_weight == "balanced":
            positive_fraction = target.mean()
            if 0.0 < positive_fraction < 1.0:
                weights = np.where(
                    target == 1.0, 0.5 / positive_fraction, 0.5 / (1.0 - positive_fraction)
                )
        lam = 1.0 / (self.C * n)

        if self.solver == "newton":
            theta = self._irls(X, target, weights, lam)
            if self.fit_intercept:
                self.coef_ = theta[:-1]
                self.intercept_ = float(theta[-1])
            else:
                self.coef_ = theta
                self.intercept_ = 0.0
            return self

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            if self.fit_intercept:
                w, b = theta[:-1], theta[-1]
            else:
                w, b = theta, 0.0
            z = X @ w + b
            p = _sigmoid(z)
            eps = 1e-12
            nll = -np.mean(
                weights * (target * np.log(p + eps) + (1 - target) * np.log(1 - p + eps))
            )
            penalty = 0.5 * lam * float(w @ w) * n
            grad_z = weights * (p - target) / n
            grad_w = X.T @ grad_z + lam * w * n / n
            value = nll + penalty / n
            if self.fit_intercept:
                grad = np.concatenate([grad_w, [float(np.sum(grad_z))]])
            else:
                grad = grad_w
            return value, grad

        theta0 = np.zeros(d + (1 if self.fit_intercept else 0))
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        theta = result.x
        if self.fit_intercept:
            self.coef_ = theta[:-1]
            self.intercept_ = float(theta[-1])
        else:
            self.coef_ = theta
            self.intercept_ = 0.0
        return self

    def _irls(
        self,
        X: np.ndarray,
        target: np.ndarray,
        weights: np.ndarray,
        lam: float,
    ) -> np.ndarray:
        """Damped Newton / IRLS on the (mean) penalised log-loss.

        Each iteration solves the exact (d+1)-dimensional normal system
        ``(X~' D X~ / n + lam I) step = -grad`` (intercept unpenalised)
        with an Armijo backtracking line search — the classic IRLS
        scheme, which converges in single-digit iterations on the
        standardized, well-conditioned features this pipeline produces.
        """
        n, d = X.shape
        Xa = np.hstack([X, np.ones((n, 1))]) if self.fit_intercept else X
        m = Xa.shape[1]
        reg = np.full(m, lam)
        if self.fit_intercept:
            reg[-1] = 0.0
        eps = 1e-12
        diag = np.arange(m)

        def value_of(z: np.ndarray, theta: np.ndarray) -> float:
            p = _sigmoid(z)
            w_part = theta[:-1] if self.fit_intercept else theta
            nll = -np.mean(
                weights
                * (target * np.log(p + eps) + (1 - target) * np.log(1 - p + eps))
            )
            return nll + 0.5 * lam * float(w_part @ w_part)

        theta = np.zeros(m)
        z = Xa @ theta
        value = value_of(z, theta)
        for _ in range(min(self.max_iter, 50)):
            p = _sigmoid(z)
            grad = Xa.T @ (weights * (p - target)) / n + reg * theta
            if float(np.max(np.abs(grad))) <= 1e-8:
                break
            curvature = weights * p * (1.0 - p)
            hessian = (Xa.T * curvature) @ Xa / n
            hessian[diag, diag] += reg + 1e-12
            step = np.linalg.solve(hessian, -grad)
            slope = float(grad @ step)
            t = 1.0
            trial, z_trial, new_value = theta, z, value
            for _ in range(30):
                trial = theta + t * step
                z_trial = Xa @ trial
                new_value = value_of(z_trial, trial)
                if new_value <= value + 1e-4 * t * slope:
                    break
                t *= 0.5
            converged = abs(value - new_value) <= 1e-12 * max(1.0, abs(value))
            theta, z, value = trial, z_trial, new_value
            if converged:
                break
        return theta

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        if len(self.classes_) == 1:
            return np.ones((len(check_array(X)), 1))
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
