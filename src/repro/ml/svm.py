"""Linear support vector machine with probability calibration.

The paper's "SVM" classifier needs ``predict_proba`` (Phase II aggregates
leak probabilities across sources), so the margin classifier is paired
with Platt scaling: a one-dimensional logistic fit on the decision values.

The primal squared-hinge objective is piecewise quadratic, so the default
solver is a modified finite Newton method (Keerthi & DeCoste, JMLR 2005):
on the current active set the objective *is* a quadratic, one linear solve
in (d+1) variables jumps to its minimiser, and an Armijo backtracking line
search guarantees global convergence.  On the paper's per-junction
workloads it converges in ~10 iterations where L-BFGS was still far from
converged at its 200-iteration cap; the L-BFGS path is kept as
``solver="lbfgs"`` for comparison.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from .linear import _sigmoid


class LinearSVC(BaseEstimator, ClassifierMixin):
    """L2-regularised squared-hinge linear SVM (binary).

    Args:
        C: misclassification cost (sklearn convention).
        fit_intercept: include a bias term.
        max_iter: iteration cap for the chosen solver.
        probability: when True, fit Platt scaling after training so
            ``predict_proba`` is available.
        solver: "newton" (default) — modified finite Newton on the primal,
            exact for the piecewise-quadratic objective; "lbfgs" — the
            quasi-Newton fallback.
        random_state: seed for the internal calibration split.
    """

    def __init__(
        self,
        C: float = 1.0,
        fit_intercept: bool = True,
        max_iter: int = 200,
        probability: bool = True,
        solver: str = "newton",
        random_state: int | None = None,
    ):
        self.C = C
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.probability = probability
        self.solver = solver
        self.random_state = random_state

    def fit(self, X, y) -> "LinearSVC":
        if self.solver not in ("newton", "lbfgs"):
            raise ValueError(f"solver must be 'newton' or 'lbfgs', got {self.solver!r}")
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        n, d = X.shape
        if len(self.classes_) == 1:
            self.coef_ = np.zeros(d)
            self.intercept_ = 0.0
            self._platt = (1.0, 0.0)
            return self
        if len(self.classes_) > 2:
            raise ValueError("LinearSVC is binary-only")
        signs = np.where(encoded == 1, 1.0, -1.0)

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            if self.fit_intercept:
                w, b = theta[:-1], theta[-1]
            else:
                w, b = theta, 0.0
            margins = signs * (X @ w + b)
            violation = np.maximum(1.0 - margins, 0.0)
            value = 0.5 * float(w @ w) + self.C * float(np.sum(violation**2))
            grad_margin = -2.0 * self.C * violation * signs
            grad_w = w + X.T @ grad_margin
            if self.fit_intercept:
                grad = np.concatenate([grad_w, [float(np.sum(grad_margin))]])
            else:
                grad = grad_w
            return value, grad

        if self.solver == "newton":
            theta = self._newton_solve(X, signs, objective)
        else:
            theta0 = np.zeros(d + (1 if self.fit_intercept else 0))
            result = minimize(
                objective,
                theta0,
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
            theta = result.x
        if self.fit_intercept:
            self.coef_ = theta[:-1]
            self.intercept_ = float(theta[-1])
        else:
            self.coef_ = theta
            self.intercept_ = 0.0
        if self.probability:
            self._fit_platt(X, encoded)
        return self

    # ------------------------------------------------------------------
    def _newton_solve(self, X: np.ndarray, signs: np.ndarray, objective) -> np.ndarray:
        """Modified finite Newton on the primal squared-hinge objective.

        The objective restricted to a fixed active set A = {i : margin < 1}
        is the quadratic 0.5 w'w + C ||s_A - XA w - b||^2, whose Hessian is
        diag(1,...,1,0) + 2C XA~' XA~ (XA~ = XA with a ones column; the
        intercept is unregularised).  Each iteration solves that system
        exactly and backtracks on the true objective, so every step both
        decreases f and, once the active set stabilises, lands on the
        exact minimiser — finite convergence.
        """
        n, d = X.shape
        dim = d + (1 if self.fit_intercept else 0)
        theta = np.zeros(dim)
        value, grad = objective(theta)
        tol = 1e-9 * max(1.0, abs(value))
        for _ in range(self.max_iter):
            if float(np.linalg.norm(grad)) <= 1e-8:
                break
            if self.fit_intercept:
                w, b = theta[:-1], theta[-1]
            else:
                w, b = theta, 0.0
            active = signs * (X @ w + b) < 1.0
            XA = X[active]
            if self.fit_intercept:
                XA = np.column_stack([XA, np.ones(XA.shape[0])])
            H = 2.0 * self.C * (XA.T @ XA)
            diag = np.arange(d)
            H[diag, diag] += 1.0
            if self.fit_intercept:
                # Keep the system non-singular when the active set is
                # empty (the intercept row is otherwise all zeros).
                H[d, d] += 1e-12
            step = np.linalg.solve(H, -grad)
            slope = float(grad @ step)
            t = 1.0
            while t > 1e-12:
                candidate = theta + t * step
                new_value, new_grad = objective(candidate)
                if new_value <= value + 1e-4 * t * slope:
                    break
                t *= 0.5
            theta = theta + t * step
            if abs(new_value - value) <= tol:
                value, grad = new_value, new_grad
                break
            value, grad = new_value, new_grad
        return theta

    # ------------------------------------------------------------------
    def _fit_platt(self, X: np.ndarray, encoded: np.ndarray) -> None:
        """Platt scaling: logistic fit p = sigmoid(a * decision + b).

        Two parameters and a smooth strictly-convex loss: damped Newton
        with the exact 2x2 Hessian converges in a handful of steps (the
        general-purpose L-BFGS call it replaces spent more time in Python
        callbacks than arithmetic).
        """
        decision = X @ self.coef_ + self.intercept_
        target = encoded.astype(float)
        # Platt's target smoothing keeps the calibration from saturating.
        n_pos = float(np.sum(target == 1.0))
        n_neg = float(len(target) - n_pos)
        hi = (n_pos + 1.0) / (n_pos + 2.0)
        lo = 1.0 / (n_neg + 2.0)
        smoothed = np.where(target == 1.0, hi, lo)
        n = float(len(decision))
        eps = 1e-12

        def value_grad(a: float, b: float):
            p = _sigmoid(a * decision + b)
            value = -float(
                np.mean(smoothed * np.log(p + eps) + (1 - smoothed) * np.log(1 - p + eps))
            )
            grad_z = (p - smoothed) / n
            return value, np.array([float(grad_z @ decision), float(np.sum(grad_z))]), p

        a, b = 1.0, 0.0
        value, grad, p = value_grad(a, b)
        for _ in range(50):
            if float(np.linalg.norm(grad)) <= 1e-10:
                break
            weight = p * (1.0 - p) / n
            h_aa = float(weight @ (decision * decision)) + 1e-12
            h_ab = float(weight @ decision)
            h_bb = float(np.sum(weight)) + 1e-12
            det = h_aa * h_bb - h_ab * h_ab
            if det <= 0.0:
                break
            step_a = (-grad[0] * h_bb + grad[1] * h_ab) / det
            step_b = (grad[0] * h_ab - grad[1] * h_aa) / det
            slope = float(grad[0] * step_a + grad[1] * step_b)
            t = 1.0
            new_value, new_grad, new_p = value, grad, p
            while t > 1e-12:
                new_value, new_grad, new_p = value_grad(a + t * step_a, b + t * step_b)
                if new_value <= value + 1e-4 * t * slope:
                    break
                t *= 0.5
            a, b = a + t * step_a, b + t * step_b
            converged = abs(new_value - value) <= 1e-14 * max(1.0, abs(value))
            value, grad, p = new_value, new_grad, new_p
            if converged:
                break
        self._platt = (float(a), float(b))

    @property
    def platt_(self) -> tuple[float, float]:
        """Fitted Platt-scaling coefficients ``(a, b)``.

        ``predict_proba`` returns ``sigmoid(a * decision + b)`` for the
        positive class; the single-class fallback is ``(1.0, 0.0)``.
        """
        self._check_fitted("_platt")
        return self._platt

    # ------------------------------------------------------------------
    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        if len(self.classes_) == 1:
            return np.full(len(check_array(X)), self.classes_[0])
        decision = self.decision_function(X)
        return self.classes_[(decision >= 0.0).astype(np.int64)]

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        if len(self.classes_) == 1:
            return np.ones((len(check_array(X)), 1))
        if not self.probability:
            raise RuntimeError("LinearSVC was fitted with probability=False")
        a, b = self._platt
        p1 = _sigmoid(a * self.decision_function(X) + b)
        return np.column_stack([1.0 - p1, p1])
