"""Linear support vector machine with probability calibration.

The paper's "SVM" classifier needs ``predict_proba`` (Phase II aggregates
leak probabilities across sources), so the margin classifier is paired
with Platt scaling: a one-dimensional logistic fit on the decision values.

The primal squared-hinge objective is smooth, so L-BFGS converges quickly
and the implementation stays pure numpy/scipy.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from .linear import _sigmoid


class LinearSVC(BaseEstimator, ClassifierMixin):
    """L2-regularised squared-hinge linear SVM (binary).

    Args:
        C: misclassification cost (sklearn convention).
        fit_intercept: include a bias term.
        max_iter: L-BFGS iteration cap.
        probability: when True, fit Platt scaling after training so
            ``predict_proba`` is available.
        random_state: seed for the internal calibration split.
    """

    def __init__(
        self,
        C: float = 1.0,
        fit_intercept: bool = True,
        max_iter: int = 200,
        probability: bool = True,
        random_state: int | None = None,
    ):
        self.C = C
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.probability = probability
        self.random_state = random_state

    def fit(self, X, y) -> "LinearSVC":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        n, d = X.shape
        if len(self.classes_) == 1:
            self.coef_ = np.zeros(d)
            self.intercept_ = 0.0
            self._platt = (1.0, 0.0)
            return self
        if len(self.classes_) > 2:
            raise ValueError("LinearSVC is binary-only")
        signs = np.where(encoded == 1, 1.0, -1.0)

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            if self.fit_intercept:
                w, b = theta[:-1], theta[-1]
            else:
                w, b = theta, 0.0
            margins = signs * (X @ w + b)
            violation = np.maximum(1.0 - margins, 0.0)
            value = 0.5 * float(w @ w) + self.C * float(np.sum(violation**2))
            grad_margin = -2.0 * self.C * violation * signs
            grad_w = w + X.T @ grad_margin
            if self.fit_intercept:
                grad = np.concatenate([grad_w, [float(np.sum(grad_margin))]])
            else:
                grad = grad_w
            return value, grad

        theta0 = np.zeros(d + (1 if self.fit_intercept else 0))
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        theta = result.x
        if self.fit_intercept:
            self.coef_ = theta[:-1]
            self.intercept_ = float(theta[-1])
        else:
            self.coef_ = theta
            self.intercept_ = 0.0
        if self.probability:
            self._fit_platt(X, encoded)
        return self

    # ------------------------------------------------------------------
    def _fit_platt(self, X: np.ndarray, encoded: np.ndarray) -> None:
        """Platt scaling: logistic fit p = sigmoid(a * decision + b)."""
        decision = X @ self.coef_ + self.intercept_
        target = encoded.astype(float)
        # Platt's target smoothing keeps the calibration from saturating.
        n_pos = float(np.sum(target == 1.0))
        n_neg = float(len(target) - n_pos)
        hi = (n_pos + 1.0) / (n_pos + 2.0)
        lo = 1.0 / (n_neg + 2.0)
        smoothed = np.where(target == 1.0, hi, lo)

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            a, b = params
            p = _sigmoid(a * decision + b)
            eps = 1e-12
            value = -float(
                np.mean(smoothed * np.log(p + eps) + (1 - smoothed) * np.log(1 - p + eps))
            )
            grad_z = (p - smoothed) / len(decision)
            return value, np.array(
                [float(grad_z @ decision), float(np.sum(grad_z))]
            )

        result = minimize(objective, np.array([1.0, 0.0]), jac=True, method="L-BFGS-B")
        self._platt = (float(result.x[0]), float(result.x[1]))

    @property
    def platt_(self) -> tuple[float, float]:
        """Fitted Platt-scaling coefficients ``(a, b)``.

        ``predict_proba`` returns ``sigmoid(a * decision + b)`` for the
        positive class; the single-class fallback is ``(1.0, 0.0)``.
        """
        self._check_fitted("_platt")
        return self._platt

    # ------------------------------------------------------------------
    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        if len(self.classes_) == 1:
            return np.full(len(check_array(X)), self.classes_[0])
        decision = self.decision_function(X)
        return self.classes_[(decision >= 0.0).astype(np.int64)]

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        if len(self.classes_) == 1:
            return np.ones((len(check_array(X)), 1))
        if not self.probability:
            raise RuntimeError("LinearSVC was fitted with probability=False")
        a, b = self._platt
        p1 = _sigmoid(a * self.decision_function(X) + b)
        return np.column_stack([1.0 - p1, p1])
