"""From-scratch scikit-learn substitute.

The paper's plug-and-play analytic engine compares LinearR, LogisticR,
Gradient Boosting, Random Forest and SVM and composes RF + SVM via
LogisticR into HybridRSL.  scikit-learn is not available offline, so this
package implements the needed estimators on numpy/scipy behind the same
``fit`` / ``predict`` / ``predict_proba`` API.
"""

from .base import (
    BaseEstimator,
    ClassifierMixin,
    NotFittedError,
    RegressorMixin,
    check_array,
    check_X_y,
    clone,
)
from .binning import BinMapper
from .boosting import GradientBoostingClassifier
from .cluster import KMeans, KMedoids
from .decomposition import PCA, PrincipalFeatureAnalysis
from .ensemble import StackingClassifier
from .flatten import FlattenedForest
from .forest import RandomForestClassifier
from .linear import LinearRegression, LinearRegressionClassifier, LogisticRegression
from .metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    hamming_score,
    log_loss,
    mean_hamming_score,
    precision_score,
    recall_score,
)
from .model_selection import KFold, cross_val_score, train_test_split
from .multioutput import MultiOutputClassifier
from .neighbors import KNeighborsClassifier
from .preprocessing import MinMaxScaler, StandardScaler
from .svm import LinearSVC
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "BinMapper",
    "ClassifierMixin",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "FlattenedForest",
    "GradientBoostingClassifier",
    "KFold",
    "KMeans",
    "KMedoids",
    "KNeighborsClassifier",
    "LinearRegression",
    "LinearRegressionClassifier",
    "LinearSVC",
    "LogisticRegression",
    "MinMaxScaler",
    "MultiOutputClassifier",
    "NotFittedError",
    "PCA",
    "PrincipalFeatureAnalysis",
    "RandomForestClassifier",
    "RegressorMixin",
    "StackingClassifier",
    "StandardScaler",
    "accuracy_score",
    "check_X_y",
    "check_array",
    "clone",
    "confusion_matrix",
    "cross_val_score",
    "f1_score",
    "hamming_score",
    "log_loss",
    "mean_hamming_score",
    "precision_score",
    "recall_score",
    "train_test_split",
]
