"""Classification metrics, including the paper's "Hamming score".

The paper's score (Sec. V-B) is the number of correctly predicted leak
events divided by the union of predicted and true leak events — i.e. the
Jaccard index of the two leak-node sets.  It is exposed here as
:func:`hamming_score` under the paper's name, alongside the standard
metrics used in tests and ablations.
"""

from __future__ import annotations

import numpy as np


def _as_arrays(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching labels."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def hamming_score(y_true, y_pred) -> float:
    """The paper's Hamming score: Jaccard index of the positive sets.

    ``|pred AND true| / |pred OR true|`` over binary indicator vectors.
    By convention the score is 1.0 when both sets are empty (nothing to
    detect, nothing falsely raised).

    Args:
        y_true: binary indicator vector (or matrix, scored element-wise
            as one big set) of true leak nodes.
        y_pred: binary indicator of predicted leak nodes, same shape.
    """
    y_true, y_pred = _as_arrays(y_true, y_pred)
    t = np.asarray(y_true, dtype=bool)
    p = np.asarray(y_pred, dtype=bool)
    union = np.sum(t | p)
    if union == 0:
        return 1.0
    return float(np.sum(t & p) / union)


def mean_hamming_score(Y_true, Y_pred) -> float:
    """Average :func:`hamming_score` over the rows of two (n, |V|) matrices.

    This is the quantity the paper's figures plot: the mean per-scenario
    score over the test set.
    """
    Y_true = np.asarray(Y_true)
    Y_pred = np.asarray(Y_pred)
    if Y_true.shape != Y_pred.shape:
        raise ValueError(f"shape mismatch: {Y_true.shape} vs {Y_pred.shape}")
    if Y_true.ndim != 2:
        raise ValueError("expected 2-D (n_samples, n_labels) matrices")
    return float(
        np.mean([hamming_score(t, p) for t, p in zip(Y_true, Y_pred)])
    )


def precision_score(y_true, y_pred, positive=1) -> float:
    """TP / (TP + FP); 0 when nothing was predicted positive."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    predicted = y_pred == positive
    if not np.any(predicted):
        return 0.0
    return float(np.mean(y_true[predicted] == positive))


def recall_score(y_true, y_pred, positive=1) -> float:
    """TP / (TP + FN); 0 when no true positives exist."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    actual = y_true == positive
    if not np.any(actual):
        return 0.0
    return float(np.mean(y_pred[actual] == positive))


def f1_score(y_true, y_pred, positive=1) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred, positive)
    r = recall_score(y_true, y_pred, positive)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def log_loss(y_true, probabilities, eps: float = 1e-12) -> float:
    """Binary cross-entropy; ``probabilities`` is P(class 1)."""
    y_true = np.asarray(y_true, dtype=float)
    p = np.clip(np.asarray(probabilities, dtype=float), eps, 1.0 - eps)
    if y_true.shape != p.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {p.shape}")
    return float(-np.mean(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p)))


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """Counts[i, j] = samples with true class i predicted as class j.

    Classes are the sorted union of labels present in either vector.
    """
    y_true, y_pred = _as_arrays(y_true, y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {c: i for i, c in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix
