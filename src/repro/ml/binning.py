"""Shared quantile binning for histogram-based tree training.

Histogram ("hist") tree splitters never look at raw feature values during
growth — only at quantile bin indices.  Binning is therefore a pure
preprocessing step, and recomputing it inside every estimator is wasted
work: the paper's Phase I trains one classifier per junction on the *same*
standardized feature matrix, so a 91-junction profile used to quantile-bin
an identical matrix 91 times (and each random forest re-binned its
bootstrap again).

:class:`BinMapper` computes the bin edges and the uint8 binned matrix
**once**; every consumer — :class:`~repro.ml.MultiOutputClassifier` down
through :class:`~repro.ml.RandomForestClassifier` /
:class:`~repro.ml.GradientBoostingClassifier` to the tree growers — then
shares row-sliced views of the same codes.  This is the bin-once design of
LightGBM-style trainers (Ke et al., NeurIPS 2017).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_array

#: Hard cap so binned matrices always fit uint8.
MAX_BINS_LIMIT = 256


class BinMapper(BaseEstimator):
    """Quantile bin mapper: raw float features -> uint8 bin codes.

    Args:
        max_bins: number of bins per feature (<= 256 so codes stay uint8).

    Attributes:
        edges_: (n_features, max_bins - 1) raw upper bin boundaries,
            padded with +inf for features with fewer distinct quantiles
            (phantom bins separate nothing and are never chosen by the
            splitter).
        n_features_: column count the mapper was fitted on.
    """

    def __init__(self, max_bins: int = 32):
        if not 2 <= max_bins <= MAX_BINS_LIMIT:
            raise ValueError(
                f"max_bins must be in [2, {MAX_BINS_LIMIT}], got {max_bins}"
            )
        self.max_bins = max_bins

    def fit(self, X, y=None) -> "BinMapper":
        """Compute per-feature quantile cut points."""
        X = check_array(X)
        n, d = X.shape
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        edges = np.full((d, self.max_bins - 1), np.inf)
        for f in range(d):
            cuts = np.unique(np.quantile(X[:, f], quantiles))
            edges[f, : len(cuts)] = cuts
        self.edges_ = edges
        self.n_features_ = d
        return self

    def transform(self, X) -> np.ndarray:
        """Bin codes for X, shape (n_samples, n_features), dtype uint8."""
        self._check_fitted("edges_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, mapper was fitted with "
                f"{self.n_features_}"
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for f in range(self.n_features_):
            edges = self.edges_[f]
            finite = int(np.searchsorted(edges, np.inf, side="left"))
            codes[:, f] = np.searchsorted(
                edges[:finite], X[:, f], side="right"
            ).astype(np.uint8)
        return codes

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)


def supports_binned_fit(estimator) -> bool:
    """True when ``estimator.fit`` accepts a ``binned=(codes, edges)`` kwarg."""
    import inspect

    fit = getattr(estimator, "fit", None)
    if fit is None:
        return False
    try:
        return "binned" in inspect.signature(fit).parameters
    except (TypeError, ValueError):  # builtins / C-implemented fits
        return False


def hist_max_bins(estimator) -> int | None:
    """``max_bins`` of the first hist-splitter estimator reachable from
    ``estimator``, or None when nothing in the composition uses "hist".

    Walks ensemble compositions (``estimators`` lists and nested
    estimator-valued parameters) so a stacked HybridRSL profile reports
    its random forest's bin count.
    """
    seen: set[int] = set()

    def walk(node) -> int | None:
        if node is None or id(node) in seen:
            return None
        seen.add(id(node))
        if getattr(node, "splitter", None) == "hist":
            return int(getattr(node, "max_bins", 32))
        params = node.get_params() if isinstance(node, BaseEstimator) else {}
        for value in params.values():
            candidates = []
            if isinstance(value, BaseEstimator):
                candidates = [value]
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, tuple) and len(item) == 2:
                        item = item[1]
                    if isinstance(item, BaseEstimator):
                        candidates.append(item)
            for candidate in candidates:
                found = walk(candidate)
                if found is not None:
                    return found
        return None

    return walk(estimator)
