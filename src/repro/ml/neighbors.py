"""k-nearest-neighbours classifier.

Another plug-and-play technique for the analytic engine: non-parametric,
no training beyond memorising the samples, and a useful sanity baseline
for the leak-signature space (a leak's Δ-pattern should resemble other
leaks at the same node).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, ClassifierMixin, check_array, check_X_y


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Majority vote over the k nearest training samples (euclidean).

    Args:
        n_neighbors: the k.
        weights: "uniform" or "distance" (inverse-distance weighting).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsClassifier":
        if self.weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {self.weights!r}")
        if self.n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        X, y = check_X_y(X, y)
        self._X = X
        self._y = self._encode_labels(y)
        return self

    def _neighbour_votes(self, X: np.ndarray) -> np.ndarray:
        """(n_queries, n_classes) vote mass from the k nearest samples."""
        self._check_fitted("_X")
        X = check_array(X)
        k = min(self.n_neighbors, self._X.shape[0])
        # Squared euclidean distances, blocked to bound memory.
        votes = np.zeros((X.shape[0], len(self.classes_)))
        block = max(1, 10_000_000 // max(self._X.shape[0], 1))
        train_sq = np.sum(self._X**2, axis=1)
        for start in range(0, X.shape[0], block):
            chunk = X[start : start + block]
            d2 = (
                np.sum(chunk**2, axis=1)[:, None]
                + train_sq[None, :]
                - 2.0 * chunk @ self._X.T
            )
            nearest = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
            for row_offset, indices in enumerate(nearest):
                row = start + row_offset
                if self.weights == "distance":
                    distances = np.sqrt(np.maximum(d2[row_offset, indices], 0.0))
                    w = 1.0 / (distances + 1e-9)
                else:
                    w = np.ones(len(indices))
                for index, weight in zip(indices, w):
                    votes[row, self._y[index]] += weight
        return votes

    def predict_proba(self, X) -> np.ndarray:
        votes = self._neighbour_votes(X)
        if votes.shape[1] == 1:
            return np.ones((votes.shape[0], 1))
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return votes / totals

    def predict(self, X) -> np.ndarray:
        votes = self._neighbour_votes(X)
        return self.classes_[np.argmax(votes, axis=1)]
