"""Estimator framework: a minimal, sklearn-compatible API.

The paper's plug-and-play analytic engine treats every classifier as a
black box with ``fit`` / ``predict`` / ``predict_proba``.  This module
defines that contract plus the ``get_params`` / ``set_params`` / ``clone``
machinery that lets ensembles and the multi-output wrapper copy estimator
configurations without sharing fitted state.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predict-time methods are called before ``fit``."""


class BaseEstimator:
    """Base class providing parameter introspection.

    Subclasses must accept all hyper-parameters as keyword arguments in
    ``__init__`` and store each under the same attribute name — the same
    convention scikit-learn uses, which makes :func:`clone` trivial.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, parameter in signature.parameters.items()
            if name != "self"
            and parameter.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        ]

    def get_params(self) -> dict[str, Any]:
        """Hyper-parameters as a dict (unfitted state only)."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Update hyper-parameters in place; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no parameter {name!r}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise NotFittedError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """A new unfitted estimator with the same hyper-parameters."""
    params = estimator.get_params()
    fresh = type(estimator)(**params)
    return fresh


class ClassifierMixin:
    """Shared classifier behaviour: class bookkeeping and scoring.

    Fitted classifiers expose ``classes_`` (sorted unique labels) and map
    predictions back to the original label values.  ``predict_proba``
    returns one column per entry of ``classes_``.
    """

    classes_: np.ndarray

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store ``classes_`` and return y as indices into it."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on the given test data."""
        from .metrics import accuracy_score

        return accuracy_score(np.asarray(y), self.predict(X))  # type: ignore[attr-defined]


class RegressorMixin:
    """Shared regressor behaviour: R^2 scoring."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        y = np.asarray(y, dtype=float)
        prediction = self.predict(X)  # type: ignore[attr-defined]
        ss_res = float(np.sum((y - prediction) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        if ss_tot == 0.0:
            # Constant target: perfect if residuals are numerically zero.
            scale = float(np.sum(y**2)) + 1.0
            return 1.0 if ss_res < 1e-12 * scale else 0.0
        return 1.0 - ss_res / ss_tot


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert training data to 2-D float X and 1-D y."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit with 0 samples")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return X, y


def check_array(X: Any) -> np.ndarray:
    """Validate and convert prediction input to a 2-D float array.

    Already-conforming arrays are returned as-is (no copy, no re-checks),
    so wrappers that validate once — e.g. ``MultiOutputClassifier`` fanning
    one batch out to 91 per-column estimators — pay for validation once
    instead of once per inner call.
    """
    if isinstance(X, np.ndarray) and X.dtype == np.float64 and X.ndim == 2:
        return X
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    return X
