"""Multi-output (multi-label) classification wrapper.

The paper transforms the multi-output leak problem into independent
binary classifications, one per node (Sec. III-B): "a binary classifier is
trained for each node independently".  :class:`MultiOutputClassifier`
implements that decomposition for any base estimator.

Two shared-work optimisations live here:

* **Shared binning** — when the per-column template uses the "hist" tree
  splitter, the quantile :class:`~repro.ml.binning.BinMapper` is fitted
  once on X and every column trains from row-slices of the same uint8
  codes instead of re-binning an identical matrix per column.
* **Validate once** — ``fit`` and ``predict_proba`` check X a single time
  at the wrapper; per-column calls receive the pre-checked array (inner
  ``check_array`` calls short-circuit on conforming arrays).

Column fits are independent, so they parallelise embarrassingly; the
``backend`` flag chooses threads (cheap, GIL-bound) or processes
(pickled round-trips, true parallelism for the pure-Python growers).
Either way column ``j``'s model depends only on ``(random_state, j)`` —
never on n_jobs, the backend, or chunk boundaries — so every
configuration fits bit-identical models.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from .base import BaseEstimator, check_array, clone
from .binning import BinMapper, hist_max_bins, supports_binned_fit


def _column_rows(
    y: np.ndarray,
    rng: np.random.Generator,
    negative_ratio: float | None,
    min_negatives: int,
) -> np.ndarray:
    """Row subset for one column honouring ``negative_ratio``."""
    if negative_ratio is None:
        return np.arange(len(y))
    positives = np.nonzero(y == 1)[0]
    negatives = np.nonzero(y != 1)[0]
    if len(positives) == 0 or len(negatives) == 0:
        return np.arange(len(y))
    keep = int(max(negative_ratio * len(positives), min_negatives))
    if keep >= len(negatives):
        return np.arange(len(y))
    sampled = rng.choice(negatives, size=keep, replace=False)
    return np.sort(np.concatenate([positives, sampled]))


def _predict_linear_stack(
    X: np.ndarray,
    W: np.ndarray,
    b: np.ndarray,
    flip: np.ndarray,
    const: np.ndarray,
) -> np.ndarray:
    """One GEMM + sigmoid over every stacked logistic column."""
    from .linear import _sigmoid

    proba = _sigmoid(X @ W.T + b)
    if flip.any():
        proba[:, flip] = 1.0 - proba[:, flip]
    fixed = ~np.isnan(const)
    if fixed.any():
        proba[:, fixed] = const[fixed]
    return proba


def _fit_one_column(
    template: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    seed: np.random.SeedSequence,
    negative_ratio: float | None,
    min_negatives: int,
    binned,
) -> BaseEstimator:
    """Fit one column's clone — the single code path every backend runs."""
    model = clone(template)
    rows = _column_rows(y, np.random.default_rng(seed), negative_ratio, min_negatives)
    if binned is not None and supports_binned_fit(model):
        codes, edges = binned
        model.fit(X[rows], y[rows], binned=(codes[rows], edges))
    else:
        model.fit(X[rows], y[rows])
    return model


def _fit_column_chunk(
    template: BaseEstimator,
    X: np.ndarray,
    Y: np.ndarray,
    columns: list[int],
    seeds: list[np.random.SeedSequence],
    negative_ratio: float | None,
    min_negatives: int,
    binned,
) -> list[BaseEstimator]:
    """Process-pool task: fit a chunk of columns (module-level so it
    pickles; one task per worker amortises the X round-trip)."""
    return [
        _fit_one_column(
            template, X, Y[:, column], seed, negative_ratio, min_negatives, binned
        )
        for column, seed in zip(columns, seeds)
    ]


class MultiOutputClassifier(BaseEstimator):
    """One independent clone of ``estimator`` per output column.

    ``fit`` takes ``Y`` of shape (n_samples, n_outputs) with binary {0,1}
    entries.  ``predict`` returns the same shape; ``predict_proba`` returns
    an (n_samples, n_outputs) matrix of P(label == 1), which is the
    representation Phase II's Bayes aggregation consumes.

    Args:
        estimator: the per-column template.
        negative_ratio: when set, each column's training set keeps all its
            positive samples plus at most ``negative_ratio`` times as many
            randomly drawn negatives (never fewer than ``min_negatives``).
            Leak labels are ~1-3% positive, so this both rebalances the
            classes and cuts per-node training cost by an order of
            magnitude.
        min_negatives: floor on the retained negatives per column.
        random_state: seed for the negative subsampling.
        n_jobs: worker count for fitting columns concurrently.  Column
            ``j``'s negative subsample is drawn from its own RNG stream
            spawned from ``random_state``, so the fitted model is
            identical for every ``n_jobs`` value.
        backend: "thread" (default) or "process".  Processes sidestep the
            GIL for the pure-Python tree growers at the cost of pickling
            X and the fitted models; results are bit-identical either way.
        bin_mapper: shared-binning control — "auto" (default) fits a
            :class:`BinMapper` once per ``fit`` when the template reaches
            a hist-splitter tree and accepts ``binned=``; ``None``
            disables sharing (every estimator re-bins); or pass a
            :class:`BinMapper` instance to pin ``max_bins`` explicitly.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        negative_ratio: float | None = None,
        min_negatives: int = 200,
        random_state: int | None = None,
        n_jobs: int | None = None,
        backend: str = "thread",
        bin_mapper="auto",
    ):
        self.estimator = estimator
        self.negative_ratio = negative_ratio
        self.min_negatives = min_negatives
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.backend = backend
        self.bin_mapper = bin_mapper

    def _shared_binned(self, X: np.ndarray):
        """(codes, edges) for X under the ``bin_mapper`` policy, or None."""
        if self.bin_mapper is None:
            return None
        if isinstance(self.bin_mapper, BinMapper):
            mapper = self.bin_mapper
        elif self.bin_mapper == "auto":
            if not supports_binned_fit(self.estimator):
                return None
            max_bins = hist_max_bins(self.estimator)
            if max_bins is None:
                return None
            mapper = BinMapper(max_bins=max_bins)
        else:
            raise ValueError(
                f"bin_mapper must be 'auto', None, or a BinMapper, "
                f"got {self.bin_mapper!r}"
            )
        if not hasattr(mapper, "edges_"):
            mapper.fit(X)
        return mapper.transform(X), mapper.edges_

    def fit(self, X, Y) -> "MultiOutputClassifier":
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        # Validate X once here; every per-column fit receives the checked
        # array (and a row-slice of the shared binned codes).
        X = check_array(X)
        if not np.all(np.isfinite(X)):
            raise ValueError("X contains NaN or infinite values")
        Y = np.asarray(Y)
        if Y.ndim != 2:
            raise ValueError(f"Y must be 2-D (n_samples, n_outputs), got {Y.shape}")
        if Y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows, Y has {Y.shape[0]}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit with 0 samples")
        n_outputs = Y.shape[1]
        binned = self._shared_binned(X)
        # One subsampling stream per column, spawned from a single root:
        # the rows kept for column j depend only on (random_state, j),
        # never on n_jobs, the backend, or the order columns finish in.
        seeds = np.random.SeedSequence(self.random_state).spawn(n_outputs)

        def fit_column(column: int) -> BaseEstimator:
            return _fit_one_column(
                self.estimator,
                X,
                Y[:, column],
                seeds[column],
                self.negative_ratio,
                self.min_negatives,
                binned,
            )

        n_jobs = int(self.n_jobs) if self.n_jobs else 1
        if n_jobs > 1 and self.backend == "process":
            # Round-robin chunks, one task per worker: column order inside
            # a chunk is irrelevant to the result (per-column seeds), and
            # reassembly below restores index order.
            chunks = [list(range(i, n_outputs, n_jobs)) for i in range(n_jobs)]
            chunks = [chunk for chunk in chunks if chunk]
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [
                    pool.submit(
                        _fit_column_chunk,
                        self.estimator,
                        X,
                        Y,
                        chunk,
                        [seeds[column] for column in chunk],
                        self.negative_ratio,
                        self.min_negatives,
                        binned,
                    )
                    for chunk in chunks
                ]
                results = [future.result() for future in futures]
            estimators: list[BaseEstimator | None] = [None] * n_outputs
            for chunk, fitted in zip(chunks, results):
                for column, model in zip(chunk, fitted):
                    estimators[column] = model
            self.estimators_ = list(estimators)
        elif n_jobs > 1:
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                self.estimators_ = list(pool.map(fit_column, range(n_outputs)))
        else:
            self.estimators_ = [fit_column(j) for j in range(n_outputs)]
        self.n_outputs_ = n_outputs
        self._linear_stack_cache = False
        return self

    def _column_rows(self, y: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Row subset for one column honouring ``negative_ratio``."""
        return _column_rows(y, rng, self.negative_ratio, self.min_negatives)

    def predict_proba(self, X) -> np.ndarray:
        """P(output == 1) per column, shape (n_samples, n_outputs)."""
        self._check_fitted("estimators_")
        # Validate once; per-column predict_proba calls see the same
        # conforming ndarray and skip re-validation.
        X = check_array(X)
        stack = self._linear_stack()
        if stack is not None:
            return _predict_linear_stack(X, *stack)
        columns = np.empty((X.shape[0], self.n_outputs_))
        for j, model in enumerate(self.estimators_):
            proba = model.predict_proba(X)
            classes = model.classes_
            if proba.shape[1] == 1:
                columns[:, j] = float(classes[0] == 1)
            else:
                positive = int(np.where(classes == 1)[0][0]) if 1 in classes else 1
                columns[:, j] = proba[:, positive]
        return columns

    def __getstate__(self):
        # The stacked-weight cache is derived data: keeping it out of
        # the pickle keeps content-hash etags a function of the fitted
        # model alone, not of whether predict_proba ran before pickling.
        state = dict(self.__dict__)
        state.pop("_linear_stack_cache", None)
        return state

    def _linear_stack(self):
        """Stacked (W, b, flip, const) for an all-logistic column set.

        Looping ~100 per-node logistic models costs more in Python call
        overhead than the arithmetic itself (each column is one dot
        product); stacking the weight vectors turns the whole sweep into
        a single GEMM + sigmoid.  Built lazily after fit, ``None`` when
        any column is not a plain fitted :class:`LogisticRegression`.
        """
        cached = getattr(self, "_linear_stack_cache", False)
        if cached is not False:
            return cached
        from .linear import LogisticRegression

        stack = None
        if all(
            type(model) is LogisticRegression and hasattr(model, "classes_")
            for model in self.estimators_
        ):
            n_features = next(
                (
                    model.coef_.shape[0]
                    for model in self.estimators_
                    if len(model.classes_) == 2
                ),
                None,
            )
            if n_features is not None:
                n_outputs = len(self.estimators_)
                W = np.zeros((n_outputs, n_features))
                b = np.zeros(n_outputs)
                flip = np.zeros(n_outputs, dtype=bool)
                const = np.full(n_outputs, np.nan)
                for j, model in enumerate(self.estimators_):
                    classes = model.classes_
                    if len(classes) == 1:
                        const[j] = float(classes[0] == 1)
                        continue
                    W[j] = model.coef_
                    b[j] = model.intercept_
                    # predict_proba columns are [1-p1, p1]; "positive"
                    # selects where class 1 sorted, or column 1 if absent.
                    positive = (
                        int(np.where(classes == 1)[0][0]) if 1 in classes else 1
                    )
                    flip[j] = positive == 0
                stack = (W, b, flip, const)
        self._linear_stack_cache = stack
        return stack

    def predict(self, X) -> np.ndarray:
        """Binary label matrix, shape (n_samples, n_outputs)."""
        return (self.predict_proba(X) > 0.5).astype(np.int64)
