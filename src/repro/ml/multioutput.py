"""Multi-output (multi-label) classification wrapper.

The paper transforms the multi-output leak problem into independent
binary classifications, one per node (Sec. III-B): "a binary classifier is
trained for each node independently".  :class:`MultiOutputClassifier`
implements that decomposition for any base estimator.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .base import BaseEstimator, check_array, check_X_y, clone


class MultiOutputClassifier(BaseEstimator):
    """One independent clone of ``estimator`` per output column.

    ``fit`` takes ``Y`` of shape (n_samples, n_outputs) with binary {0,1}
    entries.  ``predict`` returns the same shape; ``predict_proba`` returns
    an (n_samples, n_outputs) matrix of P(label == 1), which is the
    representation Phase II's Bayes aggregation consumes.

    Args:
        estimator: the per-column template.
        negative_ratio: when set, each column's training set keeps all its
            positive samples plus at most ``negative_ratio`` times as many
            randomly drawn negatives (never fewer than ``min_negatives``).
            Leak labels are ~1-3% positive, so this both rebalances the
            classes and cuts per-node training cost by an order of
            magnitude.
        min_negatives: floor on the retained negatives per column.
        random_state: seed for the negative subsampling.
        n_jobs: thread count for fitting columns concurrently.  Column
            ``j``'s negative subsample is drawn from its own RNG stream
            spawned from ``random_state``, so the fitted model is
            identical for every ``n_jobs`` value.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        negative_ratio: float | None = None,
        min_negatives: int = 200,
        random_state: int | None = None,
        n_jobs: int | None = None,
    ):
        self.estimator = estimator
        self.negative_ratio = negative_ratio
        self.min_negatives = min_negatives
        self.random_state = random_state
        self.n_jobs = n_jobs

    def fit(self, X, Y) -> "MultiOutputClassifier":
        X = check_array(X)
        Y = np.asarray(Y)
        if Y.ndim != 2:
            raise ValueError(f"Y must be 2-D (n_samples, n_outputs), got {Y.shape}")
        if Y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows, Y has {Y.shape[0]}")
        n_outputs = Y.shape[1]
        # One subsampling stream per column, spawned from a single root:
        # the rows kept for column j depend only on (random_state, j),
        # never on n_jobs or the order columns happen to finish in.
        seeds = np.random.SeedSequence(self.random_state).spawn(n_outputs)

        def fit_column(column: int) -> BaseEstimator:
            model = clone(self.estimator)
            _, y = check_X_y(X, Y[:, column])
            rows = self._column_rows(y, np.random.default_rng(seeds[column]))
            model.fit(X[rows], y[rows])
            return model

        n_jobs = int(self.n_jobs) if self.n_jobs else 1
        if n_jobs > 1:
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                self.estimators_ = list(pool.map(fit_column, range(n_outputs)))
        else:
            self.estimators_ = [fit_column(j) for j in range(n_outputs)]
        self.n_outputs_ = n_outputs
        return self

    def _column_rows(self, y: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Row subset for one column honouring ``negative_ratio``."""
        if self.negative_ratio is None:
            return np.arange(len(y))
        positives = np.nonzero(y == 1)[0]
        negatives = np.nonzero(y != 1)[0]
        if len(positives) == 0 or len(negatives) == 0:
            return np.arange(len(y))
        keep = int(max(self.negative_ratio * len(positives), self.min_negatives))
        if keep >= len(negatives):
            return np.arange(len(y))
        sampled = rng.choice(negatives, size=keep, replace=False)
        return np.sort(np.concatenate([positives, sampled]))

    def predict_proba(self, X) -> np.ndarray:
        """P(output == 1) per column, shape (n_samples, n_outputs)."""
        self._check_fitted("estimators_")
        X = check_array(X)
        columns = np.empty((X.shape[0], self.n_outputs_))
        for j, model in enumerate(self.estimators_):
            proba = model.predict_proba(X)
            classes = model.classes_
            if proba.shape[1] == 1:
                columns[:, j] = float(classes[0] == 1)
            else:
                positive = int(np.where(classes == 1)[0][0]) if 1 in classes else 1
                columns[:, j] = proba[:, positive]
        return columns

    def predict(self, X) -> np.ndarray:
        """Binary label matrix, shape (n_samples, n_outputs)."""
        return (self.predict_proba(X) > 0.5).astype(np.int64)
