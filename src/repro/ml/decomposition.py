"""Principal component analysis and principal feature analysis.

The paper's sensor-selection discussion cites PCA-based feature selection
(Lu et al. "Feature selection using principal feature analysis"; Malhi &
Gao "PCA-based feature selection scheme") as the background for its
k-medoids placement.  This module implements both: plain PCA, and PFA —
cluster the features' PCA loading vectors and keep one representative
feature per cluster, which selects *actual sensors* the way k-medoids
selects actual locations.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_array
from .cluster import KMedoids


class PCA(BaseEstimator):
    """Principal component analysis via SVD of the centred data.

    Args:
        n_components: components to keep (None = all).
    """

    def __init__(self, n_components: int | None = None):
        self.n_components = n_components

    def fit(self, X) -> "PCA":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        centred = X - self.mean_
        _, singular_values, vt = np.linalg.svd(centred, full_matrices=False)
        k = self.n_components or vt.shape[0]
        if not 1 <= k <= vt.shape[0]:
            raise ValueError(
                f"n_components must be in [1, {vt.shape[0]}], got {k}"
            )
        self.components_ = vt[:k]
        n = X.shape[0]
        variance = singular_values**2 / max(n - 1, 1)
        self.explained_variance_ = variance[:k]
        total = variance.sum()
        self.explained_variance_ratio_ = (
            variance[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("components_")
        X = check_array(X)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z) -> np.ndarray:
        self._check_fitted("components_")
        Z = np.asarray(Z, dtype=float)
        return Z @ self.components_ + self.mean_


class PrincipalFeatureAnalysis(BaseEstimator):
    """Select representative original features via PCA-loading clustering.

    Each feature is represented by its loading vector across the top-q
    principal components; k-medoids over those vectors picks
    ``n_features`` representative *original* features — the PFA scheme of
    the paper's refs [36, 37].

    Args:
        n_features: features to select.
        n_components: PCA subspace dimension (default: n_features).
        random_state: k-medoids seed.
    """

    def __init__(
        self,
        n_features: int = 10,
        n_components: int | None = None,
        random_state: int | None = None,
    ):
        self.n_features = n_features
        self.n_components = n_components
        self.random_state = random_state

    def fit(self, X) -> "PrincipalFeatureAnalysis":
        X = check_array(X)
        d = X.shape[1]
        if not 1 <= self.n_features <= d:
            raise ValueError(f"n_features must be in [1, {d}], got {self.n_features}")
        q = self.n_components or min(self.n_features, d, X.shape[0])
        pca = PCA(n_components=q).fit(X)
        loadings = pca.components_.T  # (d, q): one row per feature
        km = KMedoids(
            n_clusters=self.n_features, random_state=self.random_state
        ).fit(loadings)
        self.selected_indices_ = np.sort(km.medoid_indices_)
        self.pca_ = pca
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("selected_indices_")
        X = check_array(X)
        return X[:, self.selected_indices_]

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
