"""Data splitting and cross-validation."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import BaseEstimator, clone


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    random_state: int | None = None,
    shuffle: bool = True,
):
    """Split arrays into train/test partitions along axis 0.

    Returns ``[a_train, a_test, b_train, b_test, ...]`` for the given
    arrays, mirroring the sklearn call the paper's pipeline uses.
    """
    if not arrays:
        raise ValueError("at least one array required")
    n = len(arrays[0])
    for a in arrays:
        if len(a) != n:
            raise ValueError("all arrays must have the same length")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    n_test = max(int(round(n * test_size)), 1)
    if n_test >= n:
        raise ValueError(f"test_size {test_size} leaves no training samples")
    indices = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(random_state)
        rng.shuffle(indices)
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    out = []
    for a in arrays:
        a = np.asarray(a)
        out.extend([a[train_idx], a[test_idx]])
    return out


class KFold:
    """K-fold cross-validation splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state: int | None = None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) for each fold."""
        n = len(X)
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    cv: int = 5,
    random_state: int | None = None,
) -> np.ndarray:
    """Accuracy of a fresh clone of ``estimator`` on each fold."""
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in KFold(cv, shuffle=True, random_state=random_state).split(X):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(model.score(X[test_idx], y[test_idx]))
    return np.array(scores)
