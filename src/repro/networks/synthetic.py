"""Building blocks for deterministic synthetic water networks.

The paper's two evaluation networks (EPA-NET and WSSC-SUBNET) are
regenerated here as deterministic synthetic networks with the same
component counts and the same structural character (looped canonical
network vs. mostly-branched suburban district).  All generators take a
seed and use :func:`numpy.random.default_rng`, so the networks are
bit-for-bit reproducible.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from ..hydraulics import WaterNetwork

#: A plausible diurnal demand pattern (hourly multipliers, mean ~1.0).
DIURNAL_PATTERN = [
    0.62, 0.55, 0.52, 0.50, 0.55, 0.70,
    0.95, 1.25, 1.40, 1.35, 1.25, 1.18,
    1.12, 1.08, 1.05, 1.08, 1.15, 1.28,
    1.38, 1.30, 1.12, 0.95, 0.80, 0.68,
]


def jittered_grid_positions(
    rows: int,
    cols: int,
    spacing: float,
    rng: np.random.Generator,
    jitter: float = 0.25,
) -> list[tuple[float, float]]:
    """Grid points with uniform jitter, row-major order.

    Args:
        rows, cols: grid dimensions.
        spacing: nominal distance between neighbours (m).
        rng: seeded generator.
        jitter: maximum offset as a fraction of spacing.
    """
    positions = []
    for r in range(rows):
        for c in range(cols):
            dx, dy = rng.uniform(-jitter, jitter, size=2) * spacing
            positions.append((c * spacing + dx, r * spacing + dy))
    return positions


def grid_candidate_edges(rows: int, cols: int, rng: np.random.Generator, diagonal_probability: float = 0.3) -> list[tuple[int, int]]:
    """Orthogonal grid adjacencies plus a random subset of diagonals."""
    edges: list[tuple[int, int]] = []
    def index(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                edges.append((index(r, c), index(r + 1, c)))
            if r + 1 < rows and c + 1 < cols and rng.random() < diagonal_probability:
                edges.append((index(r, c), index(r + 1, c + 1)))
    return edges


def looped_backbone(
    n_nodes: int,
    n_edges: int,
    positions: list[tuple[float, float]],
    candidate_edges: list[tuple[int, int]],
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Choose exactly ``n_edges`` edges forming a connected looped graph.

    A minimum spanning tree guarantees connectivity; the remaining loop
    edges are drawn at random from the shortest unused candidates.

    Raises:
        ValueError: if ``n_edges`` < ``n_nodes - 1`` or not enough
            candidates exist.
    """
    if n_edges < n_nodes - 1:
        raise ValueError(f"need at least {n_nodes - 1} edges, got {n_edges}")

    def length(edge: tuple[int, int]) -> float:
        (x1, y1), (x2, y2) = positions[edge[0]], positions[edge[1]]
        return math.hypot(x2 - x1, y2 - y1)

    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    for a, b in candidate_edges:
        graph.add_edge(a, b, weight=length((a, b)))
    if not nx.is_connected(graph):
        raise ValueError("candidate edge set is not connected")
    tree = nx.minimum_spanning_tree(graph, weight="weight")
    chosen = set(frozenset(e) for e in tree.edges())
    extras_needed = n_edges - len(chosen)
    unused = [e for e in candidate_edges if frozenset(e) not in chosen]
    if len(unused) < extras_needed:
        raise ValueError(
            f"not enough candidate edges: need {extras_needed} extras, have {len(unused)}"
        )
    unused.sort(key=length)
    # Take a random sample biased toward short edges for realistic loops.
    weights = np.linspace(1.0, 0.2, num=len(unused))
    weights /= weights.sum()
    picked = rng.choice(len(unused), size=extras_needed, replace=False, p=weights)
    edges = [tuple(sorted(e)) for e in chosen]
    edges.extend(tuple(sorted(unused[i])) for i in picked)
    return sorted(edges)


def terrain_elevation(x: float, y: float, scale: float, relief: float, base: float = 5.0) -> float:
    """A smooth, deterministic terrain surface (m)."""
    u, v = x / scale, y / scale
    return (
        base
        + relief * 0.5 * (1.0 + math.sin(1.3 * u) * math.cos(0.9 * v))
        + relief * 0.2 * math.sin(2.7 * u + 1.1) * math.sin(1.9 * v + 0.4)
    )


def assign_diameters(
    graph: nx.Graph,
    source_nodes: list[int],
    mains: float = 0.45,
    distribution: float = 0.3,
    lateral: float = 0.2,
) -> dict[tuple[int, int], float]:
    """Diameter per edge by hop distance from the nearest source.

    Edges on trunk paths near sources get main-sized diameters; the far
    periphery gets laterals — the pattern real systems show and the one
    that makes leak signatures distance-dependent (paper Fig. 2).
    """
    hops: dict[int, int] = {}
    for source in source_nodes:
        for node, depth in nx.single_source_shortest_path_length(graph, source).items():
            hops[node] = min(hops.get(node, 10**9), depth)
    diameters: dict[tuple[int, int], float] = {}
    for a, b in graph.edges():
        depth = min(hops.get(a, 0), hops.get(b, 0))
        if depth <= 2:
            d = mains
        elif depth <= 5:
            d = distribution
        else:
            d = lateral
        diameters[tuple(sorted((a, b)))] = d
    return diameters


def attach_standard_pattern(network: WaterNetwork, name: str = "DIURNAL") -> str:
    """Register the shared diurnal pattern and return its name."""
    if name not in network.patterns:
        network.add_pattern(name, DIURNAL_PATTERN)
    return name


def two_loop_test_network() -> WaterNetwork:
    """A tiny 7-junction looped network for unit tests.

    One reservoir feeding two loops; total demand 20 L/s.  Small enough to
    reason about by hand, looped enough to exercise the solver.
    """
    net = WaterNetwork("two-loop")
    net.add_reservoir("SRC", base_head=50.0, coordinates=(0.0, 0.0))
    coordinates = {
        "J1": (100.0, 0.0),
        "J2": (200.0, 0.0),
        "J3": (300.0, 0.0),
        "J4": (100.0, 100.0),
        "J5": (200.0, 100.0),
        "J6": (300.0, 100.0),
        "J7": (400.0, 50.0),
    }
    demands = {"J1": 2e-3, "J2": 3e-3, "J3": 3e-3, "J4": 3e-3, "J5": 4e-3, "J6": 3e-3, "J7": 2e-3}
    for name, xy in coordinates.items():
        net.add_junction(name, elevation=5.0, base_demand=demands[name], coordinates=xy)
    pipes = [
        ("P1", "SRC", "J1", 100.0, 0.35),
        ("P2", "J1", "J2", 100.0, 0.3),
        ("P3", "J2", "J3", 100.0, 0.25),
        ("P4", "J1", "J4", 100.0, 0.25),
        ("P5", "J2", "J5", 100.0, 0.2),
        ("P6", "J3", "J6", 100.0, 0.2),
        ("P7", "J4", "J5", 100.0, 0.2),
        ("P8", "J5", "J6", 100.0, 0.2),
        ("P9", "J3", "J7", 110.0, 0.2),
        ("P10", "J6", "J7", 110.0, 0.2),
    ]
    for name, a, b, length, diameter in pipes:
        net.add_pipe(name, a, b, length=length, diameter=diameter, roughness=120.0)
    return net
