"""Cached junction-adjacency CSR structure for graph-structured inference.

Every consumer that needed "which junctions touch which" used to walk
``network.pipes()`` ad hoc.  :func:`junction_adjacency` builds the
canonical undirected junction-junction graph once — CSR neighbour lists
plus the directed-edge arrays message passing wants — weighted by
hydraulic conductance (the inverse Hazen-Williams resistance of the
connecting pipe, normalised to ``(0, 1]``).  Pumps and valves couple
their endpoints at full strength; parallel links sum their conductances.

:meth:`repro.hydraulics.WaterNetwork.junction_adjacency` memoises the
result per network and invalidates the cache whenever a node or link is
registered, so repeated factor-graph builds are free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hydraulics import WaterNetwork
from ..hydraulics.components import Junction, Pipe
from ..hydraulics.headloss import hazen_williams_resistance


@dataclass(frozen=True)
class JunctionAdjacency:
    """The undirected junction graph of one network, in CSR form.

    Each undirected edge appears as two directed half-edges; half-edge
    ``e`` runs ``src[e] -> dst[e]`` and ``reverse[e]`` indexes its
    opposite.  Neighbours of junction ``v`` occupy the CSR slice
    ``indices[indptr[v]:indptr[v + 1]]`` in ascending index order, which
    fixes a deterministic message schedule.

    Attributes:
        names: junction names, fixing the vertex order.
        indptr: (n + 1,) CSR row pointers.
        indices: (2m,) neighbour junction index per half-edge.
        weights: (2m,) normalised conductance per half-edge, in (0, 1]
            (both half-edges of an undirected edge share one weight).
        src: (2m,) source junction index per half-edge.
        reverse: (2m,) index of each half-edge's opposite.
    """

    names: tuple[str, ...]
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    src: np.ndarray = field(repr=False)
    reverse: np.ndarray = field(repr=False)

    @property
    def n_junctions(self) -> int:
        """Number of vertices."""
        return len(self.names)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    def degree(self, index: int) -> int:
        """Neighbour count of one junction."""
        return int(self.indptr[index + 1] - self.indptr[index])

    def index_of(self) -> dict[str, int]:
        """Name -> vertex index mapping (fresh dict each call)."""
        return {name: i for i, name in enumerate(self.names)}


#: Conductance assigned to pump/valve couplings before normalisation —
#: effectively "as strong as the strongest pipe".
_NON_PIPE_CONDUCTANCE = float("inf")


def _link_conductance(link) -> float:
    """Hydraulic conductance of one link (1 / HW resistance for pipes)."""
    if isinstance(link, Pipe):
        resistance = hazen_williams_resistance(
            link.length, link.diameter, link.roughness
        )
        return 1.0 / max(resistance, 1e-12)
    return _NON_PIPE_CONDUCTANCE


def junction_adjacency(network: WaterNetwork) -> JunctionAdjacency:
    """Build the undirected junction-junction CSR graph of a network.

    Links whose endpoints are both junctions become edges; links touching
    a reservoir or tank are dropped (fixed-head nodes carry no label).
    Parallel links merge by summing conductance, then every weight is
    divided by the maximum so weights land in ``(0, 1]`` — pump and valve
    couplings saturate at 1.

    Args:
        network: the network to index (not mutated).

    Returns:
        The immutable :class:`JunctionAdjacency`.
    """
    names = tuple(network.junction_names())
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    conductance: dict[tuple[int, int], float] = {}
    saturated: set[tuple[int, int]] = set()
    for link in network.links.values():
        u = index.get(link.start_node)
        v = index.get(link.end_node)
        if u is None or v is None:
            continue
        key = (min(u, v), max(u, v))
        g = _link_conductance(link)
        if np.isinf(g):
            saturated.add(key)
            conductance.setdefault(key, 0.0)
        else:
            conductance[key] = conductance.get(key, 0.0) + g
    finite = [g for k, g in conductance.items() if k not in saturated and g > 0.0]
    scale = max(finite) if finite else 1.0
    pair_weight = {
        key: 1.0 if key in saturated else min(g / scale, 1.0)
        for key, g in conductance.items()
    }

    neighbours: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for (u, v), w in sorted(pair_weight.items()):
        neighbours[u].append((v, w))
        neighbours[v].append((u, w))
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices = np.empty(sum(len(row) for row in neighbours), dtype=np.int64)
    weights = np.empty(indices.shape[0], dtype=float)
    src = np.empty(indices.shape[0], dtype=np.int64)
    position = 0
    for u, row in enumerate(neighbours):
        row.sort()
        for v, w in row:
            indices[position] = v
            weights[position] = w
            src[position] = u
            position += 1
        indptr[u + 1] = position

    # Opposite half-edge: the (dst, src) entry in dst's CSR slice.  With
    # neighbour lists sorted and parallel links merged, the pair is unique.
    half_edge = {
        (int(src[e]), int(indices[e])): e for e in range(indices.shape[0])
    }
    reverse = np.array(
        [half_edge[(int(indices[e]), int(src[e]))] for e in range(indices.shape[0])],
        dtype=np.int64,
    )
    return JunctionAdjacency(
        names=names,
        indptr=indptr,
        indices=indices,
        weights=weights,
        src=src,
        reverse=reverse,
    )


__all__ = ["JunctionAdjacency", "junction_adjacency"]
