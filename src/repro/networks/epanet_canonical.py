"""EPA-NET: the canonical evaluation network.

The paper's EPA-NET is "a canonical water network provided by EPANET" with
96 nodes, 118 pipes (links), 2 pumps, 1 valve, 3 tanks and 2 water sources
(Fig. 5).  The distributed INP is not available offline, so this module
regenerates a network with exactly those component counts and the same
structural character: a looped distribution zone, two pumped sources, three
elevated tanks at local high points, heterogeneous diameters and a diurnal
demand pattern.

Node/link counts (matching the Fig. 5 caption):

* nodes: 91 junctions + 2 reservoirs + 3 tanks = 96
* links: 115 pipes + 2 pumps + 1 valve   = 118
"""

from __future__ import annotations

import numpy as np

from ..hydraulics import LinkStatus, ValveType, WaterNetwork
from .synthetic import (
    assign_diameters,
    attach_standard_pattern,
    grid_candidate_edges,
    jittered_grid_positions,
    looped_backbone,
    terrain_elevation,
)

#: Grid layout: 13 x 7 = 91 junctions.
_ROWS, _COLS = 13, 7
_SPACING = 320.0  # metres between adjacent junctions
#: Junction pipes: 118 links - 2 pumps - 1 valve = 115 pipes; of those,
#: 3 connect tanks and 1 is consumed by the valve bypass arrangement.
_N_JUNCTION_PIPES = 111
_N_JUNCTIONS = _ROWS * _COLS


def epanet_canonical(seed: int = 20170601) -> WaterNetwork:
    """Build the EPA-NET surrogate. Deterministic for a given seed."""
    rng = np.random.default_rng(seed)
    net = WaterNetwork("EPA-NET")
    net.options.hydraulic_timestep = 900.0  # the paper's 15-min IoT slot
    net.options.pattern_timestep = 3600.0

    positions = jittered_grid_positions(_ROWS, _COLS, _SPACING, rng)
    pattern = attach_standard_pattern(net)

    # --- junctions -----------------------------------------------------
    elevations = []
    for i, (x, y) in enumerate(positions):
        elevation = terrain_elevation(x, y, scale=1500.0, relief=18.0)
        elevations.append(elevation)
        demand = float(rng.lognormal(mean=np.log(8e-4), sigma=0.5))
        net.add_junction(
            f"J{i + 1}",
            elevation=elevation,
            base_demand=demand,
            demand_pattern=pattern,
            coordinates=(x, y),
        )

    # --- junction pipe grid -------------------------------------------
    candidates = grid_candidate_edges(_ROWS, _COLS, rng)
    edges = looped_backbone(_N_JUNCTIONS, _N_JUNCTION_PIPES, positions, candidates, rng)

    import networkx as nx

    graph = nx.Graph(edges)
    # Sources enter at two opposite corners of the grid.
    inlet_a = 0
    inlet_b = _N_JUNCTIONS - 1
    diameters = assign_diameters(graph, [inlet_a, inlet_b])

    pipe_id = 0
    for a, b in edges:
        pipe_id += 1
        (x1, y1), (x2, y2) = positions[a], positions[b]
        length = float(np.hypot(x2 - x1, y2 - y1)) * 1.1
        roughness = float(rng.uniform(95.0, 140.0))
        net.add_pipe(
            f"P{pipe_id}",
            f"J{a + 1}",
            f"J{b + 1}",
            length=length,
            diameter=diameters[tuple(sorted((a, b)))],
            roughness=roughness,
        )

    # --- sources: two reservoirs feeding through pumps -----------------
    total_demand = sum(j.base_demand for j in net.junctions())
    design_flow = total_demand  # each pump sized for the whole zone
    design_head = 55.0
    net.add_curve("PUMP-CURVE-1", [(design_flow, design_head)])
    net.add_curve("PUMP-CURVE-2", [(design_flow * 0.8, design_head * 0.95)])

    (xa, ya) = positions[inlet_a]
    (xb, yb) = positions[inlet_b]
    net.add_reservoir("SRC1", base_head=8.0, coordinates=(xa - 400.0, ya - 400.0))
    net.add_reservoir("SRC2", base_head=6.0, coordinates=(xb + 400.0, yb + 400.0))
    net.add_pump("PU1", "SRC1", f"J{inlet_a + 1}", curve_name="PUMP-CURVE-1")
    net.add_pump("PU2", "SRC2", f"J{inlet_b + 1}", curve_name="PUMP-CURVE-2")

    # --- tanks at the three highest junctions (spread apart) -----------
    order = np.argsort(elevations)[::-1]
    tank_sites: list[int] = []
    for i in order:
        if all(_grid_distance(int(i), s) > 3 for s in tank_sites):
            tank_sites.append(int(i))
        if len(tank_sites) == 3:
            break
    for t, site in enumerate(tank_sites, start=1):
        x, y = positions[site]
        tank_elev = elevations[site] + 32.0
        net.add_tank(
            f"T{t}",
            elevation=tank_elev,
            init_level=4.0,
            min_level=1.0,
            max_level=7.0,
            diameter=14.0,
            coordinates=(x + 60.0, y + 60.0),
        )
        pipe_id += 1
        net.add_pipe(
            f"P{pipe_id}",
            f"J{site + 1}",
            f"T{t}",
            length=80.0,
            diameter=0.3,
            roughness=130.0,
        )

    # --- one TCV on a trunk main near inlet A, with a parallel pipe ----
    # The valve replaces a pipe between inlet_a and its east neighbour;
    # one extra pipe keeps the pipe count at 115.
    neighbour = inlet_a + 1  # east neighbour in the grid
    pipe_id += 1
    net.add_pipe(
        f"P{pipe_id}",
        f"J{inlet_a + 1}",
        f"J{neighbour + 1}",
        length=_SPACING * 1.1,
        diameter=0.35,
        roughness=125.0,
    )
    net.add_valve(
        "V1",
        f"J{inlet_a + 1}",
        f"J{neighbour + 1}",
        valve_type=ValveType.TCV,
        diameter=0.35,
        setting=2.0,
        status=LinkStatus.OPEN,
    )

    net.validate()
    counts = net.describe()
    assert counts["nodes"] == 96, counts
    assert counts["links"] == 118, counts
    assert counts["pumps"] == 2 and counts["valves"] == 1, counts
    assert counts["tanks"] == 3 and counts["reservoirs"] == 2, counts
    return net


def _grid_distance(i: int, j: int) -> int:
    """Manhattan distance between two grid indices."""
    ri, ci = divmod(i, _COLS)
    rj, cj = divmod(j, _COLS)
    return abs(ri - rj) + abs(ci - cj)
