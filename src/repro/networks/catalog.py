"""Named registry of the evaluation networks.

The experiment harness refers to networks by name ("epanet", "wssc"), so
adding a new network here makes it available to every experiment.
"""

from __future__ import annotations

from typing import Callable

from ..hydraulics import WaterNetwork
from .epanet_canonical import epanet_canonical
from .synthetic import two_loop_test_network
from .synthetic_city import city_10k, city_100k
from .wssc_subnet import wssc_subnet

_BUILDERS: dict[str, Callable[..., WaterNetwork]] = {
    "epanet": epanet_canonical,
    "wssc": wssc_subnet,
    "two-loop": lambda seed=0: two_loop_test_network(),
}

#: City-scale networks, resolvable by :func:`build_network` but kept out
#: of the default :func:`available_networks` listing: the verify sweep,
#: differential oracles, and CLI defaults iterate that listing, and a
#: 10k–100k-junction build per oracle would swamp them.
_LARGE_BUILDERS: dict[str, Callable[..., WaterNetwork]] = {
    "city10k": city_10k,
    "city100k": city_100k,
}

#: Alternate spellings accepted by :func:`build_network` (the paper calls
#: the networks EPA-NET and WSSC-SUBNET).
_ALIASES: dict[str, str] = {
    "epa-net": "epanet",
    "wssc-subnet": "wssc",
    "city-10k": "city10k",
    "city-100k": "city100k",
}


def available_networks(include_large: bool = False) -> list[str]:
    """Names accepted by :func:`build_network`.

    Args:
        include_large: also list the city-scale networks (10k+ junctions)
            that bulk sweeps deliberately skip.
    """
    names = dict(_BUILDERS)
    if include_large:
        names.update(_LARGE_BUILDERS)
    return sorted(names)


def large_networks() -> list[str]:
    """Names of the city-scale networks (built on demand, never swept)."""
    return sorted(_LARGE_BUILDERS)


def build_network(name: str, seed: int | None = None) -> WaterNetwork:
    """Build a registered network by name.

    Args:
        name: one of :func:`available_networks`.
        seed: generator seed; None uses each builder's paper-default.

    Raises:
        KeyError: for unknown names (message lists the valid ones).
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    builder = _BUILDERS.get(key) or _LARGE_BUILDERS.get(key)
    if builder is None:
        raise KeyError(
            f"unknown network {name!r}; available: "
            f"{available_networks(include_large=True)}"
        )
    if seed is None:
        return builder()
    return builder(seed=seed)


def register_network(name: str, builder: Callable[..., WaterNetwork]) -> None:
    """Register a custom network builder (plug-and-play extension point)."""
    _BUILDERS[name.strip().lower()] = builder
