"""Named registry of the evaluation networks.

The experiment harness refers to networks by name ("epanet", "wssc"), so
adding a new network here makes it available to every experiment.
"""

from __future__ import annotations

from typing import Callable

from ..hydraulics import WaterNetwork
from .epanet_canonical import epanet_canonical
from .synthetic import two_loop_test_network
from .wssc_subnet import wssc_subnet

_BUILDERS: dict[str, Callable[..., WaterNetwork]] = {
    "epanet": epanet_canonical,
    "wssc": wssc_subnet,
    "two-loop": lambda seed=0: two_loop_test_network(),
}

#: Alternate spellings accepted by :func:`build_network` (the paper calls
#: the networks EPA-NET and WSSC-SUBNET).
_ALIASES: dict[str, str] = {
    "epa-net": "epanet",
    "wssc-subnet": "wssc",
}


def available_networks() -> list[str]:
    """Names accepted by :func:`build_network`."""
    return sorted(_BUILDERS)


def build_network(name: str, seed: int | None = None) -> WaterNetwork:
    """Build a registered network by name.

    Args:
        name: one of :func:`available_networks`.
        seed: generator seed; None uses each builder's paper-default.

    Raises:
        KeyError: for unknown names (message lists the valid ones).
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _BUILDERS:
        raise KeyError(f"unknown network {name!r}; available: {available_networks()}")
    if seed is None:
        return _BUILDERS[key]()
    return _BUILDERS[key](seed=seed)


def register_network(name: str, builder: Callable[..., WaterNetwork]) -> None:
    """Register a custom network builder (plug-and-play extension point)."""
    _BUILDERS[name.strip().lower()] = builder
