"""Deterministic city-scale synthetic networks (10k–100k junctions).

The paper evaluates on 96- and 299-node networks; the ROADMAP north
star is city scale.  This module extends the looped-grid-plus-laterals
pattern of :mod:`repro.networks.wssc_subnet` to five-digit junction
counts: a full orthogonal street grid (connected by construction, so no
spanning-tree machinery is needed at 100k nodes), a random sprinkling
of diagonal cross-streets, short service-lateral chains hanging off the
grid, and one perimeter reservoir per ~5k junctions feeding the grid
through large transmission mains, with pipe diameters tapering with
distance from the nearest source.

Everything is drawn in bulk from one seeded
:func:`numpy.random.default_rng` stream (SeedSequence-pure, no
Python-loop draws on the hot path), so a network is bit-for-bit
reproducible from ``(n_junctions, seed)`` and builds in seconds even at
100k junctions.  These networks exist to exercise the sparse Schur
solver core (:mod:`repro.hydraulics.sparse`) — they are registered in
the catalog as ``city10k``/``city100k`` but excluded from the default
:func:`~repro.networks.catalog.available_networks` sweep that the
verify and oracle harnesses iterate.
"""

from __future__ import annotations

import math

import numpy as np

from ..hydraulics import WaterNetwork
from .synthetic import attach_standard_pattern

#: Grid spacing between adjacent street junctions (m).
_SPACING = 100.0
#: Fraction of junctions that are service laterals (not grid nodes).
_LATERAL_FRACTION = 0.2
#: Probability that a grid cell gets a diagonal cross-street.
_DIAGONAL_PROBABILITY = 0.04
#: Probability that a lateral chains off the previous lateral instead of
#: attaching straight to its grid parent.
_CHAIN_PROBABILITY = 0.35
#: One perimeter reservoir per this many junctions (minimum one).
_JUNCTIONS_PER_RESERVOIR = 5000


def _city_terrain(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Smooth rolling terrain (m), vectorised over coordinate arrays."""
    u = x / 1900.0
    v = y / 1500.0
    return (
        12.0
        + 9.0 * np.sin(0.9 * u) * np.cos(1.1 * v)
        + 4.0 * np.sin(2.3 * u + 0.7) * np.sin(1.7 * v + 0.3)
    )


def synthetic_city(n_junctions: int = 10_000, seed: int = 20260807) -> WaterNetwork:
    """Build a city-scale looped-grid network, deterministic per seed.

    Args:
        n_junctions: total junction count (grid + laterals), >= 16.
        seed: RNG seed; every stochastic choice comes from one
            ``default_rng(seed)`` stream in a fixed draw order.

    Returns:
        A validated :class:`~repro.hydraulics.WaterNetwork` with exactly
        ``n_junctions`` junctions, ``max(1, n_junctions // 5000)``
        reservoirs, and roughly 1.3 links per junction.
    """
    if n_junctions < 16:
        raise ValueError(f"synthetic_city needs >= 16 junctions, got {n_junctions}")
    rng = np.random.default_rng(seed)

    n_lateral = int(n_junctions * _LATERAL_FRACTION)
    n_grid = n_junctions - n_lateral
    rows = max(int(math.sqrt(n_grid)), 2)
    cols = n_grid // rows
    n_grid = rows * cols
    n_lateral = n_junctions - n_grid

    # --- grid junction positions (row-major), jittered ------------------
    r_idx, c_idx = np.divmod(np.arange(n_grid), cols)
    gx = c_idx * _SPACING + rng.uniform(-15.0, 15.0, n_grid)
    gy = r_idx * _SPACING + rng.uniform(-15.0, 15.0, n_grid)

    # --- orthogonal street edges (connected by construction) ------------
    idx = np.arange(n_grid)
    horiz_a = idx[c_idx < cols - 1]
    vert_a = idx[r_idx < rows - 1]
    edges_a = [horiz_a, vert_a]
    edges_b = [horiz_a + 1, vert_a + cols]
    # Diagonal cross-streets on a random subset of cells.
    cell_a = idx[(c_idx < cols - 1) & (r_idx < rows - 1)]
    diag = cell_a[rng.random(len(cell_a)) < _DIAGONAL_PROBABILITY]
    edges_a.append(diag)
    edges_b.append(diag + cols + 1)

    # --- service laterals: short chains off the grid --------------------
    parent_grid = rng.integers(0, n_grid, n_lateral)
    chain = rng.random(n_lateral) < _CHAIN_PROBABILITY
    chain[:1] = False
    lat_idx = np.arange(n_lateral)
    # Chain roots: each lateral inherits the grid parent of the most
    # recent non-chained lateral; depth counts steps along the chain.
    root_at = np.maximum.accumulate(np.where(~chain, lat_idx, -1))
    root_parent = parent_grid[root_at]
    depth = lat_idx - root_at
    parent = np.where(chain, n_grid + lat_idx - 1, root_parent)
    angle = rng.uniform(0.0, 2.0 * math.pi, n_lateral)
    reach = rng.uniform(40.0, 90.0, n_lateral)
    # All laterals of a chain share the root's angle draw, stepping
    # outward, which keeps positions computable without a Python loop.
    angle = angle[root_at]
    lx = gx[root_parent] + np.cos(angle) * reach * (depth + 1)
    ly = gy[root_parent] + np.sin(angle) * reach * (depth + 1)

    x = np.concatenate([gx, lx])
    y = np.concatenate([gy, ly])
    elevation = _city_terrain(x, y)
    demand = rng.lognormal(mean=math.log(1.8e-4), sigma=0.4, size=n_junctions)

    # --- reservoirs: evenly spaced around the grid perimeter ------------
    n_res = max(1, n_junctions // _JUNCTIONS_PER_RESERVOIR)
    perimeter = np.concatenate(
        [
            idx[r_idx == 0],
            idx[c_idx == cols - 1][1:],
            idx[r_idx == rows - 1][::-1][1:],
            idx[c_idx == 0][::-1][1:-1],
        ]
    )
    feed = perimeter[
        (np.arange(n_res) * len(perimeter)) // n_res % len(perimeter)
    ]

    # --- diameters taper with distance to the nearest reservoir ---------
    feed_x, feed_y = x[feed], y[feed]
    dist = np.full(n_grid, np.inf)
    for fx, fy in zip(feed_x, feed_y):
        np.minimum(dist, np.hypot(gx - fx, gy - fy), out=dist)

    net = WaterNetwork(f"CITY-{n_junctions}")
    net.options.hydraulic_timestep = 900.0
    net.options.pattern_timestep = 3600.0
    pattern = attach_standard_pattern(net)

    for i in range(n_junctions):
        net.add_junction(
            f"N{i + 1}",
            elevation=float(elevation[i]),
            base_demand=float(demand[i]),
            demand_pattern=pattern,
            coordinates=(float(x[i]), float(y[i])),
        )

    edge_a = np.concatenate(edges_a)
    edge_b = np.concatenate(edges_b)
    edge_len = np.hypot(x[edge_b] - x[edge_a], y[edge_b] - y[edge_a]) * 1.1
    edge_dist = np.minimum(dist[edge_a], dist[edge_b])
    span = max(float(dist.max()), 1.0)
    edge_diam = np.where(
        edge_dist < 0.12 * span, 0.6, np.where(edge_dist < 0.4 * span, 0.35, 0.25)
    )
    edge_rough = rng.uniform(95.0, 130.0, len(edge_a))
    for k in range(len(edge_a)):
        net.add_pipe(
            f"M{k + 1}",
            f"N{edge_a[k] + 1}",
            f"N{edge_b[k] + 1}",
            length=float(edge_len[k]),
            diameter=float(edge_diam[k]),
            roughness=float(edge_rough[k]),
        )

    lat_len = reach * 1.1
    lat_rough = rng.uniform(85.0, 120.0, n_lateral)
    for k in range(n_lateral):
        net.add_pipe(
            f"L{k + 1}",
            f"N{int(parent[k]) + 1}",
            f"N{n_grid + k + 1}",
            length=float(lat_len[k]),
            diameter=0.12,
            roughness=float(lat_rough[k]),
        )

    base_head = float(elevation.max()) + 70.0
    for r, node in enumerate(feed):
        rx, ry = float(x[node]), float(y[node])
        net.add_reservoir(
            f"SRC{r + 1}",
            base_head=base_head,
            coordinates=(rx - 200.0, ry - 200.0),
        )
        net.add_pipe(
            f"T{r + 1}",
            f"SRC{r + 1}",
            f"N{int(node) + 1}",
            length=400.0,
            diameter=0.9,
            roughness=135.0,
        )

    counts = net.describe()
    assert counts["junctions"] == n_junctions, counts
    assert counts["reservoirs"] == n_res, counts
    return net


def city_10k(seed: int = 20260807) -> WaterNetwork:
    """The catalog's ``city10k`` builder: 10,000 junctions."""
    return synthetic_city(10_000, seed=seed)


def city_100k(seed: int = 20260807) -> WaterNetwork:
    """The catalog's ``city100k`` builder: 100,000 junctions."""
    return synthetic_city(100_000, seed=seed)
