"""WSSC-SUBNET: surrogate for the paper's real-world evaluation network.

The paper evaluates on "a real subzone of WSSC water service area" with 299
nodes, 316 pipes, 2 valves and one water source (Fig. 5).  That INP is
proprietary, so this module generates a deterministic suburban district
with exactly the same component counts and the same structural character:
a looped backbone of mains with long, mostly-branched residential laterals,
a single gravity source at the high end of a sloped terrain, and two inline
valves on the backbone.

Node/link counts (matching the Fig. 5 caption):

* nodes: 298 junctions + 1 reservoir = 299
* links: 314 pipes + 2 valves        = 316
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from ..hydraulics import LinkStatus, ValveType, WaterNetwork
from .synthetic import (
    attach_standard_pattern,
    grid_candidate_edges,
    jittered_grid_positions,
    looped_backbone,
)

_B_ROWS, _B_COLS = 8, 6            # 48 backbone junctions
_B_SPACING = 420.0
_N_BACKBONE = _B_ROWS * _B_COLS
_N_BACKBONE_EDGES = 63             # 48-node backbone with 16 loops
_N_LATERAL = 250                   # lateral junctions (one pipe each)


def _terrain(x: float, y: float) -> float:
    """Sloped suburban terrain: high in the north-west, valley floor SE."""
    slope = 30.0 * (1.0 - (x + y) / 6000.0)
    ripple = 4.0 * math.sin(x / 700.0) * math.cos(y / 550.0)
    return max(slope + ripple + 12.0, 2.0)


def wssc_subnet(seed: int = 20170602) -> WaterNetwork:
    """Build the WSSC-SUBNET surrogate. Deterministic for a given seed."""
    rng = np.random.default_rng(seed)
    net = WaterNetwork("WSSC-SUBNET")
    net.options.hydraulic_timestep = 900.0
    net.options.pattern_timestep = 3600.0
    pattern = attach_standard_pattern(net)

    # --- backbone ------------------------------------------------------
    positions = jittered_grid_positions(_B_ROWS, _B_COLS, _B_SPACING, rng)
    candidates = grid_candidate_edges(_B_ROWS, _B_COLS, rng)
    backbone_edges = looped_backbone(
        _N_BACKBONE, _N_BACKBONE_EDGES, positions, candidates, rng
    )

    junction_positions: list[tuple[float, float]] = list(positions)
    parents: list[int | None] = [None] * _N_BACKBONE

    # --- laterals: branched residential trees off the backbone ---------
    # Growth is preferential toward recently added lateral nodes, which
    # produces the chain-with-spurs look of suburban streets.
    attach_pool = list(range(_N_BACKBONE))
    for _ in range(_N_LATERAL):
        if rng.random() < 0.35 or len(attach_pool) == _N_BACKBONE:
            parent = int(rng.choice(_N_BACKBONE))
        else:
            recent = attach_pool[_N_BACKBONE:]
            parent = int(recent[int(rng.integers(len(recent)))]) if recent else int(
                rng.choice(_N_BACKBONE)
            )
        px, py = junction_positions[parent]
        angle = rng.uniform(0.0, 2.0 * math.pi)
        step = rng.uniform(90.0, 160.0)
        new_index = len(junction_positions)
        junction_positions.append((px + step * math.cos(angle), py + step * math.sin(angle)))
        parents.append(parent)
        attach_pool.append(new_index)

    n_junctions = len(junction_positions)
    assert n_junctions == _N_BACKBONE + _N_LATERAL == 298

    # --- junctions ------------------------------------------------------
    for i, (x, y) in enumerate(junction_positions):
        is_backbone = i < _N_BACKBONE
        mean_demand = 4e-4 if is_backbone else 2e-4
        demand = float(rng.lognormal(mean=np.log(mean_demand), sigma=0.45))
        net.add_junction(
            f"N{i + 1}",
            elevation=_terrain(x, y),
            base_demand=demand,
            demand_pattern=pattern,
            coordinates=(x, y),
        )

    # --- pipes ------------------------------------------------------------
    graph = nx.Graph(backbone_edges)
    source_attach = 0  # north-west corner, highest terrain
    hops = nx.single_source_shortest_path_length(graph, source_attach)

    pipe_id = 0
    for a, b in backbone_edges:
        pipe_id += 1
        (x1, y1), (x2, y2) = junction_positions[a], junction_positions[b]
        depth = min(hops.get(a, 9), hops.get(b, 9))
        diameter = 0.4 if depth <= 2 else (0.3 if depth <= 5 else 0.25)
        net.add_pipe(
            f"M{pipe_id}",
            f"N{a + 1}",
            f"N{b + 1}",
            length=float(np.hypot(x2 - x1, y2 - y1)) * 1.15,
            diameter=diameter,
            roughness=float(rng.uniform(90.0, 130.0)),
        )
    for i in range(_N_BACKBONE, n_junctions):
        parent = parents[i]
        assert parent is not None
        pipe_id += 1
        (x1, y1), (x2, y2) = junction_positions[parent], junction_positions[i]
        net.add_pipe(
            f"L{pipe_id}",
            f"N{parent + 1}",
            f"N{i + 1}",
            length=float(np.hypot(x2 - x1, y2 - y1)) * 1.1,
            diameter=0.15,
            roughness=float(rng.uniform(85.0, 120.0)),
        )

    # --- single gravity source ------------------------------------------
    sx, sy = junction_positions[source_attach]
    source_elev = _terrain(sx, sy)
    net.add_reservoir(
        "SOURCE", base_head=source_elev + 52.0, coordinates=(sx - 300.0, sy - 300.0)
    )
    pipe_id += 1
    net.add_pipe(
        f"M{pipe_id}",
        "SOURCE",
        f"N{source_attach + 1}",
        length=350.0,
        diameter=0.5,
        roughness=135.0,
    )

    # --- two inline TCVs on the backbone ---------------------------------
    valve_edges = [backbone_edges[len(backbone_edges) // 3], backbone_edges[2 * len(backbone_edges) // 3]]
    for v, (a, b) in enumerate(valve_edges, start=1):
        net.add_valve(
            f"V{v}",
            f"N{a + 1}",
            f"N{b + 1}",
            valve_type=ValveType.TCV,
            diameter=0.3,
            setting=1.5,
            status=LinkStatus.OPEN,
        )

    net.validate()
    counts = net.describe()
    assert counts["nodes"] == 299, counts
    assert counts["links"] == 316, counts
    assert counts["pipes"] == 314 and counts["valves"] == 2, counts
    assert counts["reservoirs"] == 1 and counts["tanks"] == 0, counts
    return net
