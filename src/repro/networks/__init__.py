"""Evaluation networks: EPA-NET and WSSC-SUBNET surrogates + test nets."""

from .adjacency import JunctionAdjacency, junction_adjacency
from .catalog import (
    available_networks,
    build_network,
    large_networks,
    register_network,
)
from .epanet_canonical import epanet_canonical
from .synthetic import two_loop_test_network
from .synthetic_city import synthetic_city
from .wssc_subnet import wssc_subnet

__all__ = [
    "JunctionAdjacency",
    "available_networks",
    "build_network",
    "epanet_canonical",
    "junction_adjacency",
    "large_networks",
    "register_network",
    "synthetic_city",
    "two_loop_test_network",
    "wssc_subnet",
]
