"""Graph-structured Phase-II aggregation: factor graphs + max-product BP.

The paper scores junctions independently and patches inconsistencies
with a greedy clique flip (Eq. 10).  Its lineage — *Leak Event
Identification in Water Systems Using High Order CRF* and *Factor Graph
Optimization for Leak Localization in Water Distribution Networks*
(PAPERS.md) — treats localization as MAP inference over the pipe
topology instead.  This subsystem supplies that layer:

* :mod:`factor_graph` — variables, Potts pipe couplings weighted by
  hydraulic conductance, soft at-least-one clique factors;
* :mod:`bp` — damped synchronous max-product as batched array kernels
  over the CSR half-edge structure;
* :mod:`crf` — the :class:`CRFEngine` facade Phase II calls, with a
  batch entry point that composes with ``AquaScale.localize_batch`` and
  the serving micro-batcher.

Select it per request with ``inference="crf"`` on
:meth:`~repro.core.AquaScale.localize` (or the serve ``localize`` op);
``inference="independent"`` keeps the paper's behaviour.
"""

from .bp import BPResult, max_product
from .crf import CRFConfig, CRFDiagnostics, CRFEngine
from .factor_graph import (
    MAX_CLIQUE_PENALTY,
    CliqueFactor,
    FactorGraph,
    build_factor_graph,
    cliques_to_factors,
)

#: Inference modes Phase II understands, in wire-format spelling.
INFERENCE_MODES = ("independent", "crf")

__all__ = [
    "BPResult",
    "CRFConfig",
    "CRFDiagnostics",
    "CRFEngine",
    "CliqueFactor",
    "FactorGraph",
    "INFERENCE_MODES",
    "MAX_CLIQUE_PENALTY",
    "build_factor_graph",
    "cliques_to_factors",
    "max_product",
]
