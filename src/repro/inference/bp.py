"""Vectorized max-product message passing over the junction factor graph.

Binary labels make messages one-dimensional: after normalisation a
message is fully described by its log-odds ``m(1) - m(0)``, so the whole
state is one float per directed half-edge plus one per (clique, member)
— flat arrays batched across samples.  Two closed forms drive the loop:

* **Pairwise (attractive Potts, strength w >= 0)** — the outgoing
  message equals the sender's cavity log-odds clamped into ``[-w, +w]``:
  a neighbour can pull a junction by at most the coupling strength.
  With ``w = 0`` every message is exactly zero, which is what makes the
  degenerate configuration bit-identical to independent aggregation.
* **Clique ("at least one leaks", penalty rho)** — with cavity log-odds
  ``s_u`` of the *other* members: if any ``s_u > 0`` the factor is
  already satisfied and the message is zero; otherwise it pushes the
  member up by ``min(rho, -max_u s_u)`` — the soft, evidence-weighted
  version of the paper's greedy highest-entropy flip (Eq. 10).

The schedule is synchronous (every message recomputed from the previous
iteration's state) with damping, so updates are deterministic — no
dependence on dict order, thread timing, or RNG.  Convergence is
per-sample: once a row's largest message change falls below ``tol`` its
messages freeze, so a row's trajectory never depends on what else shares
its batch — ``max_product`` on a stacked batch is bit-identical to
running each row alone (the property the ``serve_vs_direct`` oracle
checks through the micro-batcher).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .factor_graph import CliqueFactor, FactorGraph

#: Probabilities are clipped into [EPS, 1 - EPS] before log-odds are
#: formed (mirrors :data:`repro.core.fusion.EPS`).
EPS = 1e-9


@dataclass(frozen=True)
class BPResult:
    """Outcome of one (batched) max-product run.

    Attributes:
        probabilities: (n_samples, n_junctions) fused posteriors — the
            unary inputs moved by the converged message field.  Rows
            whose messages are exactly zero pass through bit-identically.
        message_delta: (n_samples, n_junctions) total log-odds shift each
            junction received from its neighbours and cliques.
        iterations: message-passing sweeps executed.
        converged: whether the largest message change fell below ``tol``
            within the iteration budget (over the whole batch).
        max_delta: the final sweep's largest message change.
    """

    probabilities: np.ndarray
    message_delta: np.ndarray
    iterations: int
    converged: bool
    max_delta: float


def _segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Row-wise sums of CSR slices: out[:, v] = values[:, indptr[v]:indptr[v+1]].

    Implemented with a cumulative sum so the whole batch reduces in one
    pass; empty slices (isolated junctions) sum to exactly zero.
    """
    if values.shape[1] == 0:
        return np.zeros((values.shape[0], indptr.shape[0] - 1))
    padded = np.concatenate(
        [np.zeros((values.shape[0], 1)), np.cumsum(values, axis=1)], axis=1
    )
    return padded[:, indptr[1:]] - padded[:, indptr[:-1]]


def _clique_update(
    cavity: np.ndarray, penalty: float
) -> np.ndarray:
    """Messages from one at-least-one factor to each member, batched.

    Args:
        cavity: (n_samples, k) member log-odds excluding this factor's
            own previous message.
        penalty: the factor's all-off cost rho.

    Returns:
        (n_samples, k) message log-odds.
    """
    positive = np.maximum(cavity, 0.0)
    total_positive = positive.sum(axis=1, keepdims=True)
    # m(1): others free = sum of their max(s, 0).
    on_value = total_positive - positive
    k = cavity.shape[1]
    if k == 1:
        other_on = np.full_like(cavity, -np.inf)
    else:
        # Largest cavity among the *other* members via the top-2 trick.
        order = np.argsort(cavity, axis=1)
        top1 = order[:, -1]
        top1_value = np.take_along_axis(cavity, top1[:, None], axis=1)
        top2_value = np.take_along_axis(cavity, order[:, -2][:, None], axis=1)
        is_top1 = np.arange(k)[None, :] == top1[:, None]
        max_other = np.where(is_top1, top2_value, top1_value)
        # "Some other member on": free if one already wants on, else the
        # cheapest forced flip.
        any_other_positive = (cavity > 0.0).sum(axis=1, keepdims=True) - (
            cavity > 0.0
        ) > 0
        other_on = np.where(any_other_positive, on_value, max_other)
    off_value = np.maximum(other_on, -penalty)
    return on_value - off_value


def max_product(
    graph: FactorGraph,
    probabilities: np.ndarray,
    cliques: list[CliqueFactor] | None = None,
    damping: float = 0.4,
    max_iters: int = 60,
    tol: float = 1e-6,
) -> BPResult:
    """Run damped synchronous max-product to (approximate) convergence.

    Args:
        graph: the network-level factor graph.
        probabilities: (n_samples, n_junctions) or (n_junctions,) unary
            posteriors (the Bayes-fused profile output).
        cliques: per-sample higher-order factors — the same factors are
            applied to every row; callers with heterogeneous evidence
            run one row per call or group rows by evidence.
        damping: fraction of the previous message retained (0 = jumpy
            pure updates, values near 1 = slow but safe; 0.4 converges
            on every catalog network).
        max_iters: sweep budget.
        tol: convergence threshold on the largest message change.

    Returns:
        The :class:`BPResult`; probabilities keep the input dtype/shape
        contract (2-D, one row per sample).

    Raises:
        ValueError: on a shape mismatch with the graph, or parameters
            outside their domain.
    """
    p = np.asarray(probabilities, dtype=float)
    if p.ndim == 1:
        p = p[None, :]
    if p.ndim != 2 or p.shape[1] != graph.n_variables:
        raise ValueError(
            f"probabilities must be (n_samples, {graph.n_variables}), "
            f"got shape {np.shape(probabilities)}"
        )
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must be in [0, 1), got {damping}")
    if max_iters < 1:
        raise ValueError(f"max_iters must be >= 1, got {max_iters}")
    cliques = list(cliques or ())

    adjacency = graph.adjacency
    n_samples, n = p.shape
    clipped = np.clip(p, EPS, 1.0 - EPS)
    unary = np.log(clipped) - np.log1p(-clipped)
    weights = graph.edge_potentials
    reverse = adjacency.reverse
    src = adjacency.src
    indptr = adjacency.indptr

    messages = np.zeros((n_samples, weights.shape[0]))
    clique_messages = [np.zeros((n_samples, f.members.shape[0])) for f in cliques]
    clique_in = np.zeros((n_samples, n))

    # Per-sample convergence: a row whose largest message change drops
    # below tol freezes, so its result never depends on batch-mates.
    active = np.ones(n_samples, dtype=bool)
    iterations = 0
    max_delta = 0.0
    for iterations in range(1, max_iters + 1):
        # Incoming pairwise sum per junction: a junction's incoming
        # half-edges are the reverses of its outgoing CSR slice.
        pair_in = _segment_sums(messages[:, reverse], indptr)
        total = unary + pair_in + clique_in

        cavity = total[:, src] - messages[:, reverse]
        updated = np.clip(cavity, -weights, weights)
        new_messages = damping * messages + (1.0 - damping) * updated
        row_delta = (
            np.max(np.abs(new_messages - messages), axis=1)
            if weights.shape[0]
            else np.zeros(n_samples)
        )

        new_clique_messages = []
        new_clique_in = np.zeros((n_samples, n))
        for factor, current in zip(cliques, clique_messages):
            member_cavity = total[:, factor.members] - current
            update = _clique_update(member_cavity, factor.penalty)
            fresh = damping * current + (1.0 - damping) * update
            fresh = np.where(active[:, None], fresh, current)
            new_clique_messages.append(fresh)
            new_clique_in[:, factor.members] += fresh
            row_delta = np.maximum(
                row_delta, np.max(np.abs(fresh - current), axis=1)
            )

        messages = np.where(active[:, None], new_messages, messages)
        clique_messages = new_clique_messages
        clique_in = new_clique_in
        row_delta = np.where(active, row_delta, 0.0)
        max_delta = float(row_delta.max()) if n_samples else 0.0
        active = active & (row_delta >= tol)
        if not active.any():
            break
    converged = not bool(active.any())

    message_delta = _segment_sums(messages[:, reverse], indptr) + clique_in
    fused_logits = unary + message_delta
    fused = 1.0 / (1.0 + np.exp(-fused_logits))
    probabilities_out = np.where(message_delta == 0.0, p, fused)
    return BPResult(
        probabilities=probabilities_out,
        message_delta=message_delta,
        iterations=iterations,
        converged=converged,
        max_delta=max_delta,
    )


__all__ = ["EPS", "BPResult", "max_product"]
