"""The CRF aggregation engine: posterior rows in, smoothed rows out.

:class:`CRFEngine` binds the factor graph of one network to tuning knobs
(:class:`CRFConfig`) and exposes the two entry points Phase II uses:

* :meth:`CRFEngine.fuse` — one sample;
* :meth:`CRFEngine.fuse_batch` — a batch, with rows that carry no human
  evidence coalesced into a single vectorized :func:`max_product` call
  (the common serving case) and rows with cliques solved per sample,
  since clique factors are per-request evidence.

The engine is deliberately ignorant of the profile model and of weather:
it consumes *fused* posteriors (IoT through the classifiers, freeze
evidence already Bayes-aggregated per Eqs. 5-6) so the unary factors are
exactly what independent aggregation would have output — which is what
makes the ``crf_vs_independent`` differential oracle a bit-identity
claim in the degenerate configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..networks.adjacency import JunctionAdjacency
from .bp import BPResult, max_product
from .factor_graph import FactorGraph, build_factor_graph, cliques_to_factors


@dataclass(frozen=True)
class CRFConfig:
    """Tuning knobs of the factor-graph aggregation.

    Attributes:
        pairwise_strength: Potts coupling scale along pipes; 0 turns the
            CRF into independent aggregation (bit-identically).
        clique_penalty_scale: multiplier on the confidence-derived
            all-off penalty of human-report cliques.
        min_clique_confidence: drop cliques below this Eq.-(3)
            confidence (0 = keep every clique, the paper's behaviour).
        damping: message damping of the synchronous schedule.
        max_iters: sweep budget per sample.
        tol: convergence threshold on the largest message change.
    """

    pairwise_strength: float = 0.5
    clique_penalty_scale: float = 1.0
    min_clique_confidence: float = 0.0
    damping: float = 0.4
    max_iters: int = 60
    tol: float = 1e-6


@dataclass(frozen=True)
class CRFDiagnostics:
    """Per-sample message-passing telemetry.

    Attributes:
        iterations: sweeps run for this sample's BP call.
        converged: whether that call met ``tol`` within budget.
        n_cliques: clique factors applied to this sample.
    """

    iterations: int
    converged: bool
    n_cliques: int


class CRFEngine:
    """Factor-graph aggregation bound to one network's adjacency.

    Args:
        adjacency: the junction CSR graph (see
            :meth:`~repro.hydraulics.WaterNetwork.junction_adjacency`).
        config: tuning knobs (defaults reproduce the committed goldens).
    """

    def __init__(
        self,
        adjacency: JunctionAdjacency,
        config: CRFConfig | None = None,
    ):
        self.config = config or CRFConfig()
        self.graph: FactorGraph = build_factor_graph(
            adjacency, self.config.pairwise_strength
        )
        self._name_index = adjacency.index_of()

    # ------------------------------------------------------------------
    def _factors(self, human) -> list:
        """Clique factors for one sample's human evidence (may be empty)."""
        cliques = human.cliques if human is not None else ()
        if not cliques:
            return []
        return cliques_to_factors(
            cliques,
            self._name_index,
            penalty_scale=self.config.clique_penalty_scale,
            min_confidence=self.config.min_clique_confidence,
        )

    def _run(self, probabilities: np.ndarray, factors: list) -> BPResult:
        """One max-product call with this engine's knobs."""
        return max_product(
            self.graph,
            probabilities,
            cliques=factors,
            damping=self.config.damping,
            max_iters=self.config.max_iters,
            tol=self.config.tol,
        )

    def fuse(
        self, probabilities: np.ndarray, human=None
    ) -> tuple[np.ndarray, CRFDiagnostics]:
        """Aggregate one sample's posterior over the pipe graph.

        Args:
            probabilities: (n_junctions,) fused unary posterior.
            human: optional :class:`~repro.observations.HumanObservation`.

        Returns:
            ``(updated posterior, diagnostics)``.
        """
        factors = self._factors(human)
        result = self._run(np.asarray(probabilities, dtype=float), factors)
        return result.probabilities[0], CRFDiagnostics(
            iterations=result.iterations,
            converged=result.converged,
            n_cliques=len(factors),
        )

    def fuse_batch(
        self,
        probabilities: np.ndarray,
        human: list | None = None,
    ) -> tuple[np.ndarray, list[CRFDiagnostics]]:
        """Aggregate a batch, coalescing rows without human evidence.

        Args:
            probabilities: (n_samples, n_junctions) fused posteriors.
            human: optional per-row observations (None entries allowed).

        Returns:
            ``(updated posteriors, per-row diagnostics)``.
        """
        p = np.asarray(probabilities, dtype=float)
        if p.ndim != 2:
            raise ValueError("fuse_batch expects (n_samples, n_junctions)")
        n_samples = p.shape[0]
        humans = human if human is not None else [None] * n_samples
        if len(humans) != n_samples:
            raise ValueError(
                f"human list has {len(humans)} entries for {n_samples} rows"
            )
        out = np.empty_like(p)
        diagnostics: list[CRFDiagnostics | None] = [None] * n_samples
        factor_lists = [self._factors(h) for h in humans]
        plain = [i for i, factors in enumerate(factor_lists) if not factors]
        if plain:
            result = self._run(p[plain], [])
            out[plain] = result.probabilities
            for i in plain:
                diagnostics[i] = CRFDiagnostics(
                    iterations=result.iterations,
                    converged=result.converged,
                    n_cliques=0,
                )
        for i, factors in enumerate(factor_lists):
            if not factors:
                continue
            result = self._run(p[i], factors)
            out[i] = result.probabilities[0]
            diagnostics[i] = CRFDiagnostics(
                iterations=result.iterations,
                converged=result.converged,
                n_cliques=len(factors),
            )
        return out, diagnostics


__all__ = ["CRFConfig", "CRFDiagnostics", "CRFEngine"]
