"""The factor graph Phase II optimises over (CRF formulation).

The paper's energy (Eq. 9) is a sum of per-node entropies plus
higher-order clique potentials (Eq. 10), minimised by a greedy flip
heuristic.  The follow-on work of the same lineage — *Leak Event
Identification in Water Systems Using High Order CRF* and *Factor Graph
Optimization for Leak Localization in Water Distribution Networks*
(PAPERS.md) — recasts localization as MAP inference in a graphical model
over the pipe topology.  This module builds that model:

* **Variables** — one binary label ``y_v`` (leak / no leak) per junction.
* **Unary factors** — log-odds of the fused per-node posterior (profile
  model output, Bayes-fused with freeze evidence per Eqs. 5-6).
* **Pairwise factors** — an attractive Potts coupling along every pipe,
  ``psi_uv(y_u, y_v) = strength * conductance_uv * [y_u = y_v]`` in log
  space: hydraulically tight neighbours prefer agreeing labels.
* **Clique factors** — one soft "at least one member leaks" factor per
  human-report subzone; the all-off configuration pays
  ``-log(1 - confidence)``, the soft counterpart of Eq. 10's infinity.

:mod:`repro.inference.bp` runs max-product message passing over this
structure; :mod:`repro.inference.crf` packages both behind the engine
API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..networks.adjacency import JunctionAdjacency

#: Penalty ceiling for clique factors (a confidence of 1 would otherwise
#: reproduce Eq. 10's infinite potential and break convergence checks).
MAX_CLIQUE_PENALTY = -float(np.log(1e-6))


@dataclass(frozen=True)
class CliqueFactor:
    """One higher-order "at least one member leaks" factor.

    Attributes:
        members: vertex indices of the clique's junctions (deduplicated,
            ascending).
        penalty: log-space cost of the all-off configuration (>= 0).
    """

    members: np.ndarray
    penalty: float


@dataclass(frozen=True)
class FactorGraph:
    """Variables + pairwise structure of one network's CRF.

    Clique factors are per-sample evidence (each request carries its own
    human reports), so they are passed to the solver separately; this
    object is the reusable, network-level part.

    Attributes:
        adjacency: the junction CSR graph (vertex order, half-edges).
        pairwise_strength: Potts coupling scale; 0 decouples every
            junction and message passing degenerates to independent
            aggregation (bit-identically — see the
            ``crf_vs_independent`` oracle).
        edge_potentials: (2m,) per-half-edge log-space coupling,
            ``pairwise_strength * weight``.
    """

    adjacency: JunctionAdjacency
    pairwise_strength: float
    edge_potentials: np.ndarray

    @property
    def n_variables(self) -> int:
        """Number of binary label variables (junctions)."""
        return self.adjacency.n_junctions

    @property
    def names(self) -> tuple[str, ...]:
        """Junction names, fixing the variable order."""
        return self.adjacency.names


def build_factor_graph(
    adjacency: JunctionAdjacency, pairwise_strength: float
) -> FactorGraph:
    """Assemble the network-level factor graph.

    Args:
        adjacency: from :meth:`WaterNetwork.junction_adjacency`.
        pairwise_strength: Potts coupling scale (>= 0).

    Raises:
        ValueError: for a negative coupling (max-product's closed-form
            message update assumes an attractive potential).
    """
    if pairwise_strength < 0.0:
        raise ValueError(
            f"pairwise_strength must be >= 0, got {pairwise_strength}"
        )
    return FactorGraph(
        adjacency=adjacency,
        pairwise_strength=float(pairwise_strength),
        edge_potentials=pairwise_strength * adjacency.weights,
    )


def cliques_to_factors(
    cliques,
    name_index: dict[str, int],
    penalty_scale: float = 1.0,
    min_confidence: float = 0.0,
    max_penalty: float = MAX_CLIQUE_PENALTY,
) -> list[CliqueFactor]:
    """Convert human-report cliques into soft at-least-one factors.

    The all-off penalty is ``penalty_scale * -log(1 - confidence)``
    (capped): a single report with the paper's ``p_e = 0.3`` costs about
    1.2 nats, two co-located reports about 2.4 — so a subzone must
    overcome genuinely confident "no leak" evidence before being
    ignored, where the greedy tuner (Eq. 10 with Gamma = 0) always
    flipped.

    Args:
        cliques: :class:`~repro.observations.Clique` sequence.
        name_index: junction name -> variable index (members outside the
            map — reports from beyond the modelled region — are
            dropped; a clique with no mapped member yields no factor).
        penalty_scale: multiplier on the confidence-derived penalty.
        min_confidence: cliques below this Eq.-(3) confidence are
            ignored outright.
        max_penalty: penalty ceiling (keeps potentials finite).

    Returns:
        Factors in clique order (deterministic).
    """
    factors: list[CliqueFactor] = []
    for clique in cliques:
        if clique.confidence < min_confidence:
            continue
        members = sorted(
            {name_index[node] for node in clique.nodes if node in name_index}
        )
        if not members:
            continue
        confidence = min(max(float(clique.confidence), 0.0), 1.0 - 1e-12)
        penalty = min(penalty_scale * -np.log1p(-confidence), max_penalty)
        if penalty <= 0.0:
            continue
        factors.append(
            CliqueFactor(
                members=np.asarray(members, dtype=np.int64),
                penalty=float(penalty),
            )
        )
    return factors


__all__ = [
    "MAX_CLIQUE_PENALTY",
    "CliqueFactor",
    "FactorGraph",
    "build_factor_graph",
    "cliques_to_factors",
]
