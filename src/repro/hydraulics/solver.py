"""Steady-state hydraulic solver (Todini-Pilati Global Gradient Algorithm).

This is the numerical core of the EPANET++ substitute.  Given a
:class:`~repro.hydraulics.network.WaterNetwork`, nodal demands and fixed
heads (reservoirs and tanks), the solver computes junction heads and link
flows satisfying mass balance and the energy equations, including leak
emitters (``Q = EC * p**beta``, paper Eq. 1), pumps, and valves.

The GGA is a Newton method on the mixed (flow, head) system whose head-only
Schur complement is solved with a sparse SPD solve each iteration — the
same algorithm EPANET itself implements.  Valve and check-valve statuses
are resolved in an outer loop around the Newton iteration.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg.lapack import dposv as _dposv

from .components import (
    Junction,
    LinkStatus,
    Pipe,
    Pump,
    PumpCurveModel,
    Reservoir,
    Tank,
    Valve,
    ValveType,
)
from .exceptions import ConvergenceError, NetworkTopologyError
from .headloss import (
    Q_LAMINAR,
    dw_headloss_and_gradient,
    dw_headloss_and_gradient_array,
    hazen_williams_resistance,
    hw_headloss_and_gradient,
    hw_headloss_and_gradient_array,
)
from .network import WaterNetwork
from .sparse import (
    CachedSchurSolver,
    SchurPattern,
    SchurStats,
    SingularSchurError,
    legacy_sparse_solve,
)

#: Resistance used for CLOSED links (headloss = R_CLOSED * q).
R_CLOSED = 1e8
#: Penalty conductance pinning an active PRV's downstream head.
K_PRV = 1e8
#: Density * gravity, for constant-power pumps (Pa per metre of head).
RHO_G = 998.2 * 9.80665
#: Smallest pump flow used when evaluating power-law curve derivatives.
Q_PUMP_MIN = 1e-6
#: Maximum outer status-resolution passes.
MAX_STATUS_PASSES = 20

#: Below this delivery fraction the PDD Wagner curve continues linearly
#: to the origin instead of following sqrt (whose derivative blows up).
PDD_FRAC_EPS = 0.01


def emitter_flow_and_gradient(
    pressure: np.ndarray, ec: np.ndarray, beta: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Emitter outflow ``Q = EC * p**beta`` and ``dQ/dp`` (paper Eq. 1).

    Shape-generic lane kernel: all three inputs must share one shape —
    ``(n,)`` for the sequential solver, ``(lanes, n)`` for the batched
    engine — and the arithmetic per active element is identical either
    way, so the two paths agree bit for bit.
    """
    active = (ec > 0.0) & (pressure > 0.0)
    flow = np.zeros(pressure.shape)
    grad = np.zeros(pressure.shape)
    if np.any(active):
        p_act = pressure[active]
        ec_act = ec[active]
        beta_act = beta[active]
        flow[active] = ec_act * p_act**beta_act
        grad[active] = (
            ec_act * beta_act * np.maximum(p_act, 1e-6) ** (beta_act - 1.0)
        )
    return flow, grad


def pdd_delivery_and_gradient(
    pressure: np.ndarray,
    demand: np.ndarray,
    minimum_pressure: float,
    required_pressure: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Pressure-driven delivery (Wagner curve) and its head gradient.

    ``delivered = demand * sqrt(clip((p - pmin)/(preq - pmin), 0, 1))``
    with a linearised toe below :data:`PDD_FRAC_EPS` (sqrt has an
    infinite derivative at zero, which makes Newton crawl when a starved
    node settles near zero delivery).  Shape-generic like
    :func:`emitter_flow_and_gradient`: ``pressure`` and ``demand`` may be
    ``(n,)`` or ``(lanes, n)``.
    """
    span = max(required_pressure - minimum_pressure, 1e-6)
    frac = np.clip((pressure - minimum_pressure) / span, 0.0, 1.0)
    toe = frac < PDD_FRAC_EPS
    factor = np.sqrt(np.maximum(frac, PDD_FRAC_EPS))
    factor[toe] = frac[toe] / np.sqrt(PDD_FRAC_EPS)
    delivered = demand * factor
    partial = (frac < 1.0) & (demand > 0.0)
    grad = np.zeros(pressure.shape)
    grad[~toe] = 0.5 / (span * np.maximum(factor[~toe], 1e-9))
    grad[toe] = 1.0 / (span * np.sqrt(PDD_FRAC_EPS))
    pdd_grad = np.zeros(pressure.shape)
    pdd_grad[partial] = demand[partial] * grad[partial]
    # A small floor keeps starved nodes anchored even at the flat ends
    # of the curve.
    has_demand = demand > 0.0
    pdd_grad[has_demand] = np.maximum(
        pdd_grad[has_demand], demand[has_demand] * 1e-3 / span
    )
    return delivered, pdd_grad


def _dense_limit_from_env() -> int:
    """Resolve the dense/sparse crossover junction count.

    Defaults to 700; the ``REPRO_DENSE_LIMIT`` environment variable
    overrides it (an integer junction count — ``0`` forces the sparse
    path everywhere, a huge value forces dense).  Read once at import.
    """
    raw = os.environ.get("REPRO_DENSE_LIMIT")
    if raw is None:
        return 700
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_DENSE_LIMIT must be an integer, got {raw!r}"
        ) from exc


#: Junction counts up to this size use a dense LAPACK solve for the Schur
#: complement — far cheaper than sparse machinery at the network sizes the
#: paper evaluates (~100 nodes).  Larger networks use the cached-pattern
#: sparse core in :mod:`repro.hydraulics.sparse`.  Overridable via the
#: ``REPRO_DENSE_LIMIT`` environment variable (see
#: :func:`_dense_limit_from_env`); per-solver override via the
#: ``linear_solver`` constructor argument.
DENSE_SOLVE_LIMIT = _dense_limit_from_env()


class SteadyStateSolution:
    """Result of one steady-state solve.  All values in SI units.

    The solution is array-backed: vectors are stored in solver order and
    the name-keyed dict views (``node_head`` & friends, the historical
    API) are materialised lazily on first access, so hot paths that
    consume the arrays never pay for dict construction.

    Array attributes (junction order = ``GGASolver.junction_names``,
    fixed order = ``GGASolver.fixed_names``, link order =
    ``GGASolver.link_names``):

    Attributes:
        junction_names: junction names fixing the array order.
        fixed_names: reservoir/tank names fixing the fixed-array order.
        link_names: link names fixing the flow-array order.
        junction_heads: total head (m) per junction.
        junction_pressures: pressure head (m) per junction.
        junction_demands: delivered consumer demand (m^3/s) per junction.
        junction_leaks: emitter outflow (m^3/s) per junction.
        fixed_heads: head (m) per reservoir/tank.
        fixed_pressures: pressure head (m) per reservoir/tank (0 for
            reservoirs by convention).
        link_flows: signed flow (m^3/s) per link (positive start -> end).
        link_statuses: resolved operating status per link (link order).
        iterations: Newton iterations used (summed over status passes).
        residual: final maximum nodal mass-balance error (m^3/s).
        converged: whether tolerances were met.

    Lazy dict views (identical to the pre-array API):

    * ``node_head`` — total head (m) per node name (junctions + fixed);
    * ``node_pressure`` — pressure head (m) per node;
    * ``node_demand`` — consumer demand (m^3/s) per node (0 for fixed);
    * ``leak_flow`` — emitter outflow (m^3/s) per node (0 when no leak);
    * ``link_flow`` — signed flow (m^3/s) per link name;
    * ``link_status`` — resolved operating status per link name.
    """

    def __init__(
        self,
        junction_names: list[str],
        fixed_names: list[str],
        link_names: list[str],
        junction_heads: np.ndarray,
        junction_pressures: np.ndarray,
        junction_demands: np.ndarray,
        junction_leaks: np.ndarray,
        fixed_heads: np.ndarray,
        fixed_pressures: np.ndarray,
        link_flows: np.ndarray,
        link_statuses: list[LinkStatus],
        iterations: int,
        residual: float,
        converged: bool,
    ):
        self.junction_names = junction_names
        self.fixed_names = fixed_names
        self.link_names = link_names
        self.junction_heads = junction_heads
        self.junction_pressures = junction_pressures
        self.junction_demands = junction_demands
        self.junction_leaks = junction_leaks
        self.fixed_heads = fixed_heads
        self.fixed_pressures = fixed_pressures
        self.link_flows = link_flows
        self.link_statuses = link_statuses
        self.iterations = iterations
        self.residual = residual
        self.converged = converged
        self._node_head: dict[str, float] | None = None
        self._node_pressure: dict[str, float] | None = None
        self._node_demand: dict[str, float] | None = None
        self._leak_flow: dict[str, float] | None = None
        self._link_flow: dict[str, float] | None = None
        self._link_status: dict[str, LinkStatus] | None = None

    # -- lazy name-keyed views -----------------------------------------
    def _node_view(self, junction_values, fixed_values) -> dict[str, float]:
        view = dict(zip(self.junction_names, junction_values.tolist()))
        view.update(zip(self.fixed_names, fixed_values.tolist()))
        return view

    @property
    def node_head(self) -> dict[str, float]:
        """Head (m) by node name, junctions and fixed nodes alike."""
        if self._node_head is None:
            self._node_head = self._node_view(self.junction_heads, self.fixed_heads)
        return self._node_head

    @property
    def node_pressure(self) -> dict[str, float]:
        """Pressure (m) by node name (0 for reservoirs)."""
        if self._node_pressure is None:
            self._node_pressure = self._node_view(
                self.junction_pressures, self.fixed_pressures
            )
        return self._node_pressure

    @property
    def node_demand(self) -> dict[str, float]:
        """Delivered demand (m^3/s) by node name (0 at fixed nodes)."""
        if self._node_demand is None:
            self._node_demand = self._node_view(
                self.junction_demands, np.zeros(len(self.fixed_names))
            )
        return self._node_demand

    @property
    def leak_flow(self) -> dict[str, float]:
        """Emitter outflow (m^3/s) by node name (0 at fixed nodes)."""
        if self._leak_flow is None:
            self._leak_flow = self._node_view(
                self.junction_leaks, np.zeros(len(self.fixed_names))
            )
        return self._leak_flow

    @property
    def link_flow(self) -> dict[str, float]:
        """Signed flow (m^3/s) by link name."""
        if self._link_flow is None:
            self._link_flow = dict(zip(self.link_names, self.link_flows.tolist()))
        return self._link_flow

    @property
    def link_status(self) -> dict[str, LinkStatus]:
        """Operating :class:`LinkStatus` by link name."""
        if self._link_status is None:
            self._link_status = dict(zip(self.link_names, self.link_statuses))
        return self._link_status

    def __getstate__(self) -> dict:
        """Pickle only the arrays; dict views are rebuilt lazily."""
        state = self.__dict__.copy()
        for key in (
            "_node_head", "_node_pressure", "_node_demand",
            "_leak_flow", "_link_flow", "_link_status",
        ):
            state[key] = None
        return state

    def total_leak_flow(self) -> float:
        """Total water lost through emitters (m^3/s)."""
        return float(self.junction_leaks.sum())


@dataclass
class _LinkRecord:
    """Solver-internal per-link description."""

    name: str
    kind: str  # "pipe" | "pump" | "valve"
    start: str
    end: str
    resistance: float = 0.0  # HW resistance for pipes
    minor: float = 0.0  # minor-loss m with loss = m q|q|
    length: float = 0.0  # pipe length (m), for Darcy-Weisbach
    diameter: float = 0.0  # pipe diameter (m), for Darcy-Weisbach
    roughness_height: float = 0.0  # epsilon (m), for Darcy-Weisbach
    check_valve: bool = False
    pump_model: PumpCurveModel | None = None
    pump_power: float | None = None
    speed: float = 1.0
    valve_type: ValveType | None = None
    setting: float = 0.0
    open_minor: float = 0.0  # valve minor loss when fully open
    status: LinkStatus = LinkStatus.OPEN


class GGASolver:
    """Reusable steady-state solver bound to one network's structure.

    Building the solver pre-computes index arrays; repeated ``solve`` calls
    (dataset generation runs tens of thousands) then avoid per-call
    structure work.  The solver never mutates the network.

    ``linear_solver`` picks the Schur-complement backend:

    * ``"auto"`` (default) — dense LAPACK Cholesky up to
      :data:`DENSE_SOLVE_LIMIT` junctions, the cached-pattern sparse
      core (:mod:`repro.hydraulics.sparse`) beyond it;
    * ``"dense"`` / ``"sparse"`` — force one path regardless of size
      (the ``sparse_vs_dense`` differential oracle uses both);
    * ``"legacy"`` — the pre-cache per-iteration COO + ``spsolve``
      path, kept as the measurable baseline for ``repro bench
      --steady``.
    """

    def __init__(self, network: WaterNetwork, linear_solver: str = "auto"):
        if linear_solver not in ("auto", "dense", "sparse", "legacy"):
            raise ValueError(
                "linear_solver must be one of 'auto', 'dense', 'sparse', "
                f"'legacy'; got {linear_solver!r}"
            )
        network.validate()
        self.network = network
        self._linear_solver = linear_solver
        self._use_darcy_weisbach = network.options.headloss_model.upper().startswith("D")
        self._junction_names: list[str] = []
        self._fixed_names: list[str] = []
        self._elevation: dict[str, float] = {}
        for node in network.nodes.values():
            if isinstance(node, Junction):
                self._junction_names.append(node.name)
                self._elevation[node.name] = node.elevation
            elif isinstance(node, Reservoir):
                self._fixed_names.append(node.name)
                self._elevation[node.name] = node.base_head
            elif isinstance(node, Tank):
                self._fixed_names.append(node.name)
                self._elevation[node.name] = node.elevation
        self._junction_index = {n: i for i, n in enumerate(self._junction_names)}
        self._records = [self._make_record(link) for link in network.links.values()]
        self._n_junctions = len(self._junction_names)

        # -- precomputed index/coefficient arrays (the array fast path) --
        records = self._records
        jidx = self._junction_index
        self._fixed_index = {n: i for i, n in enumerate(self._fixed_names)}
        fidx = self._fixed_index
        self._link_names = [r.name for r in records]
        self._elevation_arr = np.array(
            [self._elevation[n] for n in self._junction_names]
        )
        self._base_demand_arr = np.array(
            [network.nodes[n].base_demand for n in self._junction_names]  # type: ignore[union-attr]
        )
        self._emitter_ec_arr = np.array(
            [network.nodes[n].emitter_coefficient for n in self._junction_names]  # type: ignore[union-attr]
        )
        self._emitter_beta_arr = np.array(
            [network.nodes[n].emitter_exponent for n in self._junction_names]  # type: ignore[union-attr]
        )
        self._fixed_elev_arr = np.array(
            [
                network.nodes[n].elevation if isinstance(network.nodes[n], Tank) else 0.0
                for n in self._fixed_names
            ]
        )
        self._fixed_is_tank = np.array(
            [isinstance(network.nodes[n], Tank) for n in self._fixed_names]
        )
        # 0 = pipe, 1 = pump, 2 = valve
        kind_code = {"pipe": 0, "pump": 1, "valve": 2}
        self._kind_codes = np.array([kind_code[r.kind] for r in records], dtype=np.int64)
        self._start_jidx = np.array(
            [jidx.get(r.start, -1) for r in records], dtype=np.int64
        )
        self._end_jidx = np.array([jidx.get(r.end, -1) for r in records], dtype=np.int64)
        self._start_fidx = np.array(
            [fidx.get(r.start, -1) for r in records], dtype=np.int64
        )
        self._end_fidx = np.array([fidx.get(r.end, -1) for r in records], dtype=np.int64)
        self._pipe_res = np.array([r.resistance for r in records])
        self._pipe_minor = np.array([r.minor if r.kind == "pipe" else 0.0 for r in records])
        self._pipe_len = np.array([r.length for r in records])
        self._pipe_diam = np.array([max(r.diameter, 1e-9) for r in records])
        self._pipe_rough = np.array([r.roughness_height for r in records])
        n = self._n_junctions
        if linear_solver == "dense":
            self._dense = n > 0
        elif linear_solver in ("sparse", "legacy"):
            self._dense = False
        else:
            self._dense = 0 < n <= DENSE_SOLVE_LIMIT
        self._dense_A = np.zeros((n, n)) if self._dense else None
        # Sparse Schur cores keyed by the PRV-active set (active PRVs
        # leave the normal link set, changing the sparsity pattern; all
        # other status flips only change values).
        self._schur_cache: dict[tuple[int, ...], CachedSchurSolver] = {}
        # Only check-valve pipes, pumps and valves can change operating
        # status; plain pipes (the bulk of the network) never do, so the
        # status-resolution pass skips them entirely.
        self._status_positions = [
            i
            for i, r in enumerate(records)
            if r.kind != "pipe" or r.check_valve
        ]
        # Per-solve O(links) Python loops are the scalability wall at
        # city scale (ten of milliseconds per solve at 10k junctions),
        # so everything that depends only on structure is templated here
        # and per-solve work touches only the handful of links that can
        # deviate: status-capable links, overrides, pumps, FCVs.
        self._link_index = {r.name: i for i, r in enumerate(records)}
        self._status_template = [r.status for r in records]
        self._speed_template = [r.speed for r in records]
        self._pump_positions = [i for i, r in enumerate(records) if r.kind == "pump"]
        self._fcv_positions = [
            i
            for i, r in enumerate(records)
            if r.kind == "valve" and r.valve_type is ValveType.FCV
        ]
        self._prv_positions = [
            i
            for i, r in enumerate(records)
            if r.kind == "valve" and r.valve_type is ValveType.PRV
        ]
        self._initially_nonopen = [
            i for i, r in enumerate(records) if r.status is not LinkStatus.OPEN
        ]
        self._all_links = np.arange(len(records), dtype=np.int64)
        self._initial_flow_template = np.array(
            [self._initial_flow(r, r.speed) for r in records]
        )
        #: Opt-in audit hook (see :class:`repro.verify.InvariantAuditor`):
        #: any object with ``observe(solver, solution, emitters=...)`` is
        #: called after every successful solve with the emitter arrays the
        #: solve actually used.  None (the default) costs nothing.
        self.audit = None

    # ------------------------------------------------------------------
    @property
    def junction_names(self) -> list[str]:
        """Junction names fixing the order of array-path demand/emitter
        vectors and of ``SteadyStateSolution`` junction arrays."""
        return list(self._junction_names)

    @property
    def fixed_names(self) -> list[str]:
        """Reservoir/tank names fixing the fixed-array order."""
        return list(self._fixed_names)

    @property
    def link_names(self) -> list[str]:
        """Link names fixing the order of ``SteadyStateSolution.link_flows``."""
        return list(self._link_names)

    @property
    def junction_index(self) -> dict[str, int]:
        """Name -> position in the junction-order arrays."""
        return dict(self._junction_index)

    # ------------------------------------------------------------------
    def _make_record(self, link) -> _LinkRecord:
        if isinstance(link, Pipe):
            # Under "DW" the pipe's roughness field is the absolute
            # roughness height in millimetres (EPANET's convention).
            return _LinkRecord(
                name=link.name,
                kind="pipe",
                start=link.start_node,
                end=link.end_node,
                resistance=hazen_williams_resistance(
                    link.length, link.diameter, link.roughness
                ),
                minor=link.minor_loss_resistance(),
                length=link.length,
                diameter=link.diameter,
                roughness_height=link.roughness * 1e-3,
                check_valve=link.check_valve,
                status=link.initial_status,
            )
        if isinstance(link, Pump):
            model = None
            if link.curve_name is not None:
                model = PumpCurveModel.from_curve(self.network.curve(link.curve_name))
            return _LinkRecord(
                name=link.name,
                kind="pump",
                start=link.start_node,
                end=link.end_node,
                pump_model=model,
                pump_power=link.power,
                speed=link.speed,
                status=link.initial_status,
            )
        if isinstance(link, Valve):
            status = link.initial_status
            if link.valve_type is ValveType.TCV and status is LinkStatus.ACTIVE:
                # A TCV regulating at its setting is just a loss coefficient.
                status = LinkStatus.OPEN
            return _LinkRecord(
                name=link.name,
                kind="valve",
                start=link.start_node,
                end=link.end_node,
                valve_type=link.valve_type,
                setting=link.setting,
                open_minor=link.loss_resistance(max(link.minor_loss, 0.1)),
                minor=link.loss_resistance(link.setting)
                if link.valve_type is ValveType.TCV
                else 0.0,
                status=status,
            )
        raise NetworkTopologyError(f"unsupported link type {type(link).__name__}")

    # ------------------------------------------------------------------
    def solve(
        self,
        demands: dict[str, float] | np.ndarray | None = None,
        fixed_heads: dict[str, float] | None = None,
        emitters: dict[str, tuple[float, float]] | tuple[np.ndarray, np.ndarray] | None = None,
        status_overrides: dict[str, LinkStatus] | None = None,
        pump_speeds: dict[str, float] | None = None,
        trials: int | None = None,
        accuracy: float | None = None,
        warm_start: SteadyStateSolution | None = None,
    ) -> SteadyStateSolution:
        """Solve one steady state.

        Args:
            demands: junction name -> demand (m^3/s), or a pre-indexed
                junction-order array (``junction_names`` order; the
                array fast path used by batched dataset generation).
                Defaults to each junction's base demand
                (pattern-unscaled).
            fixed_heads: overrides for reservoir/tank heads (m); defaults
                to reservoir base head / tank elevation + initial level.
            emitters: junction name -> (EC, beta) leak overrides, or a
                pre-indexed ``(ec, beta)`` pair of junction-order arrays.
                When None, junction emitter attributes on the network are
                used.
            status_overrides: link name -> status forced for this solve
                (controls and EPS tank lockouts use this).
            pump_speeds: pump name -> relative speed override.
            trials: maximum Newton iterations (default: network options).
            accuracy: relative flow-change tolerance (default: options).
            warm_start: a previous solution of this solver whose heads
                and flows seed the Newton iteration.  A leak is a small
                perturbation of the no-leak state, so warm-starting a
                leaky solve from the cached baseline of the same time
                slot cuts iterations sharply without changing the fixed
                point (same tolerances apply).

        Returns:
            A :class:`SteadyStateSolution`.

        Raises:
            ConvergenceError: if the Newton iteration does not converge.
        """
        options = self.network.options
        max_trials = trials if trials is not None else options.trials
        tol = accuracy if accuracy is not None else options.accuracy

        demand_vec = self._demand_vector(demands)
        head_fixed = self._fixed_head_map(fixed_heads)
        emitter_ec, emitter_beta = self._emitter_arrays(emitters)

        records = self._records
        for i in self._fcv_positions:
            records[i].minor = 0.0  # FCV throttling is re-derived per solve
        statuses = self._status_template.copy()
        #: Links whose status may deviate from the template this solve —
        #: the only ones the closed-mask scan needs to inspect.
        nonopen_candidates = set(self._initially_nonopen)
        nonopen_candidates.update(self._status_positions)
        if status_overrides:
            for name, status in status_overrides.items():
                index = self._link_index.get(name)
                if index is not None:
                    statuses[index] = status
                    nonopen_candidates.add(index)
        speeds = self._speed_template.copy()
        if pump_speeds:
            for i in self._pump_positions:
                if records[i].name in pump_speeds:
                    speeds[i] = pump_speeds[records[i].name]

        n = self._n_junctions
        if warm_start is not None:
            if (
                len(warm_start.junction_heads) != n
                or len(warm_start.link_flows) != len(records)
            ):
                raise NetworkTopologyError(
                    "warm_start solution does not match this network's shape"
                )
            heads = warm_start.junction_heads.copy()
            flows = warm_start.link_flows.copy()
        else:
            heads = np.maximum(
                float(np.mean(list(head_fixed.values()))) if head_fixed else 50.0,
                self._elevation_arr + 10.0,
            )
            flows = self._initial_flow_template.copy()
            for i in self._pump_positions:
                flows[i] = self._initial_flow(records[i], speeds[i])

        pdd = options.demand_model.upper() == "PDD"
        fixed_arr = np.array([head_fixed[name] for name in self._fixed_names])
        total_iterations = 0
        residual = math.inf
        converged = False
        for _pass in range(MAX_STATUS_PASSES):
            heads, flows, iters, residual, converged = self._newton(
                records,
                statuses,
                speeds,
                heads,
                flows,
                demand_vec,
                fixed_arr,
                emitter_ec,
                emitter_beta,
                max_trials,
                tol,
                nonopen_candidates,
                pdd=pdd,
            )
            total_iterations += iters
            changed = self._update_statuses(
                records, statuses, flows, heads, fixed_arr
            )
            if not changed:
                break
            # A status flip changes link conductances by orders of
            # magnitude, so cached factorizations stop being useful
            # preconditioners; drop them (patterns stay cached).
            for core in self._schur_cache.values():
                core.invalidate()

        if not converged:
            raise ConvergenceError(
                f"GGA failed to converge (residual {residual:.3e} m^3/s)",
                iterations=total_iterations,
                residual=residual,
            )
        solution = self._package(
            records,
            statuses,
            heads,
            flows,
            demand_vec,
            head_fixed,
            emitter_ec,
            emitter_beta,
            total_iterations,
            residual,
            converged,
        )
        if self.audit is not None:
            self.audit.observe(self, solution, emitters=(emitter_ec, emitter_beta))
        return solution

    # ------------------------------------------------------------------
    def _demand_vector(
        self, demands: dict[str, float] | np.ndarray | None
    ) -> np.ndarray:
        if isinstance(demands, np.ndarray):
            if demands.shape != (self._n_junctions,):
                raise NetworkTopologyError(
                    f"demand array has shape {demands.shape}, expected "
                    f"({self._n_junctions},) in junction_names order"
                )
            return demands.astype(float) * self.network.options.demand_multiplier
        vec = self._base_demand_arr.copy()
        if demands:
            for name, value in demands.items():
                index = self._junction_index.get(name)
                if index is None:
                    raise NetworkTopologyError(f"demand for unknown junction {name!r}")
                vec[index] = value
        return vec * self.network.options.demand_multiplier

    def _fixed_head_map(self, overrides: dict[str, float] | None) -> dict[str, float]:
        result: dict[str, float] = {}
        for name in self._fixed_names:
            node = self.network.nodes[name]
            if isinstance(node, Reservoir):
                result[name] = node.base_head
            else:
                assert isinstance(node, Tank)
                result[name] = node.elevation + node.init_level
        if overrides:
            for name, value in overrides.items():
                if name not in result:
                    raise NetworkTopologyError(
                        f"fixed head for non-fixed node {name!r}"
                    )
                result[name] = value
        return result

    def _emitter_arrays(
        self,
        emitters: dict[str, tuple[float, float]] | tuple[np.ndarray, np.ndarray] | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if isinstance(emitters, tuple):
            ec, beta = emitters
            ec = np.asarray(ec, dtype=float)
            beta = np.asarray(beta, dtype=float)
            if ec.shape != (self._n_junctions,) or beta.shape != (self._n_junctions,):
                raise NetworkTopologyError(
                    "emitter arrays must both have shape "
                    f"({self._n_junctions},) in junction_names order"
                )
            return ec.copy(), beta.copy()
        beta = self._emitter_beta_arr.copy()
        if emitters is None:
            ec = self._emitter_ec_arr.copy()
        else:
            ec = np.zeros(self._n_junctions)
            for name, (coefficient, exponent) in emitters.items():
                index = self._junction_index.get(name)
                if index is None:
                    raise NetworkTopologyError(f"emitter on unknown junction {name!r}")
                ec[index] = coefficient
                beta[index] = exponent
        return ec, beta

    @staticmethod
    def _initial_flow(record: _LinkRecord, speed: float) -> float:
        if record.kind == "pump":
            if record.pump_model is not None:
                return max(record.pump_model.max_flow * speed / 2.0, 1e-3)
            return 1e-2
        return 5e-3

    # ------------------------------------------------------------------
    def _link_coefficients(
        self, record: _LinkRecord, status: LinkStatus, speed: float, q: float
    ) -> tuple[float, float]:
        """Return (f, g): headloss and its derivative at flow q."""
        if status is LinkStatus.CLOSED:
            return R_CLOSED * q, R_CLOSED
        if record.kind == "pipe":
            if self._use_darcy_weisbach:
                return dw_headloss_and_gradient(
                    q,
                    record.length,
                    record.diameter,
                    record.roughness_height,
                    record.minor,
                )
            return hw_headloss_and_gradient(q, record.resistance, record.minor)
        if record.kind == "pump":
            return self._pump_coefficients(record, speed, q)
        assert record.kind == "valve"
        return self._valve_coefficients(record, status, q)

    @staticmethod
    def _pump_coefficients(
        record: _LinkRecord, speed: float, q: float
    ) -> tuple[float, float]:
        if speed <= 0.0:
            return R_CLOSED * q, R_CLOSED
        if record.pump_power is not None and record.pump_model is None:
            q_eff = max(q, 1e-3)
            gain = record.pump_power / (RHO_G * q_eff)
            grad = record.pump_power / (RHO_G * q_eff**2)
            return -gain, max(grad, 1e-6)
        model = record.pump_model
        assert model is not None
        q_eff = max(q, Q_PUMP_MIN)
        ratio = q_eff / speed
        gain = speed**2 * (model.shutoff_head - model.resistance * ratio**model.exponent)
        grad = (
            model.resistance
            * model.exponent
            * speed ** (2.0 - model.exponent)
            * q_eff ** (model.exponent - 1.0)
        )
        # Reverse flow through a pump is blocked with a stiff penalty.
        if q < 0.0:
            return -gain + R_CLOSED * q, R_CLOSED
        return -gain, max(grad, 1e-6)

    @staticmethod
    def _valve_coefficients(
        record: _LinkRecord, status: LinkStatus, q: float
    ) -> tuple[float, float]:
        if record.valve_type is ValveType.TCV:
            minor = record.minor if record.minor > 0 else record.open_minor
        else:
            minor = record.open_minor
        minor = max(minor, 1e-3)
        aq = abs(q)
        if aq < Q_LAMINAR:
            slope = 2.0 * minor * Q_LAMINAR
            return q * slope, slope
        return minor * q * aq, 2.0 * minor * aq

    # ------------------------------------------------------------------
    def _coefficient_arrays(
        self,
        records: list[_LinkRecord],
        statuses: list[LinkStatus],
        speeds: list[float],
        flows: np.ndarray,
        normal: np.ndarray,
        masks: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """(f, g) for every non-PRV-active link, vectorised where possible.

        Open pipes (the bulk of any distribution network) evaluate through
        the array headloss kernels; pumps, valves and closed links fall
        back to the scalar per-link path.  ``masks`` carries the
        ``(closed, pipe_open, other_positions)`` partition, which depends
        only on link statuses and so is computed once per status pass by
        :meth:`_newton`, not per iteration.
        """
        m = len(normal)
        f_vals = np.empty(m)
        g_vals = np.empty(m)
        closed, pipe_open, other_pos = masks
        q_n = flows[normal]
        if closed.any():
            f_vals[closed] = R_CLOSED * q_n[closed]
            g_vals[closed] = R_CLOSED
        if pipe_open.any():
            rows = normal[pipe_open]
            if self._use_darcy_weisbach:
                f, g = dw_headloss_and_gradient_array(
                    q_n[pipe_open],
                    self._pipe_len[rows],
                    self._pipe_diam[rows],
                    self._pipe_rough[rows],
                    self._pipe_minor[rows],
                )
            else:
                f, g = hw_headloss_and_gradient_array(
                    q_n[pipe_open], self._pipe_res[rows], self._pipe_minor[rows]
                )
            f_vals[pipe_open] = f
            g_vals[pipe_open] = g
        for pos in other_pos:
            i = int(normal[pos])
            f_vals[pos], g_vals[pos] = self._link_coefficients(
                records[i], statuses[i], speeds[i], flows[i]
            )
        return f_vals, g_vals

    # ------------------------------------------------------------------
    def _newton(
        self,
        records: list[_LinkRecord],
        statuses: list[LinkStatus],
        speeds: list[float],
        heads: np.ndarray,
        flows: np.ndarray,
        demand: np.ndarray,
        fixed_arr: np.ndarray,
        emitter_ec: np.ndarray,
        emitter_beta: np.ndarray,
        max_trials: int,
        tol: float,
        nonopen_candidates: set[int],
        pdd: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, int, float, bool]:
        n = self._n_junctions
        jidx = self._junction_index
        # Active PRVs pin their downstream junction's head; their flow is
        # carried as a lagged demand on the upstream node (EPANET's scheme).
        prv_active = [
            i for i in self._prv_positions if statuses[i] is LinkStatus.ACTIVE
        ]
        if prv_active:
            prv_set = set(prv_active)
            normal = np.array(
                [i for i in range(len(records)) if i not in prv_set],
                dtype=np.int64,
            )
        else:
            normal = self._all_links

        start_idx = self._start_jidx[normal]
        end_idx = self._end_jidx[normal]
        sf = self._start_fidx[normal]
        ef = self._end_fidx[normal]
        start_fixed = np.where(sf >= 0, fixed_arr[np.maximum(sf, 0)], 0.0)
        end_fixed = np.where(ef >= 0, fixed_arr[np.maximum(ef, 0)], 0.0)
        elevations = self._elevation_arr
        kind_n = self._kind_codes[normal]

        total_demand_scale = float(np.sum(np.abs(demand))) + 1e-6
        iterations = 0
        residual = math.inf
        converged = False
        prv_flow = {i: flows[i] for i in prv_active}

        s_mask = start_idx >= 0
        e_mask = end_idx >= 0
        both = s_mask & e_mask
        # Statuses are frozen for the duration of a Newton run (they only
        # change in the status-resolution pass between runs), so the
        # closed/open-pipe/other partition is loop-invariant.  Only links
        # in ``nonopen_candidates`` (initially non-open, overridden, or
        # status-capable) can be CLOSED, so the scan skips the bulk of
        # the network instead of walking every link.
        closed = np.zeros(len(normal), dtype=bool)
        closed_links = [
            i for i in nonopen_candidates if statuses[i] is LinkStatus.CLOSED
        ]
        if closed_links:
            # A CLOSED link is never PRV-active, so every closed link is
            # present in the (sorted) ``normal`` array.
            closed[np.searchsorted(normal, np.array(closed_links, dtype=np.int64))] = True
        pipe_open = ~closed & (kind_n == 0)
        other_pos = np.nonzero(~closed & (kind_n != 0))[0]
        masks = (closed, pipe_open, other_pos)
        use_dense = self._dense and self._dense_A is not None
        if use_dense:
            # Flat indices into the dense Schur complement; static across
            # iterations, so assembly is four scatter-adds per iteration.
            flat_ss = start_idx[s_mask] * (n + 1)
            flat_ee = end_idx[e_mask] * (n + 1)
            flat_se = start_idx[both] * n + end_idx[both]
            flat_es = end_idx[both] * n + start_idx[both]
            flat_diag = np.arange(n) * (n + 1)

        for iterations in range(1, max_trials + 1):
            f_vals, g_vals = self._coefficient_arrays(
                records, statuses, speeds, flows, normal, masks
            )
            g_vals = np.maximum(g_vals, 1e-10)
            inv_g = 1.0 / g_vals

            h_start = np.where(start_idx >= 0, heads[np.maximum(start_idx, 0)], start_fixed)
            h_end = np.where(end_idx >= 0, heads[np.maximum(end_idx, 0)], end_fixed)
            # Energy residual F1 = f(q) - (H_i - H_j)
            f1 = f_vals - (h_start - h_end)

            # Emitter outflow and derivative at current heads; the lane
            # kernels are shared with the batched engine so both paths
            # stay bit-identical by construction.
            pressure = heads - elevations
            em_flow, em_grad = emitter_flow_and_gradient(
                pressure, emitter_ec, emitter_beta
            )

            # Pressure-driven delivery (Wagner curve) when enabled.
            if pdd:
                options = self.network.options
                delivered, pdd_grad = pdd_delivery_and_gradient(
                    pressure,
                    demand,
                    options.minimum_pressure,
                    options.required_pressure,
                )
            else:
                delivered = demand
                pdd_grad = np.zeros(n)

            # Mass residual F2 = A21 q - delivered - emitter - prv_lagged.
            flows_n = flows[normal]
            f2 = -delivered - em_flow
            np.add.at(f2, start_idx[s_mask], -flows_n[s_mask])
            np.add.at(f2, end_idx[e_mask], flows_n[e_mask])
            for i in prv_active:
                rec = records[i]
                up = jidx.get(rec.start)
                if up is not None:
                    f2[up] -= prv_flow[i]
                down = jidx.get(rec.end)
                if down is not None:
                    f2[down] += prv_flow[i]

            residual = float(np.max(np.abs(f2))) if n else 0.0

            # Assemble Schur complement A = A21 diag(1/g) A12 + diag(em_grad).
            diag_extra = em_grad + pdd_grad
            rhs = f2 - self._a21_invg_f1(
                start_idx, end_idx, inv_g, f1, n
            )
            for i in prv_active:
                rec = records[i]
                down = jidx.get(rec.end)
                if down is not None:
                    setting_head = rec.setting + self._elevation[rec.end]
                    diag_extra[down] += K_PRV
                    rhs[down] += -K_PRV * (heads[down] - setting_head)

            if use_dense:
                # Small networks: fill a preallocated dense matrix through
                # static flat indices and use one LAPACK solve — an order
                # of magnitude cheaper than per-iteration sparse assembly.
                A = self._dense_A
                A[...] = 0.0
                flat = A.reshape(-1)
                np.add.at(flat, flat_ss, inv_g[s_mask])
                np.add.at(flat, flat_ee, inv_g[e_mask])
                np.add.at(flat, flat_se, -inv_g[both])
                np.add.at(flat, flat_es, -inv_g[both])
                flat[flat_diag] += diag_extra + 1e-12
                # The Schur complement is symmetric positive definite, so
                # Cholesky (dposv) solves it at roughly half the cost of
                # LU; fall back to LU if factorisation stalls numerically.
                _, dh, info = _dposv(A, rhs, lower=1)
                if info != 0:
                    try:
                        dh = np.linalg.solve(A, rhs)
                    except np.linalg.LinAlgError as exc:
                        raise ConvergenceError(
                            f"GGA linear solve failed: {exc}", iterations, residual
                        ) from exc
            else:
                try:
                    if self._linear_solver == "legacy":
                        dh = legacy_sparse_solve(
                            start_idx, end_idx, inv_g, diag_extra, rhs
                        )
                    else:
                        # The first iteration solves at the warm-start
                        # state, which recurs across scenario sweeps and
                        # EPS steps — let the core re-center its cached
                        # factorization there (``anchor``) instead of
                        # limping along on a drifted preconditioner.
                        dh = self._schur_core(
                            tuple(prv_active), start_idx, end_idx
                        ).solve(inv_g, diag_extra, rhs, anchor=iterations == 1)
                except SingularSchurError as exc:
                    raise ConvergenceError(
                        f"GGA linear solve failed: {exc}", iterations, residual
                    ) from exc
            if np.any(~np.isfinite(dh)):
                raise ConvergenceError(
                    "GGA linear solve produced non-finite heads",
                    iterations,
                    residual,
                )
            if pdd:
                # Under-relaxed heads stop the flat-region ping-pong while
                # leaving ordinary steps (a few metres) untouched.
                np.clip(dh, -50.0, 50.0, out=dh)

            heads = heads + dh
            dh_start = np.where(start_idx >= 0, dh[np.maximum(start_idx, 0)], 0.0)
            dh_end = np.where(end_idx >= 0, dh[np.maximum(end_idx, 0)], 0.0)
            # dq = -G^{-1} (F1 + A12 dH), with A12 dH = dh_end - dh_start.
            dq = -inv_g * (f1 + dh_end - dh_start)
            new_flows = flows.copy()
            new_flows[normal] = flows_n + dq
            # Recover active-PRV flows from downstream continuity.
            for i in prv_active:
                prv_flow[i] = self._prv_flow_from_continuity(
                    i, records, normal, new_flows, heads, demand, emitter_ec,
                    emitter_beta, elevations, jidx,
                )
                new_flows[i] = prv_flow[i]

            flow_change = float(np.sum(np.abs(new_flows - flows)))
            flow_scale = float(np.sum(np.abs(new_flows))) + 1e-9
            flows = new_flows
            if (
                flow_change / flow_scale < tol
                and residual < 1e-6 + 1e-4 * total_demand_scale
            ):
                converged = True
                break

        return heads, flows, iterations, residual, converged

    def _schur_core(
        self,
        prv_key: tuple[int, ...],
        start_idx: np.ndarray,
        end_idx: np.ndarray,
    ) -> CachedSchurSolver:
        """The cached sparse Schur core for one PRV-active set.

        The pattern build (CSC structure, RCM permutation, scatter map)
        happens once per key and is reused by every subsequent Newton
        iteration, warm start, and scenario solve on this solver.
        """
        core = self._schur_cache.get(prv_key)
        if core is None:
            pattern = SchurPattern(
                self._n_junctions,
                start_idx,
                end_idx,
                permutation=self.network.rcm_permutation(),
            )
            core = CachedSchurSolver(pattern)
            self._schur_cache[prv_key] = core
        return core

    @property
    def schur_stats(self) -> SchurStats:
        """Aggregated sparse-core counters across all cached patterns.

        Zeros when the solver has only used the dense or legacy path.
        """
        total = SchurStats()
        for core in self._schur_cache.values():
            stats = core.stats
            total.factorizations += stats.factorizations
            total.direct_solves += stats.direct_solves
            total.reuse_solves += stats.reuse_solves
            total.pcg_solves += stats.pcg_solves
            total.pcg_iterations += stats.pcg_iterations
            total.assemblies += stats.assemblies
        return total

    @staticmethod
    def _a21_invg_f1(
        start_idx: np.ndarray,
        end_idx: np.ndarray,
        inv_g: np.ndarray,
        f1: np.ndarray,
        n: int,
    ) -> np.ndarray:
        """Compute A21 diag(1/g) F1 (node-sized vector)."""
        contrib = inv_g * f1
        out = np.zeros(n)
        mask_s = start_idx >= 0
        mask_e = end_idx >= 0
        # A21[i, k] is -1 when link k starts at i and +1 when it ends at i.
        np.add.at(out, start_idx[mask_s], -contrib[mask_s])
        np.add.at(out, end_idx[mask_e], contrib[mask_e])
        return out

    def _prv_flow_from_continuity(
        self,
        prv_index: int,
        records: list[_LinkRecord],
        normal: list[int],
        flows: np.ndarray,
        heads: np.ndarray,
        demand: np.ndarray,
        emitter_ec: np.ndarray,
        emitter_beta: np.ndarray,
        elevations: np.ndarray,
        jidx: dict[str, int],
    ) -> float:
        """Flow through an active PRV = net outflow demanded downstream."""
        down_name = records[prv_index].end
        down = jidx.get(down_name)
        if down is None:
            return flows[prv_index]
        outflow = demand[down]
        pressure = heads[down] - elevations[down]
        if emitter_ec[down] > 0.0 and pressure > 0.0:
            outflow += emitter_ec[down] * pressure ** emitter_beta[down]
        for i in normal:
            rec = records[i]
            if rec.start == down_name:
                outflow += flows[i]
            elif rec.end == down_name:
                outflow -= flows[i]
        return outflow

    # ------------------------------------------------------------------
    def _update_statuses(
        self,
        records: list[_LinkRecord],
        statuses: list[LinkStatus],
        flows: np.ndarray,
        heads: np.ndarray,
        fixed_arr: np.ndarray,
    ) -> bool:
        """Apply check-valve / pump / valve status rules. True if changed."""
        if not self._status_positions:
            return False
        changed = False
        for i in self._status_positions:
            rec = records[i]
            status = statuses[i]
            si = self._start_jidx[i]
            h1 = heads[si] if si >= 0 else fixed_arr[self._start_fidx[i]]
            ei = self._end_jidx[i]
            h2 = heads[ei] if ei >= 0 else fixed_arr[self._end_fidx[i]]
            new_status = status
            if rec.kind == "pipe" and rec.check_valve:
                if status is LinkStatus.OPEN and flows[i] < -1e-8:
                    new_status = LinkStatus.CLOSED
                elif status is LinkStatus.CLOSED and h1 - h2 > 1e-6:
                    new_status = LinkStatus.OPEN
            elif rec.kind == "pump":
                if status is LinkStatus.OPEN and flows[i] < -1e-8:
                    new_status = LinkStatus.CLOSED
                elif status is LinkStatus.CLOSED:
                    shutoff = 1e9
                    if rec.pump_model is not None:
                        shutoff = rec.pump_model.shutoff_head * rec.speed**2
                    if h2 - h1 < shutoff:
                        new_status = LinkStatus.OPEN
            elif rec.kind == "valve" and rec.valve_type is ValveType.PRV:
                setting_head = rec.setting + self._elevation[rec.end]
                if status is LinkStatus.ACTIVE:
                    if flows[i] < -1e-8:
                        new_status = LinkStatus.CLOSED
                    elif h1 < setting_head - 1e-6:
                        new_status = LinkStatus.OPEN
                elif status is LinkStatus.OPEN:
                    if h2 > setting_head + 1e-6:
                        new_status = LinkStatus.ACTIVE
                elif status is LinkStatus.CLOSED:
                    if h1 > setting_head + 1e-6 and h1 > h2:
                        new_status = LinkStatus.ACTIVE
            elif rec.kind == "valve" and rec.valve_type is ValveType.FCV:
                if status is not LinkStatus.CLOSED and flows[i] > rec.setting > 0.0:
                    # Throttle by switching to an equivalent TCV-like loss.
                    needed = (h1 - h2) / max(rec.setting, 1e-9) ** 2
                    if needed > 0:
                        rec.minor = needed
                        changed = True
            if new_status is not status:
                statuses[i] = new_status
                changed = True
        return changed

    # ------------------------------------------------------------------
    def _package(
        self,
        records: list[_LinkRecord],
        statuses: list[LinkStatus],
        heads: np.ndarray,
        flows: np.ndarray,
        demand: np.ndarray,
        head_fixed: dict[str, float],
        emitter_ec: np.ndarray,
        emitter_beta: np.ndarray,
        iterations: int,
        residual: float,
        converged: bool,
    ) -> SteadyStateSolution:
        options = self.network.options
        pdd = options.demand_model.upper() == "PDD"
        span = max(options.required_pressure - options.minimum_pressure, 1e-6)
        pressures = heads - self._elevation_arr
        if pdd:
            frac = np.clip((pressures - options.minimum_pressure) / span, 0.0, 1.0)
            factor = np.where(
                frac < 0.01,  # linearised toe, matching _newton
                frac / math.sqrt(0.01),
                np.sqrt(np.maximum(frac, 0.01)),
            )
            delivered = demand * factor
        else:
            delivered = demand.copy()
        leaking = (emitter_ec > 0.0) & (pressures > 0.0)
        leaks = np.zeros(self._n_junctions)
        if leaking.any():
            leaks[leaking] = (
                emitter_ec[leaking] * pressures[leaking] ** emitter_beta[leaking]
            )
        fixed_heads = np.array([head_fixed[name] for name in self._fixed_names])
        fixed_pressures = np.where(
            self._fixed_is_tank, fixed_heads - self._fixed_elev_arr, 0.0
        )
        return SteadyStateSolution(
            junction_names=self._junction_names,
            fixed_names=self._fixed_names,
            link_names=self._link_names,
            junction_heads=heads.copy(),
            junction_pressures=pressures,
            junction_demands=delivered,
            junction_leaks=leaks,
            fixed_heads=fixed_heads,
            fixed_pressures=fixed_pressures,
            link_flows=flows.copy(),
            link_statuses=list(statuses),
            iterations=iterations,
            residual=residual,
            converged=converged,
        )
