"""Simple (EPANET-style) operational controls.

Controls change a link's status or setting when a condition on simulation
time or on a node's level/pressure becomes true.  The extended-period
simulator evaluates all controls before each hydraulic step.

Supported forms (mirroring EPANET's ``[CONTROLS]`` section):

* ``LINK x OPEN/CLOSED IF NODE y ABOVE/BELOW value``
* ``LINK x OPEN/CLOSED AT TIME hours``
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .components import LinkStatus, Tank
from .network import WaterNetwork


class ControlCondition(enum.Enum):
    """The trigger type of a simple control."""

    NODE_ABOVE = "ABOVE"
    NODE_BELOW = "BELOW"
    AT_TIME = "TIME"


@dataclass(frozen=True)
class SimpleControl:
    """One EPANET-style simple control.

    Attributes:
        link_name: link whose status changes.
        status: status applied when the condition holds.
        condition: trigger type.
        node_name: node observed (level for tanks, pressure for junctions);
            unused for time triggers.
        threshold: level/pressure threshold (m) or trigger time (s).
    """

    link_name: str
    status: LinkStatus
    condition: ControlCondition
    threshold: float
    node_name: str | None = None

    def is_triggered(
        self,
        time_seconds: float,
        node_values: dict[str, float],
    ) -> bool:
        """Whether the condition currently holds.

        Args:
            time_seconds: current simulation time.
            node_values: tank level / junction pressure per node name.
        """
        if self.condition is ControlCondition.AT_TIME:
            return time_seconds >= self.threshold
        if self.node_name is None:
            return False
        value = node_values.get(self.node_name)
        if value is None:
            return False
        if self.condition is ControlCondition.NODE_ABOVE:
            return value > self.threshold
        return value < self.threshold


def evaluate_controls(
    controls: list[SimpleControl],
    network: WaterNetwork,
    time_seconds: float,
    tank_levels: dict[str, float],
    pressures: dict[str, float] | None = None,
) -> dict[str, LinkStatus]:
    """Compute link status overrides implied by the triggered controls.

    Later controls win over earlier ones on the same link, matching
    EPANET's file-order semantics.

    Args:
        controls: control list in priority order.
        network: the network (used to classify observed nodes).
        time_seconds: current simulation time.
        tank_levels: current tank level (m) per tank name.
        pressures: most recent junction pressures (m), if available.

    Returns:
        link name -> forced status for this hydraulic step.
    """
    node_values: dict[str, float] = {}
    node_values.update(tank_levels)
    if pressures:
        for name, value in pressures.items():
            if not isinstance(network.nodes.get(name), Tank):
                node_values.setdefault(name, value)
    overrides: dict[str, LinkStatus] = {}
    for control in controls:
        if control.is_triggered(time_seconds, node_values):
            overrides[control.link_name] = control.status
    return overrides
