"""EPANET INP file reader/writer.

Supports the subset of the INP format the reproduction needs:
``[TITLE] [JUNCTIONS] [RESERVOIRS] [TANKS] [PIPES] [PUMPS] [VALVES]
[EMITTERS] [DEMANDS] [PATTERNS] [CURVES] [STATUS] [CONTROLS] [COORDINATES]
[TIMES] [OPTIONS]``.  Quantities are converted to SI on read and back to
the file's flow units on write, so a round-trip preserves values.
"""

from __future__ import annotations

import io
from pathlib import Path

from .components import LinkStatus, Valve, ValveType
from .controls import ControlCondition, SimpleControl
from .exceptions import InpSyntaxError
from .network import WaterNetwork
from .units import UnitSystem, format_clock_time, parse_clock_time

_SECTIONS = {
    "TITLE",
    "JUNCTIONS",
    "RESERVOIRS",
    "TANKS",
    "PIPES",
    "PUMPS",
    "VALVES",
    "EMITTERS",
    "DEMANDS",
    "PATTERNS",
    "CURVES",
    "STATUS",
    "CONTROLS",
    "COORDINATES",
    "TIMES",
    "OPTIONS",
    "REPORT",
    "ENERGY",
    "QUALITY",
    "REACTIONS",
    "SOURCES",
    "MIXING",
    "VERTICES",
    "LABELS",
    "BACKDROP",
    "TAGS",
    "RULES",
    "END",
}


#: Sentinel section name for data rows inside a tolerated unknown section.
_UNKNOWN = "__UNKNOWN__"


def _tokenize(
    path_or_text: str | Path, strict: bool = False
) -> list[tuple[int, str, list[str]]]:
    """Yield (line_number, section, tokens) for every data line.

    Real-world INP files routinely carry vendor sections this reader has
    no use for, mixed-case headers (``[Pipes]``), blank sections, and
    inline ``;`` comments.  All of those are tolerated: headers are
    upper-cased, comments stripped, and data inside an unrecognised
    section is skipped (kept under the ``_UNKNOWN`` sentinel so callers
    never see it).  Pass ``strict=True`` to restore the old behaviour of
    rejecting any section outside the canonical EPANET list.
    """
    if isinstance(path_or_text, Path) or "\n" not in str(path_or_text):
        text = Path(path_or_text).read_text()
    else:
        text = str(path_or_text)
    rows: list[tuple[int, str, list[str]]] = []
    section = ""
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("["):
            name = line[1:].split("]", 1)[0].strip().upper()
            if name not in _SECTIONS:
                if strict:
                    raise InpSyntaxError(f"unknown section [{name}]", lineno)
                section = _UNKNOWN
                continue
            section = name
            continue
        if not section:
            raise InpSyntaxError("data before any section header", lineno)
        if section == _UNKNOWN:
            continue
        rows.append((lineno, section, line.split()))
    return rows


def _f(token: str, lineno: int, what: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise InpSyntaxError(f"expected a number for {what}, got {token!r}", lineno) from None


def read_rules(path_or_text: str | Path) -> list:
    """Parse the ``[RULES]`` section into :class:`~repro.hydraulics.Rule`
    objects (rule-based controls).

    ``read_inp`` ignores the section so callers that only need hydraulics
    pay nothing; pass the result to
    :class:`~repro.hydraulics.ExtendedPeriodSimulator`'s ``rules``.

    Raises:
        InpSyntaxError: when a rule block cannot be parsed.
    """
    from .exceptions import SimulationError
    from .rules import parse_rule

    rows = _tokenize(path_or_text)
    blocks: list[list[str]] = []
    for lineno, section, tokens in rows:
        if section != "RULES":
            continue
        line = " ".join(tokens)
        if tokens and tokens[0].upper() == "RULE":
            blocks.append([line])
        elif blocks:
            blocks[-1].append(line)
        else:
            raise InpSyntaxError("rule line before any RULE header", lineno)
    rules = []
    for block in blocks:
        try:
            rules.append(parse_rule("\n".join(block)))
        except SimulationError as exc:
            raise InpSyntaxError(f"bad rule block: {exc}") from exc
    return rules


def read_inp(
    path_or_text: str | Path,
    name: str | None = None,
    strict: bool = False,
) -> tuple[WaterNetwork, list[SimpleControl]]:
    """Parse an INP file (or INP text) into a network plus its controls.

    The ``[RULES]`` section is accepted but not returned here — use
    :func:`read_rules` on the same input to get rule-based controls.

    Args:
        path_or_text: path to a ``.inp`` file, or the raw INP text itself
            (detected by the presence of newlines).
        name: network name; defaults to the file stem or ``"inp"``.
        strict: reject sections outside the canonical EPANET list
            instead of skipping them (the tolerant default handles
            vendor extensions found in real-world files).

    Returns:
        (network, simple controls).

    Raises:
        InpSyntaxError: on malformed input.
    """
    rows = _tokenize(path_or_text, strict=strict)
    flow_unit = "GPM"
    for lineno, section, tokens in rows:
        if section == "OPTIONS" and tokens and tokens[0].upper() == "UNITS" and len(tokens) > 1:
            flow_unit = tokens[1].upper()
    units = UnitSystem.from_flow_unit(flow_unit)

    if name is None:
        name = Path(str(path_or_text)).stem if "\n" not in str(path_or_text) else "inp"
    network = WaterNetwork(name)
    controls: list[SimpleControl] = []
    pending_links: list[tuple[int, str, list[str]]] = []
    pending_status: list[tuple[int, list[str]]] = []
    pending_demands: list[tuple[int, list[str]]] = []
    pending_emitters: list[tuple[int, list[str]]] = []
    pattern_data: dict[str, list[float]] = {}
    curve_data: dict[str, list[tuple[float, float]]] = {}
    coordinates: dict[str, tuple[float, float]] = {}
    junction_rows: list[tuple[int, list[str]]] = []
    reservoir_rows: list[tuple[int, list[str]]] = []
    tank_rows: list[tuple[int, list[str]]] = []

    for lineno, section, tokens in rows:
        if section == "JUNCTIONS":
            junction_rows.append((lineno, tokens))
        elif section == "RESERVOIRS":
            reservoir_rows.append((lineno, tokens))
        elif section == "TANKS":
            tank_rows.append((lineno, tokens))
        elif section in {"PIPES", "PUMPS", "VALVES"}:
            pending_links.append((lineno, section, tokens))
        elif section == "PATTERNS":
            if len(tokens) < 2:
                raise InpSyntaxError("pattern row needs id + multipliers", lineno)
            pattern_data.setdefault(tokens[0], []).extend(
                _f(t, lineno, "pattern multiplier") for t in tokens[1:]
            )
        elif section == "CURVES":
            if len(tokens) < 3:
                raise InpSyntaxError("curve row needs id x y", lineno)
            curve_data.setdefault(tokens[0], []).append(
                (
                    _f(tokens[1], lineno, "curve x") * units.flow_to_si,
                    _f(tokens[2], lineno, "curve y") * units.length_to_si,
                )
            )
        elif section == "COORDINATES":
            if len(tokens) < 3:
                raise InpSyntaxError("coordinate row needs node x y", lineno)
            coordinates[tokens[0]] = (
                _f(tokens[1], lineno, "x"),
                _f(tokens[2], lineno, "y"),
            )
        elif section == "STATUS":
            pending_status.append((lineno, tokens))
        elif section == "DEMANDS":
            pending_demands.append((lineno, tokens))
        elif section == "EMITTERS":
            pending_emitters.append((lineno, tokens))
        elif section == "CONTROLS":
            control = _parse_control(tokens, lineno)
            if control is not None:
                controls.append(control)
        elif section == "TIMES":
            _apply_time_option(network, tokens, lineno)
        elif section == "OPTIONS":
            _apply_option(network, tokens)

    for pname, multipliers in pattern_data.items():
        network.add_pattern(pname, multipliers)
    for cname, points in curve_data.items():
        network.add_curve(cname, points)

    for lineno, tokens in junction_rows:
        if len(tokens) < 2:
            raise InpSyntaxError("junction row needs id + elevation", lineno)
        elevation = _f(tokens[1], lineno, "elevation") * units.length_to_si
        demand = (
            _f(tokens[2], lineno, "demand") * units.flow_to_si if len(tokens) > 2 else 0.0
        )
        pattern = tokens[3] if len(tokens) > 3 else None
        network.add_junction(
            tokens[0],
            elevation=elevation,
            base_demand=demand,
            demand_pattern=pattern,
            coordinates=coordinates.get(tokens[0], (0.0, 0.0)),
        )
    for lineno, tokens in reservoir_rows:
        if len(tokens) < 2:
            raise InpSyntaxError("reservoir row needs id + head", lineno)
        network.add_reservoir(
            tokens[0],
            base_head=_f(tokens[1], lineno, "head") * units.length_to_si,
            head_pattern=tokens[2] if len(tokens) > 2 else None,
            coordinates=coordinates.get(tokens[0], (0.0, 0.0)),
        )
    for lineno, tokens in tank_rows:
        if len(tokens) < 6:
            raise InpSyntaxError(
                "tank row needs id elev initlvl minlvl maxlvl diameter", lineno
            )
        network.add_tank(
            tokens[0],
            elevation=_f(tokens[1], lineno, "elevation") * units.length_to_si,
            init_level=_f(tokens[2], lineno, "init level") * units.length_to_si,
            min_level=_f(tokens[3], lineno, "min level") * units.length_to_si,
            max_level=_f(tokens[4], lineno, "max level") * units.length_to_si,
            diameter=_f(tokens[5], lineno, "diameter") * units.length_to_si,
            coordinates=coordinates.get(tokens[0], (0.0, 0.0)),
        )

    for lineno, section, tokens in pending_links:
        if section == "PIPES":
            if len(tokens) < 6:
                raise InpSyntaxError(
                    "pipe row needs id n1 n2 length diameter roughness", lineno
                )
            status = LinkStatus.OPEN
            check_valve = False
            if len(tokens) > 7:
                flag = tokens[7].upper()
                if flag == "CV":
                    check_valve = True
                elif flag == "CLOSED":
                    status = LinkStatus.CLOSED
            network.add_pipe(
                tokens[0],
                tokens[1],
                tokens[2],
                length=_f(tokens[3], lineno, "length") * units.length_to_si,
                diameter=_f(tokens[4], lineno, "diameter") * units.diameter_to_si,
                roughness=_f(tokens[5], lineno, "roughness"),
                minor_loss=_f(tokens[6], lineno, "minor loss") if len(tokens) > 6 else 0.0,
                status=status,
                check_valve=check_valve,
            )
        elif section == "PUMPS":
            if len(tokens) < 4:
                raise InpSyntaxError("pump row needs id n1 n2 properties", lineno)
            curve_name = None
            power = None
            speed = 1.0
            props = tokens[3:]
            index = 0
            while index < len(props):
                keyword = props[index].upper()
                if keyword == "HEAD" and index + 1 < len(props):
                    curve_name = props[index + 1]
                    index += 2
                elif keyword == "POWER" and index + 1 < len(props):
                    # EPANET power is horsepower (US) or kW (SI).
                    raw = _f(props[index + 1], lineno, "pump power")
                    power = raw * 745.7 if units.flow_unit in {"CFS", "GPM", "MGD", "IMGD", "AFD"} else raw * 1000.0
                    index += 2
                elif keyword == "SPEED" and index + 1 < len(props):
                    speed = _f(props[index + 1], lineno, "pump speed")
                    index += 2
                else:
                    raise InpSyntaxError(f"unknown pump keyword {props[index]!r}", lineno)
            network.add_pump(
                tokens[0], tokens[1], tokens[2],
                curve_name=curve_name, speed=speed, power=power,
            )
        else:  # VALVES
            if len(tokens) < 6:
                raise InpSyntaxError(
                    "valve row needs id n1 n2 diameter type setting", lineno
                )
            vtype = ValveType(tokens[4].upper())
            setting = _f(tokens[5], lineno, "setting")
            if vtype is ValveType.PRV:
                setting *= units.pressure_to_si
            elif vtype is ValveType.FCV:
                setting *= units.flow_to_si
            network.add_valve(
                tokens[0],
                tokens[1],
                tokens[2],
                valve_type=vtype,
                diameter=_f(tokens[3], lineno, "diameter") * units.diameter_to_si,
                setting=setting,
                minor_loss=_f(tokens[6], lineno, "minor loss") if len(tokens) > 6 else 0.0,
            )

    for lineno, tokens in pending_status:
        if len(tokens) < 2:
            raise InpSyntaxError("status row needs link + status", lineno)
        link = network.link(tokens[0])
        link.initial_status = LinkStatus(tokens[1].upper())
    for lineno, tokens in pending_demands:
        if len(tokens) < 2:
            raise InpSyntaxError("demand row needs junction + demand", lineno)
        junction = network.node(tokens[0])
        junction.base_demand = _f(tokens[1], lineno, "demand") * units.flow_to_si  # type: ignore[union-attr]
        if len(tokens) > 2:
            junction.demand_pattern = tokens[2]  # type: ignore[union-attr]
    for lineno, tokens in pending_emitters:
        if len(tokens) < 2:
            raise InpSyntaxError("emitter row needs junction + coefficient", lineno)
        # EPANET emitter coefficient is flow-units per sqrt(psi or m).
        coefficient = _f(tokens[1], lineno, "emitter coefficient")
        si_coefficient = coefficient * units.flow_to_si / units.pressure_to_si**0.5
        network.set_leak(tokens[0], si_coefficient)

    return network, controls


def _parse_control(tokens: list[str], lineno: int) -> SimpleControl | None:
    """Parse one ``[CONTROLS]`` line; returns None for unsupported forms."""
    upper = [t.upper() for t in tokens]
    if len(upper) < 5 or upper[0] != "LINK":
        raise InpSyntaxError("control must start with LINK <id> <status>", lineno)
    link_name = tokens[1]
    try:
        status = LinkStatus(upper[2])
    except ValueError:
        raise InpSyntaxError(f"unknown control status {tokens[2]!r}", lineno) from None
    if upper[3] == "IF" and len(upper) >= 8 and upper[4] == "NODE":
        condition = (
            ControlCondition.NODE_ABOVE if upper[6] == "ABOVE" else ControlCondition.NODE_BELOW
        )
        return SimpleControl(
            link_name=link_name,
            status=status,
            condition=condition,
            node_name=tokens[5],
            threshold=_f(tokens[7], lineno, "control threshold"),
        )
    if upper[3] == "AT" and len(upper) >= 6 and upper[4] == "TIME":
        return SimpleControl(
            link_name=link_name,
            status=status,
            condition=ControlCondition.AT_TIME,
            threshold=parse_clock_time(tokens[5]),
        )
    return None


def _apply_time_option(network: WaterNetwork, tokens: list[str], lineno: int) -> None:
    upper = [t.upper() for t in tokens]
    if upper[0] == "DURATION" and len(tokens) > 1:
        network.options.duration = parse_clock_time(tokens[1])
    elif upper[:2] == ["HYDRAULIC", "TIMESTEP"] and len(tokens) > 2:
        network.options.hydraulic_timestep = parse_clock_time(tokens[2])
    elif upper[:2] == ["PATTERN", "TIMESTEP"] and len(tokens) > 2:
        network.options.pattern_timestep = parse_clock_time(tokens[2])


def _apply_option(network: WaterNetwork, tokens: list[str]) -> None:
    upper = [t.upper() for t in tokens]
    if upper[0] == "TRIALS" and len(tokens) > 1:
        network.options.trials = int(float(tokens[1]))
    elif upper[0] == "ACCURACY" and len(tokens) > 1:
        network.options.accuracy = float(tokens[1])
    elif upper[:2] == ["DEMAND", "MULTIPLIER"] and len(tokens) > 2:
        network.options.demand_multiplier = float(tokens[2])
    elif upper[0] == "HEADLOSS" and len(tokens) > 1:
        network.options.headloss_model = tokens[1].upper().replace("-", "")[:2]


def write_inp(network: WaterNetwork, path: str | Path, controls: list[SimpleControl] | None = None) -> None:
    """Write the network as an SI (``CMS``) INP file.

    Emitter coefficients, demands, heads and lengths are written in SI so
    that :func:`read_inp` round-trips exactly.
    """
    Path(path).write_text(inp_text(network, controls))


def inp_text(network: WaterNetwork, controls: list[SimpleControl] | None = None) -> str:
    """Render the network as SI INP text — the exact bytes
    :func:`write_inp` writes, usable for content-addressed cache keys."""
    lines: list[str] = ["[TITLE]", network.name, ""]

    lines.append("[JUNCTIONS]")
    lines.append(";ID  Elevation  Demand  Pattern")
    for j in network.junctions():
        pattern = j.demand_pattern or ""
        lines.append(f"{j.name}  {j.elevation:.6g}  {j.base_demand:.10g}  {pattern}")
    lines.append("")

    lines.append("[RESERVOIRS]")
    for r in network.reservoirs():
        lines.append(f"{r.name}  {r.base_head:.6g}  {r.head_pattern or ''}")
    lines.append("")

    lines.append("[TANKS]")
    for t in network.tanks():
        lines.append(
            f"{t.name}  {t.elevation:.6g}  {t.init_level:.6g}  {t.min_level:.6g}"
            f"  {t.max_level:.6g}  {t.diameter:.6g}"
        )
    lines.append("")

    lines.append("[PIPES]")
    for p in network.pipes():
        flag = "CV" if p.check_valve else p.initial_status.value
        lines.append(
            f"{p.name}  {p.start_node}  {p.end_node}  {p.length:.6g}"
            f"  {p.diameter * 1000.0:.6g}  {p.roughness:.6g}  {p.minor_loss:.6g}  {flag}"
        )
    lines.append("")

    lines.append("[PUMPS]")
    for pump in network.pumps():
        props = []
        if pump.curve_name is not None:
            props.append(f"HEAD {pump.curve_name}")
        if pump.power is not None:
            props.append(f"POWER {pump.power / 1000.0:.6g}")
        if pump.speed != 1.0:
            props.append(f"SPEED {pump.speed:.6g}")
        lines.append(f"{pump.name}  {pump.start_node}  {pump.end_node}  {' '.join(props)}")
    lines.append("")

    lines.append("[VALVES]")
    for v in network.valves():
        lines.append(
            f"{v.name}  {v.start_node}  {v.end_node}  {v.diameter * 1000.0:.6g}"
            f"  {v.valve_type.value}  {v.setting:.6g}  {v.minor_loss:.6g}"
        )
    lines.append("")

    emitter_rows = [
        f"{j.name}  {j.emitter_coefficient:.10g}"
        for j in network.junctions()
        if j.emitter_coefficient > 0.0
    ]
    if emitter_rows:
        lines.append("[EMITTERS]")
        lines.extend(emitter_rows)
        lines.append("")

    if network.patterns:
        lines.append("[PATTERNS]")
        for pattern in network.patterns.values():
            for start in range(0, len(pattern.multipliers), 6):
                chunk = pattern.multipliers[start : start + 6]
                values = "  ".join(f"{m:.6g}" for m in chunk)
                lines.append(f"{pattern.name}  {values}")
        lines.append("")

    if network.curves:
        lines.append("[CURVES]")
        for curve in network.curves.values():
            for x, y in curve.points:
                lines.append(f"{curve.name}  {x:.10g}  {y:.10g}")
        lines.append("")

    if controls:
        lines.append("[CONTROLS]")
        for control in controls:
            if control.condition is ControlCondition.AT_TIME:
                lines.append(
                    f"LINK {control.link_name} {control.status.value} AT TIME "
                    f"{format_clock_time(control.threshold)}"
                )
            else:
                lines.append(
                    f"LINK {control.link_name} {control.status.value} IF NODE "
                    f"{control.node_name} {control.condition.value} {control.threshold:.6g}"
                )
        lines.append("")

    lines.append("[COORDINATES]")
    for node in network.nodes.values():
        x, y = node.coordinates
        lines.append(f"{node.name}  {x:.6g}  {y:.6g}")
    lines.append("")

    lines.append("[TIMES]")
    lines.append(f"DURATION  {format_clock_time(network.options.duration)}")
    lines.append(
        f"HYDRAULIC TIMESTEP  {format_clock_time(network.options.hydraulic_timestep)}"
    )
    lines.append(
        f"PATTERN TIMESTEP  {format_clock_time(network.options.pattern_timestep)}"
    )
    lines.append("")

    lines.append("[OPTIONS]")
    lines.append("UNITS  CMS")
    lines.append(f"HEADLOSS  {network.options.headloss_model}")
    lines.append(f"TRIALS  {network.options.trials}")
    lines.append(f"ACCURACY  {network.options.accuracy:.6g}")
    lines.append(f"DEMAND MULTIPLIER  {network.options.demand_multiplier:.6g}")
    lines.append("")
    lines.append("[END]")
    return "\n".join(lines) + "\n"
