"""Unit handling for the hydraulic simulator.

The simulator works internally in SI units:

* length / head / elevation / diameter: metres
* flow: cubic metres per second (CMS)
* pressure head: metres of water column
* time: seconds

EPANET INP files express flows in one of several flow units and, depending
on the flow unit, lengths in feet or metres and diameters in inches or
millimetres.  This module centralises those conversions so the parser and
writer agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exceptions import UnitsError

#: Metres per foot.
FT_TO_M = 0.3048
#: Metres per inch.
IN_TO_M = 0.0254
#: Cubic metres per US gallon.
GAL_TO_M3 = 3.785411784e-3
#: Cubic metres per cubic foot.
FT3_TO_M3 = 0.028316846592
#: Cubic metres per imperial gallon.
IMPGAL_TO_M3 = 4.54609e-3
#: Cubic metres per acre-foot.
ACREFT_TO_M3 = 1233.48183754752
#: Pressure conversion: metres of water per psi.
PSI_TO_M = 0.7030695796  # 1 psi == 2.30666... ft of water == 0.70307 m

#: Flow-unit name -> multiplier converting that unit to m^3/s.
FLOW_UNIT_TO_CMS = {
    "CFS": FT3_TO_M3,                 # cubic feet / second
    "GPM": GAL_TO_M3 / 60.0,          # US gallons / minute
    "MGD": 1e6 * GAL_TO_M3 / 86400.0,  # million US gallons / day
    "IMGD": 1e6 * IMPGAL_TO_M3 / 86400.0,
    "AFD": ACREFT_TO_M3 / 86400.0,    # acre-feet / day
    "LPS": 1e-3,                      # litres / second
    "LPM": 1e-3 / 60.0,               # litres / minute
    "MLD": 1e3 / 86400.0,             # megalitres / day
    "CMH": 1.0 / 3600.0,              # cubic metres / hour
    "CMD": 1.0 / 86400.0,             # cubic metres / day
    "CMS": 1.0,                       # cubic metres / second (native)
}

#: Flow units that imply US customary length units in INP files.
US_FLOW_UNITS = frozenset({"CFS", "GPM", "MGD", "IMGD", "AFD"})


@dataclass(frozen=True)
class UnitSystem:
    """Conversion factors between an INP file's units and SI.

    Attributes:
        flow_unit: the INP flow-unit keyword (e.g. ``"GPM"``).
        flow_to_si: multiply an INP flow by this to get m^3/s.
        length_to_si: multiply an INP length/elevation/head by this to get m.
        diameter_to_si: multiply an INP pipe diameter by this to get m.
        pressure_to_si: multiply an INP pressure by this to get m of water.
    """

    flow_unit: str
    flow_to_si: float
    length_to_si: float
    diameter_to_si: float
    pressure_to_si: float

    @classmethod
    def from_flow_unit(cls, flow_unit: str) -> "UnitSystem":
        """Build the unit system implied by an INP flow-unit keyword."""
        key = flow_unit.strip().upper()
        if key not in FLOW_UNIT_TO_CMS:
            raise UnitsError(f"unknown flow unit {flow_unit!r}")
        if key in US_FLOW_UNITS:
            return cls(
                flow_unit=key,
                flow_to_si=FLOW_UNIT_TO_CMS[key],
                length_to_si=FT_TO_M,
                diameter_to_si=IN_TO_M,
                pressure_to_si=PSI_TO_M,
            )
        return cls(
            flow_unit=key,
            flow_to_si=FLOW_UNIT_TO_CMS[key],
            length_to_si=1.0,
            diameter_to_si=1e-3,  # millimetres
            pressure_to_si=1.0,
        )

    def flow_from_si(self, cms: float) -> float:
        """Convert a flow in m^3/s back to this system's flow unit."""
        return cms / self.flow_to_si

    def length_from_si(self, metres: float) -> float:
        """Convert a length in metres back to this system's length unit."""
        return metres / self.length_to_si

    def diameter_from_si(self, metres: float) -> float:
        """Convert a diameter in metres back to this system's diameter unit."""
        return metres / self.diameter_to_si


#: The SI unit system used internally everywhere.
SI = UnitSystem.from_flow_unit("CMS")


def parse_clock_time(text: str) -> float:
    """Parse an EPANET time value into seconds.

    Accepts ``HH:MM``, ``HH:MM:SS``, plain decimal hours (``1.5``) and
    decimal hours with an AM/PM suffix.

    Raises:
        UnitsError: if the text is not a recognisable time.
    """
    token = text.strip().upper()
    meridian = None
    for suffix in ("AM", "PM"):
        if token.endswith(suffix):
            meridian = suffix
            token = token[: -len(suffix)].strip()
            break
    try:
        if ":" in token:
            parts = [float(p) for p in token.split(":")]
            while len(parts) < 3:
                parts.append(0.0)
            hours, minutes, seconds = parts[:3]
            total = hours * 3600.0 + minutes * 60.0 + seconds
        else:
            total = float(token) * 3600.0
    except ValueError as exc:
        raise UnitsError(f"cannot parse time {text!r}") from exc
    if meridian == "PM" and total < 12 * 3600.0:
        total += 12 * 3600.0
    if meridian == "AM" and total >= 12 * 3600.0:
        total -= 12 * 3600.0
    return total


def format_clock_time(seconds: float) -> str:
    """Format a duration in seconds as ``HH:MM:SS`` (hours may exceed 24)."""
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours:d}:{minutes:02d}:{secs:02d}"
