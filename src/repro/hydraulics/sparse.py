"""Reusable sparse Schur solver core for city-scale networks.

Beyond the dense limit the GGA used to rebuild a COO Schur complement
and call :func:`scipy.sparse.linalg.spsolve` from scratch on every
Newton iteration — paying triplet sorting, symbolic analysis and
fill-in ordering costs that are invariant across iterations, warm
starts, and whole scenario datasets.  This module factors all of that
invariant work out:

* :class:`SchurPattern` is built once per (network topology,
  PRV-active set).  It precomputes the CSC sparsity structure of the
  Schur complement ``A21 diag(1/g) A12 + diag(extra)`` and a scatter
  map from per-link conductance arrays straight into the CSC ``data``
  buffer — the sparse analogue of the dense path's static
  ``flat_ss/flat_ee/flat_se`` scatter indices.  Assembly is then one
  gather + one :func:`numpy.bincount` per iteration, no COO sorting.
  A fill-reducing reverse Cuthill–McKee permutation (cached on the
  :class:`~repro.hydraulics.network.WaterNetwork`) is folded into the
  scatter map, so the assembled matrix is already banded and no
  per-iteration permutation cost exists.
* :class:`CachedSchurSolver` owns the numeric side: it factorizes the
  assembled matrix with SuperLU (``MMD_AT_PLUS_A`` column ordering +
  symmetric mode — the right settings for this SPD matrix), then
  *reuses* that factorization across subsequent Newton iterations and
  across whole warm-started solves as a preconditioner for conjugate
  gradients.  Only when the conductances have drifted far enough that
  PCG stops converging quickly does it pay for a fresh factorization.
  When scikit-sparse is importable its CHOLMOD Cholesky is used for
  the direct factorization instead (pure-scipy SuperLU fallback
  otherwise); neither is required.

The linear systems are still solved to near machine precision
(``PCG_RTOL``), so the Newton trajectory matches the dense path to
well below solver accuracy — the ``sparse_vs_dense`` differential
oracle in :mod:`repro.verify` holds both paths to ≤ 1e-8 agreement.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .exceptions import ConvergenceError

try:  # pragma: no cover - exercised only where scikit-sparse is installed
    from sksparse.cholmod import cholesky as _cholmod_cholesky
except ImportError:  # the container image ships pure scipy
    _cholmod_cholesky = None

#: Relative residual at which a preconditioned-CG solve is accepted.
#: Newton tolerates inexact steps (later iterations correct them), and
#: the final step of a converged run is millimetre-scale, so 1e-9
#: relative leaves the converged heads within ~1e-11 m of the
#: exact-solve trajectory — far inside the 1e-8 ``sparse_vs_dense``
#: oracle tolerance — while saving several CG iterations per solve.
PCG_RTOL = 1e-9
#: PCG iteration budget before falling back to a fresh factorization.
#: One PCG iteration is two triangular solves + one matvec — roughly
#: 1/30th of a refactorization at 10k junctions — so a generous budget
#: keeps the cached factorization alive across whole scenario sweeps.
PCG_MAX_ITERS = 60
#: Relative drift of the link/diagonal values from the factorized ones
#: beyond which PCG is not even attempted mid-Newton.  Measured on the
#: 10k-junction synthetic city, PCG needs ~15-25 iterations at a few
#: percent drift (clearly cheaper than a refactorization) but ~35-60
#: at 5-30% drift — about the price of refactorizing, with none of the
#: downstream reuse — so past this point the solver goes straight to a
#: fresh factorization.
PCG_DRIFT_LIMIT = 0.05
#: Stricter PCG gate for *anchor* solves (the first Newton iteration of
#: a warm-started solve).  Warm-start states recur — every scenario in a
#: localization sweep warm-starts from the same baseline, every EPS step
#: from the previous step — so when the factorization has drifted more
#: than this from one, re-centering it there (one refactorization)
#: converts all future visits into near-free direct triangular solves,
#: which beats limping along on a stale preconditioner forever.
ANCHOR_DRIFT_LIMIT = 0.02
#: Drift below which the cached factorization is applied directly (two
#: triangular solves, no assembly, no CG).  A leak scenario's first
#: warm-started Newton iteration differs from the factorized baseline
#: only by one emitter-gradient diagonal term (the leak itself enters
#: through the right-hand side), so this fires constantly in scenario
#: sweeps; the introduced step error is ~drift * |dh|, orders of
#: magnitude below solver accuracy.
TRISOLVE_DRIFT_LIMIT = 1e-6
#: When the link conductances match the factorized state and at most
#: this many *diagonal* entries moved (a leak scenario's emitter
#: gradients touch one junction per leak), the matrix is a rank-k
#: diagonal perturbation of the factorized one.  The factor-
#: preconditioned system then has only ~k non-unit eigenvalues, so CG
#: converges in ~k+1 iterations regardless of how *large* the
#: perturbation is — the drift-magnitude gates are bypassed entirely.
LOW_RANK_DIAG_LIMIT = 32
#: A diagonal entry counts as *unchanged* from the anchor state when it
#: moved by less than this fraction of the matrix scale — numerical
#: noise, not a physical change.  Anchor trisolves require every entry
#: unchanged at this level; anything looser would smuggle a stale
#: emitter gradient through a full-size first Newton step.
DIAG_MATCH_RTOL = 1e-12
#: Tiny diagonal regulariser keeping the Schur complement positive
#: definite when a junction momentarily has no pressure-dependent term.
DIAG_EPS = 1e-12


class SingularSchurError(ConvergenceError):
    """The Schur complement factorization was singular (or produced
    non-finite results) — a :class:`ConvergenceError` subclass so
    callers handle dense and sparse failures through one contract."""

    def __init__(
        self, message: str, iterations: int = 0, residual: float = math.inf
    ):
        super().__init__(message, iterations, residual)


@dataclass
class SchurStats:
    """Counters describing how the cached core earned its keep.

    Attributes:
        factorizations: direct factorizations paid for.
        direct_solves: solves answered straight from a fresh factor.
        reuse_solves: solves answered by applying the cached factor
            directly (drift below :data:`TRISOLVE_DRIFT_LIMIT`).
        pcg_solves: solves answered by preconditioned CG reuse.
        pcg_iterations: total CG iterations across all reused solves.
        assemblies: matrix assemblies (reuse solves skip assembly).
    """

    factorizations: int = 0
    direct_solves: int = 0
    reuse_solves: int = 0
    pcg_solves: int = 0
    pcg_iterations: int = 0
    assemblies: int = 0


class SchurPattern:
    """Precomputed sparsity structure + scatter map for the GGA Schur
    complement of one (topology, PRV-active set).

    The Schur complement couples junctions ``i`` and ``j`` whenever a
    non-PRV-active link joins them; links touching a fixed-head node
    contribute only to their junction's diagonal.  None of that depends
    on flows, demands, or emitters, so the CSC ``indptr``/``indices``
    arrays, the fill-reducing permutation, and the scatter positions
    from link conductances into ``data`` are all computed once here and
    reused for every assembly.
    """

    def __init__(
        self,
        n: int,
        start_idx: np.ndarray,
        end_idx: np.ndarray,
        permutation: np.ndarray | None = None,
    ):
        """Build the pattern.

        Args:
            n: junction count (matrix dimension).
            start_idx: per-link start-junction index (< 0 for fixed nodes),
                normal (non-PRV-active) links only.
            end_idx: per-link end-junction index (< 0 for fixed nodes).
            permutation: optional fill-reducing junction permutation
                (``perm[k]`` = original index placed at row ``k``);
                identity when omitted.  Folded into the scatter map so
                assembly emits the permuted matrix directly.
        """
        self.n = int(n)
        if permutation is None:
            permutation = np.arange(self.n, dtype=np.int64)
        self.perm = np.asarray(permutation, dtype=np.int64)
        #: inverse permutation: original junction -> permuted row.
        self.iperm = np.empty_like(self.perm)
        self.iperm[self.perm] = np.arange(self.n, dtype=np.int64)

        s_mask = start_idx >= 0
        e_mask = end_idx >= 0
        both = s_mask & e_mask
        # Gather positions into the per-link inv_g array, and the sign of
        # each contribution: +inv_g on the two diagonals, -inv_g on the
        # two off-diagonals of every junction-junction link.
        g_ss = np.nonzero(s_mask)[0]
        g_ee = np.nonzero(e_mask)[0]
        g_ij = np.nonzero(both)[0]
        self._gather = np.concatenate([g_ss, g_ee, g_ij, g_ij])
        self._sign = np.concatenate(
            [
                np.ones(len(g_ss) + len(g_ee)),
                -np.ones(2 * len(g_ij)),
            ]
        )
        p_start = self.iperm[np.maximum(start_idx, 0)]
        p_end = self.iperm[np.maximum(end_idx, 0)]
        rows = np.concatenate(
            [p_start[s_mask], p_end[e_mask], p_start[both], p_end[both]]
        )
        cols = np.concatenate(
            [p_start[s_mask], p_end[e_mask], p_end[both], p_start[both]]
        )

        structure = sp.csc_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(self.n, self.n)
        )
        structure.sum_duplicates()
        self.indptr = structure.indptr.copy()
        self.indices = structure.indices.copy()
        self.nnz = int(self.indices.shape[0])

        # Scatter map: CSC stores entries column-major with rows sorted
        # inside each column, so the flattened (col * n + row) keys are
        # globally sorted and every triplet's slot is one searchsorted.
        csc_cols = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
        )
        sorted_keys = csc_cols * self.n + self.indices
        self._scatter = np.searchsorted(
            sorted_keys, cols.astype(np.int64) * self.n + rows
        )
        diag = np.arange(self.n, dtype=np.int64)
        self._diag_scatter = np.searchsorted(sorted_keys, diag * self.n + diag)

    def assemble(self, inv_g: np.ndarray, diag_extra: np.ndarray) -> np.ndarray:
        """Assemble the permuted Schur complement's CSC ``data`` array.

        Args:
            inv_g: per-normal-link inverse headloss gradients.
            diag_extra: per-junction extra diagonal (emitter/PDD/PRV
                terms), in *original* junction order.

        Returns:
            The dense ``data`` vector matching ``indptr``/``indices``.
        """
        contrib = inv_g[self._gather] * self._sign
        data = np.bincount(self._scatter, weights=contrib, minlength=self.nnz)
        data[self._diag_scatter] += diag_extra[self.perm] + DIAG_EPS
        return data

    def matrix(self, data: np.ndarray) -> sp.csc_matrix:
        """Wrap an assembled ``data`` vector as a CSC matrix (no copy)."""
        return sp.csc_matrix(
            (data, self.indices, self.indptr), shape=(self.n, self.n)
        )


def _factorize(matrix: sp.csc_matrix):
    """Direct factorization of the SPD Schur complement.

    CHOLMOD (scikit-sparse) when importable, else SuperLU with
    ``MMD_AT_PLUS_A`` ordering and symmetric mode — both return an
    object with a ``solve(rhs)`` method.

    Raises:
        SingularSchurError: when the factorization is singular.
    """
    if _cholmod_cholesky is not None:  # pragma: no cover - optional dep
        try:
            return _cholmod_cholesky(matrix)
        except Exception as exc:
            raise SingularSchurError(
                f"CHOLMOD factorization failed: {exc}"
            ) from exc
    try:
        with warnings.catch_warnings():
            # Near-singular factorizations surface as MatrixRankWarning
            # with inf/nan results; promote them to the error contract.
            warnings.simplefilter("error", spla.MatrixRankWarning)
            return spla.splu(
                matrix,
                permc_spec="MMD_AT_PLUS_A",
                options={"SymmetricMode": True},
            )
    except (RuntimeError, spla.MatrixRankWarning) as exc:
        raise SingularSchurError(
            f"sparse Schur factorization failed: {exc}"
        ) from exc


@dataclass
class CachedSchurSolver:
    """Numeric solver bound to one :class:`SchurPattern`.

    Holds the most recent direct factorization and answers subsequent
    linear systems with preconditioned conjugate gradients against it,
    refactorizing only when the matrix has drifted too far (PCG budget
    exhausted) or a status pass invalidated the cache.  All solves are
    exact to :data:`PCG_RTOL`, so callers see direct-solve semantics.

    Attributes:
        pattern: the precomputed sparsity structure / scatter map.
        stats: reuse counters (factorizations vs PCG-served solves).
    """

    pattern: SchurPattern
    stats: SchurStats = field(default_factory=SchurStats)
    _factor: object | None = field(default=None, repr=False)
    _ref_inv_g: np.ndarray | None = field(default=None, repr=False)
    _ref_diag: np.ndarray | None = field(default=None, repr=False)
    _ref_scale: float = field(default=0.0, repr=False)
    # The *anchor* factorization is pinned at the last refactorized
    # anchor state (first Newton iteration of a warm-started solve).
    # Mid-Newton refactorizations move the working factor but leave this
    # one alone, so when the next solve warm-starts from the same
    # baseline its anchor state still matches — a scenario sweep's leak
    # emitters then differ only in a few diagonal entries and the solve
    # collapses to a trisolve or a rank-k PCG instead of a refactor.
    _anchor_factor: object | None = field(default=None, repr=False)
    _anchor_inv_g: np.ndarray | None = field(default=None, repr=False)
    _anchor_diag: np.ndarray | None = field(default=None, repr=False)
    _anchor_scale: float = field(default=0.0, repr=False)

    def invalidate(self) -> None:
        """Drop the cached factorizations (e.g. after a status flip)."""
        self._factor = None
        self._ref_inv_g = None
        self._ref_diag = None
        self._anchor_factor = None
        self._anchor_inv_g = None
        self._anchor_diag = None

    @staticmethod
    def _drift(
        ref_inv_g: np.ndarray | None,
        ref_diag: np.ndarray | None,
        ref_scale: float,
        inv_g: np.ndarray,
        diag_extra: np.ndarray,
    ) -> tuple[float, float]:
        """Relative ``(link, diagonal)`` drift from a factorized state.

        Computed from the raw link/diagonal value arrays so the
        reuse-vs-refactor decision costs O(links) *before* any matrix
        assembly.  Link and diagonal changes are scaled separately:
        a PRV's huge ``K_PRV`` diagonal penalty must not mask real
        conductance drift (and vice versa).
        """
        if ref_inv_g is None or ref_diag is None:
            return math.inf, math.inf
        link_scale = float(np.max(np.abs(ref_inv_g)))
        diag_scale = max(ref_scale, 1e-300)
        link = float(np.max(np.abs(inv_g - ref_inv_g))) / max(
            link_scale, 1e-300
        )
        diag = float(np.max(np.abs(diag_extra - ref_diag))) / diag_scale
        return link, diag

    def _anchor_attempt(
        self, inv_g: np.ndarray, diag_extra: np.ndarray, b: np.ndarray
    ) -> np.ndarray | None:
        """Serve an anchor solve from the pinned anchor factorization.

        Returns the (permuted) solution, or None when the anchor state
        has genuinely moved (link drift, or a more-than-rank-k diagonal
        change) and the regular tiered policy should take over.
        """
        link, diag = self._drift(
            self._anchor_inv_g, self._anchor_diag, self._anchor_scale,
            inv_g, diag_extra,
        )
        if link > TRISOLVE_DRIFT_LIMIT:
            return None
        # Anchor steps are *large* (the first Newton correction of a new
        # scenario), so even a relatively-tiny stale diagonal would leave
        # a visible head error if trisolved through.  Trisolve only on a
        # noise-level diagonal match; any genuinely moved entries go
        # through rank-k PCG, which is exact to PCG_RTOL.
        changed = np.abs(diag_extra - self._anchor_diag) > (
            DIAG_MATCH_RTOL * max(self._anchor_scale, 1e-300)
        )
        n_changed = int(np.count_nonzero(changed))
        if n_changed == 0 and diag <= TRISOLVE_DRIFT_LIMIT:
            x = self._anchor_factor.solve(b)
            if np.all(np.isfinite(x)):
                self.stats.reuse_solves += 1
                return x
            return None
        if n_changed > LOW_RANK_DIAG_LIMIT:
            return None
        data = self.pattern.assemble(inv_g, diag_extra)
        self.stats.assemblies += 1
        matrix = sp.csr_matrix(
            (data, self.pattern.indices, self.pattern.indptr),
            shape=(self.pattern.n, self.pattern.n),
        )
        x, iters, converged = _pcg(matrix, b, self._anchor_factor)
        if converged:
            self.stats.pcg_solves += 1
            self.stats.pcg_iterations += iters
            return x
        return None

    def solve(
        self,
        inv_g: np.ndarray,
        diag_extra: np.ndarray,
        rhs: np.ndarray,
        anchor: bool = False,
    ) -> np.ndarray:
        """Solve ``A(inv_g, diag_extra) x = rhs``.

        Three-tier policy, cheapest first:

        1. drift <= :data:`TRISOLVE_DRIFT_LIMIT` — apply the cached
           factorization directly (two triangular solves, no assembly);
        2. drift within the PCG gate, *or* the change is a low-rank
           diagonal perturbation (links unchanged, at most
           :data:`LOW_RANK_DIAG_LIMIT` diagonal entries moved — e.g. a
           leak scenario's emitter gradients) — assemble and run
           conjugate gradients preconditioned by the cached
           factorization to :data:`PCG_RTOL`;
        3. otherwise (or on CG breakdown) — assemble and refactorize,
           re-centering the cache on the current state.

        Args:
            inv_g: per-link inverse gradients (solver link order).
            diag_extra: per-junction diagonal terms (solver order).
            rhs: right-hand side (solver junction order, unpermuted).
            anchor: True when this is the first Newton iteration of a
                warm-started solve — a state that recurs across solves
                (scenario sweeps re-warm-start from one baseline, EPS
                steps from their predecessor).  A separate *anchor
                factorization* is pinned at the last refactorized
                anchor state; anchor solves whose link conductances
                still match it are answered by a trisolve or a rank-k
                PCG against it, untouched by mid-Newton
                refactorizations.  When the anchor state itself has
                moved, the tight :data:`ANCHOR_DRIFT_LIMIT` PCG gate
                applies, so a drifted factorization is re-centered (and
                re-pinned) *here* rather than reused — making every
                future visit to this state near-free.  Mid-Newton
                states never recur, so those solves prefer PCG (up to
                :data:`PCG_DRIFT_LIMIT`) and keep the anchor alive.

        Raises:
            SingularSchurError: singular factorization or non-finite
                solution (same contract as :class:`ConvergenceError`).
        """
        pattern = self.pattern
        b = rhs[pattern.perm]

        if anchor and self._anchor_factor is not None:
            x = self._anchor_attempt(inv_g, diag_extra, b)
            if x is not None:
                return self._unpermute(x)

        link_drift, diag_drift = self._drift(
            self._ref_inv_g, self._ref_diag, self._ref_scale, inv_g, diag_extra
        )
        drift = max(link_drift, diag_drift)

        if self._factor is not None and drift <= TRISOLVE_DRIFT_LIMIT:
            x = self._factor.solve(b)
            if np.all(np.isfinite(x)):
                self.stats.reuse_solves += 1
                return self._unpermute(x)

        data = pattern.assemble(inv_g, diag_extra)
        self.stats.assemblies += 1

        pcg_gate = ANCHOR_DRIFT_LIMIT if anchor else PCG_DRIFT_LIMIT
        try_pcg = self._factor is not None and drift <= pcg_gate
        if self._factor is not None and not try_pcg and (
            link_drift <= TRISOLVE_DRIFT_LIMIT
        ):
            # Links match the factorized state: the matrix is a diagonal
            # perturbation of the factorized one.  If it is low-rank
            # (few entries past the trisolve threshold), CG converges in
            # ~rank+1 iterations however large the entries are.
            changed = np.abs(diag_extra - self._ref_diag) > (
                TRISOLVE_DRIFT_LIMIT * max(self._ref_scale, 1e-300)
            )
            try_pcg = int(np.count_nonzero(changed)) <= LOW_RANK_DIAG_LIMIT
        if try_pcg:
            # The assembled arrays double as the CSR form of the (symmetric)
            # permuted matrix, which is what CG's matvec wants.
            matrix = sp.csr_matrix(
                (data, pattern.indices, pattern.indptr),
                shape=(pattern.n, pattern.n),
            )
            x, iters, converged = _pcg(matrix, b, self._factor)
            if converged:
                self.stats.pcg_solves += 1
                self.stats.pcg_iterations += iters
                return self._unpermute(x)

        self._factor = _factorize(pattern.matrix(data))
        self._ref_inv_g = inv_g.copy()
        self._ref_diag = diag_extra.copy()
        self._ref_scale = float(np.max(np.abs(data)))
        if anchor:
            # Pin this factorization as the anchor: warm-start states
            # recur, so future solves from the same baseline will find
            # it here even after mid-Newton refactorizations move the
            # working factor.
            self._anchor_factor = self._factor
            self._anchor_inv_g = self._ref_inv_g
            self._anchor_diag = self._ref_diag
            self._anchor_scale = self._ref_scale
        self.stats.factorizations += 1
        x = self._factor.solve(b)
        if not np.all(np.isfinite(x)):
            self.invalidate()
            raise SingularSchurError(
                "sparse Schur solve produced non-finite heads"
            )
        self.stats.direct_solves += 1
        return self._unpermute(x)

    def _unpermute(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        out[self.pattern.perm] = x
        return out


def _pcg(
    matrix: sp.csr_matrix,
    b: np.ndarray,
    factor,
    rtol: float = PCG_RTOL,
    max_iters: int = PCG_MAX_ITERS,
) -> tuple[np.ndarray, int, bool]:
    """Preconditioned conjugate gradients with a direct-factor preconditioner.

    Args:
        matrix: the current (SPD) system matrix.
        b: right-hand side.
        factor: previous factorization exposing ``solve`` — applied as
            the preconditioner.
        rtol: relative residual target.
        max_iters: iteration budget; exceeding it reports failure so the
            caller refactorizes.

    Returns:
        ``(x, iterations, converged)``.
    """
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return np.zeros_like(b), 0, True
    target = rtol * bnorm
    x = np.zeros_like(b)
    r = b.copy()
    z = factor.solve(r)
    p = z.copy()
    rz = float(r @ z)
    if not np.isfinite(rz) or rz <= 0.0:
        return x, 0, False
    for iteration in range(1, max_iters + 1):
        Ap = matrix @ p
        pAp = float(p @ Ap)
        if not np.isfinite(pAp) or pAp <= 0.0:
            return x, iteration, False
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        if float(np.linalg.norm(r)) <= target:
            return x, iteration, True
        z = factor.solve(r)
        rz_new = float(r @ z)
        if not np.isfinite(rz_new) or rz_new <= 0.0:
            return x, iteration, False
        p = z + (rz_new / rz) * p
        rz = rz_new
    return x, max_iters, False


def legacy_sparse_solve(
    start_idx: np.ndarray,
    end_idx: np.ndarray,
    inv_g: np.ndarray,
    diag_extra: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """The pre-pattern-cache sparse path: per-call COO assembly + spsolve.

    Kept as the measurable reference for the ``repro bench --steady``
    old-vs-new comparison and as a correctness cross-check; not used on
    any hot path.

    Raises:
        SingularSchurError: singular factorization (RuntimeError or
            :class:`scipy.sparse.linalg.MatrixRankWarning` alike).
    """
    n = len(rhs)
    s_mask = start_idx >= 0
    e_mask = end_idx >= 0
    both = s_mask & e_mask
    rows = [
        start_idx[s_mask], end_idx[e_mask],
        start_idx[both], end_idx[both], np.arange(n),
    ]
    cols = [
        start_idx[s_mask], end_idx[e_mask],
        end_idx[both], start_idx[both], np.arange(n),
    ]
    data = [
        inv_g[s_mask], inv_g[e_mask],
        -inv_g[both], -inv_g[both], diag_extra + DIAG_EPS,
    ]
    matrix = sp.coo_matrix(
        (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsc()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("error", spla.MatrixRankWarning)
            return spla.spsolve(matrix, rhs)
    except (RuntimeError, spla.MatrixRankWarning) as exc:
        raise SingularSchurError(
            f"sparse Schur solve failed: {exc}"
        ) from exc


__all__ = [
    "ANCHOR_DRIFT_LIMIT",
    "LOW_RANK_DIAG_LIMIT",
    "PCG_DRIFT_LIMIT",
    "PCG_MAX_ITERS",
    "PCG_RTOL",
    "TRISOLVE_DRIFT_LIMIT",
    "CachedSchurSolver",
    "SchurPattern",
    "SchurStats",
    "SingularSchurError",
    "legacy_sparse_solve",
]
