"""Physical components of a water distribution network.

The object model mirrors EPANET's: nodes (junctions, reservoirs, tanks)
connected by links (pipes, pumps, valves), with time patterns modulating
demands and curves describing pumps.  All quantities are stored in SI units
(metres, cubic metres per second, seconds); see :mod:`repro.hydraulics.units`.

Leaks are modelled with *emitters* attached to junctions, exactly as the
paper's EPANET++ does: the emitter discharges ``Q = EC * p**beta`` where
``p`` is the junction's pressure head (paper Eq. 1).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from .exceptions import NetworkTopologyError

#: Gravitational acceleration (m/s^2), used for minor-loss coefficients.
GRAVITY = 9.80665

#: Default emitter pressure exponent (paper Sec. III-A sets beta = 0.5).
DEFAULT_EMITTER_EXPONENT = 0.5


class LinkStatus(enum.Enum):
    """Operating status of a link."""

    OPEN = "OPEN"
    CLOSED = "CLOSED"
    ACTIVE = "ACTIVE"  # valves only: regulating at their setting


class ValveType(enum.Enum):
    """Supported valve types (subset of EPANET's)."""

    PRV = "PRV"  # pressure reducing valve
    TCV = "TCV"  # throttle control valve
    FCV = "FCV"  # flow control valve


@dataclass
class Pattern:
    """A repeating time pattern of multipliers.

    Attributes:
        name: unique pattern identifier.
        multipliers: one multiplier per pattern timestep; the pattern wraps
            around when simulation time exceeds its length.
    """

    name: str
    multipliers: list[float] = field(default_factory=lambda: [1.0])

    def at(self, time_seconds: float, pattern_timestep: float) -> float:
        """Multiplier in effect at ``time_seconds``."""
        if not self.multipliers:
            return 1.0
        index = int(time_seconds // pattern_timestep) % len(self.multipliers)
        return self.multipliers[index]


@dataclass
class Curve:
    """A piecewise-linear curve of (x, y) points, e.g. a pump head curve."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.points = sorted(self.points)

    def interpolate(self, x: float) -> float:
        """Piecewise-linear interpolation with flat extrapolation."""
        pts = self.points
        if not pts:
            raise ValueError(f"curve {self.name!r} has no points")
        if x <= pts[0][0]:
            return pts[0][1]
        if x >= pts[-1][0]:
            return pts[-1][1]
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            if x0 <= x <= x1:
                if x1 == x0:
                    return y1
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        return pts[-1][1]  # unreachable; defensive


@dataclass
class Node:
    """Base class for network nodes.

    Attributes:
        name: unique node identifier.
        coordinates: (x, y) map position in metres, used for sensor
            placement, tweet-clique geometry and DEM interpolation.
    """

    name: str
    coordinates: tuple[float, float] = (0.0, 0.0)

    @property
    def node_type(self) -> str:
        return type(self).__name__


@dataclass
class Junction(Node):
    """A demand node (pipe joint). Leak emitters attach here.

    Attributes:
        elevation: node elevation in metres.
        base_demand: consumer demand in m^3/s before pattern scaling.
        demand_pattern: name of the demand :class:`Pattern`, or ``None``.
        emitter_coefficient: ``EC`` of paper Eq. (1); flow through the
            emitter is ``EC * max(p, 0) ** emitter_exponent`` in m^3/s with
            ``p`` in metres of head.  Zero means no leak.
        emitter_exponent: pressure exponent ``beta`` of Eq. (1).
    """

    elevation: float = 0.0
    base_demand: float = 0.0
    demand_pattern: str | None = None
    emitter_coefficient: float = 0.0
    emitter_exponent: float = DEFAULT_EMITTER_EXPONENT

    def emitter_flow(self, head: float) -> float:
        """Emitter outflow (m^3/s) at a given total head (m)."""
        if self.emitter_coefficient <= 0.0:
            return 0.0
        pressure = max(head - self.elevation, 0.0)
        return self.emitter_coefficient * pressure**self.emitter_exponent


@dataclass
class Reservoir(Node):
    """An infinite source with a fixed (possibly patterned) total head."""

    base_head: float = 0.0
    head_pattern: str | None = None


@dataclass
class Tank(Node):
    """A cylindrical storage tank.

    Total head is ``elevation + level``.  During extended-period simulation
    the level is integrated from net inflow; it is clamped to
    ``[min_level, max_level]`` and the connecting links are closed when the
    tank can no longer supply/accept water.
    """

    elevation: float = 0.0
    init_level: float = 0.0
    min_level: float = 0.0
    max_level: float = 10.0
    diameter: float = 10.0

    def __post_init__(self) -> None:
        if not self.min_level <= self.init_level <= self.max_level:
            raise NetworkTopologyError(
                f"tank {self.name!r}: init_level {self.init_level} outside "
                f"[{self.min_level}, {self.max_level}]"
            )

    @property
    def area(self) -> float:
        """Horizontal cross-section area (m^2)."""
        return math.pi * self.diameter**2 / 4.0

    def head_at_level(self, level: float) -> float:
        return self.elevation + level

    def level_from_volume(self, volume: float) -> float:
        return volume / self.area

    def volume_at_level(self, level: float) -> float:
        return level * self.area


@dataclass
class Link:
    """Base class for network links.

    Attributes:
        name: unique link identifier.
        start_node: name of the upstream node (positive-flow direction).
        end_node: name of the downstream node.
        initial_status: status at simulation start.
    """

    name: str
    start_node: str
    end_node: str
    initial_status: LinkStatus = LinkStatus.OPEN

    @property
    def link_type(self) -> str:
        return type(self).__name__


@dataclass
class Pipe(Link):
    """A pressurised pipe with Hazen-Williams friction.

    Attributes:
        length: pipe length (m).
        diameter: internal diameter (m).
        roughness: Hazen-Williams C coefficient (dimensionless).
        minor_loss: minor-loss coefficient K (dimensionless).
        check_valve: if True, flow is one-way (start -> end).
    """

    length: float = 100.0
    diameter: float = 0.3
    roughness: float = 100.0
    minor_loss: float = 0.0
    check_valve: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise NetworkTopologyError(f"pipe {self.name!r}: length must be > 0")
        if self.diameter <= 0:
            raise NetworkTopologyError(f"pipe {self.name!r}: diameter must be > 0")
        if self.roughness <= 0:
            raise NetworkTopologyError(f"pipe {self.name!r}: roughness must be > 0")

    @property
    def area(self) -> float:
        """Flow cross-section area (m^2)."""
        return math.pi * self.diameter**2 / 4.0

    def minor_loss_resistance(self) -> float:
        """Coefficient m such that minor headloss = m * q * |q|."""
        if self.minor_loss <= 0:
            return 0.0
        return self.minor_loss / (2.0 * GRAVITY * self.area**2)


@dataclass
class PumpCurveModel:
    """A fitted pump characteristic ``h_gain = h0 - r * q**c`` (SI).

    EPANET's transformations are used to fit the three curve shapes:

    * one point ``(qd, hd)``: shutoff head ``4/3 * hd``, max flow ``2 * qd``,
      exponent 2;
    * three points ``(0, h0), (q1, h1), (q2, h2)``: power-law fit;
    * multi-point: piecewise-linear interpolation of the curve.
    """

    shutoff_head: float
    resistance: float
    exponent: float
    max_flow: float
    curve: Curve | None = None

    @classmethod
    def from_curve(cls, curve: Curve) -> "PumpCurveModel":
        """Fit the power-law model from a registered head curve."""
        pts = [p for p in curve.points]
        if not pts:
            raise NetworkTopologyError(f"pump curve {curve.name!r} is empty")
        if len(pts) == 1:
            qd, hd = pts[0]
            if qd <= 0 or hd <= 0:
                raise NetworkTopologyError(
                    f"pump curve {curve.name!r}: single design point must be positive"
                )
            h0 = 4.0 * hd / 3.0
            r = hd / (3.0 * qd**2)
            return cls(shutoff_head=h0, resistance=r, exponent=2.0, max_flow=2.0 * qd)
        if len(pts) == 3 and pts[0][0] == 0.0:
            (q0, h0), (q1, h1), (q2, h2) = pts
            if not (h0 > h1 > h2 and 0 < q1 < q2):
                raise NetworkTopologyError(
                    f"pump curve {curve.name!r}: three-point curve must be decreasing"
                )
            c = math.log((h0 - h1) / (h0 - h2)) / math.log(q1 / q2)
            r = (h0 - h1) / q1**c
            qmax = (h0 / r) ** (1.0 / c)
            return cls(shutoff_head=h0, resistance=r, exponent=c, max_flow=qmax)
        # Multi-point: approximate with a power fit through the end points
        # but keep the raw curve for head evaluation.
        h0 = pts[0][1]
        qmax = pts[-1][0]
        hmin = pts[-1][1]
        r = (h0 - hmin) / max(qmax, 1e-9) ** 2
        model = cls(
            shutoff_head=h0,
            resistance=max(r, 1e-9),
            exponent=2.0,
            max_flow=qmax if hmin <= 0 else qmax * 1.5,
        )
        model.curve = curve
        return model

    def head_gain(self, q: float, speed: float = 1.0) -> float:
        """Head added by the pump at flow ``q`` (m).

        Affinity laws scale the curve with relative ``speed``.
        """
        if speed <= 0:
            return 0.0
        if self.curve is not None and speed == 1.0:
            return self.curve.interpolate(max(q, 0.0))
        q_eq = max(q, 0.0) / speed
        return speed**2 * (self.shutoff_head - self.resistance * q_eq**self.exponent)


@dataclass
class Pump(Link):
    """A pump link; adds head in the start -> end direction.

    Attributes:
        curve_name: name of the head :class:`Curve` registered on the
            network.
        speed: relative speed (1.0 = nominal); affinity laws apply.
        power: constant-power rating (W) used when no curve is given
            (``h_gain = power / (rho * g * q)``).
    """

    curve_name: str | None = None
    speed: float = 1.0
    power: float | None = None

    def __post_init__(self) -> None:
        if self.curve_name is None and self.power is None:
            raise NetworkTopologyError(
                f"pump {self.name!r}: needs either a head curve or a power rating"
            )


@dataclass
class Valve(Link):
    """A control valve.

    Attributes:
        valve_type: PRV / TCV / FCV.
        diameter: valve diameter (m), used for minor-loss conversion.
        setting: meaning depends on type — PRV: downstream pressure head
            (m); TCV: minor-loss coefficient K; FCV: maximum flow (m^3/s).
        minor_loss: loss coefficient applied when the valve is fully OPEN.
    """

    valve_type: ValveType = ValveType.TCV
    diameter: float = 0.3
    setting: float = 0.0
    minor_loss: float = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.valve_type, str):
            self.valve_type = ValveType(self.valve_type.upper())
        if self.diameter <= 0:
            raise NetworkTopologyError(f"valve {self.name!r}: diameter must be > 0")

    @property
    def area(self) -> float:
        return math.pi * self.diameter**2 / 4.0

    def loss_resistance(self, coefficient: float) -> float:
        """Coefficient m with headloss = m q|q| for a given K."""
        if coefficient <= 0:
            return 0.0
        return coefficient / (2.0 * GRAVITY * self.area**2)
