"""Pump energy and cost accounting over an extended-period run.

The paper's Sec. I notes "water loss often leads to additional energy
expenditures for transporting water" — this module quantifies that
interdependency: per-pump hydraulic power ``rho * g * Q * h_gain``,
integrated to kWh, with a tariff pattern for cost, so experiments can
compare the energy bill with and without leaks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .components import Pattern, Pump
from .network import WaterNetwork
from .results import SimulationResults

#: rho * g for water (N/m^3).
RHO_G = 998.2 * 9.80665


@dataclass(frozen=True)
class PumpEnergyReport:
    """Energy accounting for one pump over a run.

    Attributes:
        pump_name: the pump.
        energy_kwh: electrical energy consumed.
        volume_m3: water moved (positive-direction flow only).
        mean_power_kw: average electrical power while running.
        utilization: fraction of timesteps with positive flow.
        cost: tariff-weighted cost (currency units).
    """

    pump_name: str
    energy_kwh: float
    volume_m3: float
    mean_power_kw: float
    utilization: float
    cost: float


def pump_energy(
    network: WaterNetwork,
    results: SimulationResults,
    efficiency: float = 0.75,
    tariff: Pattern | None = None,
    tariff_timestep: float = 3600.0,
    base_price_per_kwh: float = 0.12,
) -> list[PumpEnergyReport]:
    """Per-pump energy/cost over recorded results.

    Args:
        network: the simulated network.
        results: EPS output (heads per node, flows per link).
        efficiency: wire-to-water efficiency in (0, 1].
        tariff: optional price multipliers over time (e.g. night rates).
        tariff_timestep: tariff pattern step (s).
        base_price_per_kwh: price at multiplier 1.0.

    Raises:
        ValueError: for an efficiency outside (0, 1].
    """
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    if results.n_timesteps < 2:
        step = network.options.hydraulic_timestep
    else:
        step = float(np.median(np.diff(results.times)))

    reports = []
    for pump in network.pumps():
        assert isinstance(pump, Pump)
        flow = results.flow[:, results.link_column(pump.name)]
        head_start = results.head[:, results.node_column(pump.start_node)]
        head_end = results.head[:, results.node_column(pump.end_node)]
        gain = np.maximum(head_end - head_start, 0.0)
        # CLOSED links carry ~1e-7 residual flow through the stiff
        # penalty resistance; 1e-6 m^3/s separates "running" reliably.
        positive = flow > 1e-6
        hydraulic_power_w = np.where(positive, RHO_G * flow * gain, 0.0)
        electrical_power_w = hydraulic_power_w / efficiency
        energy_kwh = float(np.sum(electrical_power_w) * step / 3.6e6)
        volume = float(np.sum(np.maximum(flow, 0.0)) * step)
        running = float(np.mean(positive)) if len(flow) else 0.0
        mean_power = (
            float(np.mean(electrical_power_w[positive]) / 1e3)
            if np.any(positive)
            else 0.0
        )
        if tariff is not None:
            multipliers = np.array(
                [tariff.at(t, tariff_timestep) for t in results.times]
            )
        else:
            multipliers = np.ones(len(flow))
        cost = float(
            np.sum(electrical_power_w * multipliers) * step / 3.6e6 * base_price_per_kwh
        )
        reports.append(
            PumpEnergyReport(
                pump_name=pump.name,
                energy_kwh=energy_kwh,
                volume_m3=volume,
                mean_power_kw=mean_power,
                utilization=running,
                cost=cost,
            )
        )
    return reports


def specific_energy(
    network: WaterNetwork,
    results: SimulationResults,
    efficiency: float = 0.75,
) -> float:
    """Pumping energy per cubic metre of consumer-delivered water (kWh/m^3).

    Raises:
        ValueError: when nothing was delivered over the run.
    """
    total_kwh = sum(
        r.energy_kwh for r in pump_energy(network, results, efficiency)
    )
    if results.n_timesteps < 2:
        step = network.options.hydraulic_timestep
    else:
        step = float(np.median(np.diff(results.times)))
    delivered = float(np.sum(results.demand) * step)
    if delivered <= 0.0:
        raise ValueError("no water delivered over the run")
    return total_kwh / delivered


def leak_energy_penalty(
    network: WaterNetwork,
    clean_results: SimulationResults,
    leaky_results: SimulationResults,
    efficiency: float = 0.75,
) -> float:
    """Extra pumping energy per delivered m^3 attributable to leaks.

    The Sec.-I interdependency made concrete.  Total energy can even
    *fall* under a leak (pumps slide down their curves to lower-head
    operating points), but the energy per cubic metre that actually
    reaches a customer always rises — leaked water was pumped for
    nothing.

    Returns:
        kWh/m^3 with leaks minus kWh/m^3 without.
    """
    return specific_energy(network, leaky_results, efficiency) - specific_energy(
        network, clean_results, efficiency
    )
