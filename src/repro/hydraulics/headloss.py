"""Friction headloss models.

The solver needs, for each link, the headloss ``f(q)`` and its derivative
``f'(q)``; both are provided here for the Hazen-Williams and
Darcy-Weisbach (Swamee-Jain) models.  Near ``q = 0`` the Hazen-Williams
derivative vanishes, which would make the Newton Jacobian singular, so a
linear low-flow region is substituted below ``Q_LAMINAR`` — the same device
EPANET uses.
"""

from __future__ import annotations

import math

import numpy as np

#: Hazen-Williams exponent.
HW_EXPONENT = 1.852
#: SI Hazen-Williams resistance constant: hL = HW_K * L / (C^1.852 d^4.871) q^1.852.
HW_K = 10.666829500036352
#: Flow magnitude (m^3/s) below which the headloss curve is linearised.
Q_LAMINAR = 1e-4
#: Kinematic viscosity of water at 20C (m^2/s), for Darcy-Weisbach.
WATER_NU = 1.004e-6


def hazen_williams_resistance(length: float, diameter: float, roughness: float) -> float:
    """Resistance ``r`` with ``hL = r * q * |q|**0.852`` (SI units)."""
    return HW_K * length / (roughness**HW_EXPONENT * diameter**4.871)


def hw_headloss_and_gradient(
    q: float, resistance: float, minor: float = 0.0
) -> tuple[float, float]:
    """Hazen-Williams headloss and its derivative at flow ``q``.

    Args:
        q: link flow (m^3/s), signed.
        resistance: from :func:`hazen_williams_resistance`.
        minor: minor-loss coefficient m with loss = m q|q|.

    Returns:
        (headloss, d headloss / dq); headloss has the sign of ``q``.
    """
    aq = abs(q)
    if aq < Q_LAMINAR:
        # Linear segment matching the curve value at Q_LAMINAR.
        slope = resistance * Q_LAMINAR ** (HW_EXPONENT - 1.0) + 2.0 * minor * Q_LAMINAR
        return q * slope, slope
    friction = resistance * aq ** (HW_EXPONENT - 1.0)
    loss = q * friction + minor * q * aq
    grad = HW_EXPONENT * friction + 2.0 * minor * aq
    return loss, grad


def hw_headloss_and_gradient_array(
    q: np.ndarray, resistance: np.ndarray, minor: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`hw_headloss_and_gradient` over link arrays.

    Element ``k`` equals the scalar function evaluated at
    ``(q[k], resistance[k], minor[k])`` up to floating-point reassociation;
    the laminar linearisation below ``Q_LAMINAR`` is applied per element.
    """
    aq = np.abs(q)
    laminar = aq < Q_LAMINAR
    safe_aq = np.where(laminar, Q_LAMINAR, aq)
    friction = resistance * safe_aq ** (HW_EXPONENT - 1.0)
    loss = q * friction + minor * q * safe_aq
    grad = HW_EXPONENT * friction + 2.0 * minor * safe_aq
    if np.any(laminar):
        slope = resistance * Q_LAMINAR ** (HW_EXPONENT - 1.0) + 2.0 * minor * Q_LAMINAR
        loss = np.where(laminar, q * slope, loss)
        grad = np.where(laminar, slope, grad)
    return loss, grad


def dw_headloss_and_gradient_array(
    q: np.ndarray,
    length: np.ndarray,
    diameter: np.ndarray,
    roughness_height: np.ndarray,
    minor: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`dw_headloss_and_gradient` over link arrays."""
    aq = np.abs(q)
    laminar_cut = aq < Q_LAMINAR
    safe_aq = np.where(laminar_cut, Q_LAMINAR, aq)
    area = math.pi * diameter**2 / 4.0
    velocity = safe_aq / area
    reynolds = np.maximum(velocity * diameter / WATER_NU, 1.0)
    term = roughness_height / (3.7 * diameter) + 5.74 / reynolds**0.9
    factor = np.where(
        reynolds < 2000.0, 64.0 / reynolds, 0.25 / np.log10(term) ** 2
    )
    r = factor * length / (diameter * 2.0 * 9.80665 * area**2)
    loss = (r + minor) * q * safe_aq
    grad = 2.0 * (r + minor) * safe_aq
    if np.any(laminar_cut):
        slope = np.maximum(2.0 * (r + minor) * Q_LAMINAR, 1e-12)
        loss = np.where(laminar_cut, q * slope, loss)
        grad = np.where(laminar_cut, slope, grad)
    return loss, np.maximum(grad, 1e-12)


def darcy_weisbach_friction_factor(
    q: float, diameter: float, roughness_height: float
) -> float:
    """Swamee-Jain friction factor (turbulent) with a laminar fallback.

    Args:
        q: flow magnitude (m^3/s).
        diameter: pipe diameter (m).
        roughness_height: absolute roughness epsilon (m).
    """
    area = math.pi * diameter**2 / 4.0
    velocity = abs(q) / area
    reynolds = velocity * diameter / WATER_NU
    if reynolds < 1.0:
        reynolds = 1.0
    if reynolds < 2000.0:
        return 64.0 / reynolds
    term = roughness_height / (3.7 * diameter) + 5.74 / reynolds**0.9
    return 0.25 / math.log10(term) ** 2


def dw_headloss_and_gradient(
    q: float,
    length: float,
    diameter: float,
    roughness_height: float,
    minor: float = 0.0,
) -> tuple[float, float]:
    """Darcy-Weisbach headloss and an approximate derivative at ``q``.

    The friction factor is frozen when differentiating (standard successive
    approximation), which keeps the Newton iteration stable.
    """
    aq = abs(q)
    area = math.pi * diameter**2 / 4.0
    if aq < Q_LAMINAR:
        factor = darcy_weisbach_friction_factor(Q_LAMINAR, diameter, roughness_height)
        r = factor * length / (diameter * 2.0 * 9.80665 * area**2)
        slope = 2.0 * r * Q_LAMINAR + 2.0 * minor * Q_LAMINAR
        return q * slope, max(slope, 1e-12)
    factor = darcy_weisbach_friction_factor(aq, diameter, roughness_height)
    r = factor * length / (diameter * 2.0 * 9.80665 * area**2)
    loss = (r + minor) * q * aq
    grad = 2.0 * (r + minor) * aq
    return loss, grad
