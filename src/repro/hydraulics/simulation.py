"""Extended-period simulation (EPS).

The simulator advances the network through time: it resolves pattern-scaled
demands, solves a steady state at every hydraulic timestep, integrates tank
levels from net inflows (forward Euler with level clamping), applies simple
controls, and supports *timed leak events* — emitters that switch on at a
given time, which is exactly how the paper injects failures
(``e = (l, s, t)``).

The hydraulic timestep doubles as the IoT sampling interval (15 minutes in
the paper), so every recorded timestep is one "time slot".
"""

from __future__ import annotations

from dataclasses import dataclass

from .components import LinkStatus, Tank
from .controls import SimpleControl, evaluate_controls
from .exceptions import SimulationError
from .network import WaterNetwork
from .results import ResultsBuilder, SimulationResults
from .solver import GGASolver


@dataclass(frozen=True)
class TimedLeak:
    """A leak emitter that activates at ``start_time``.

    Mirrors the paper's event ``e = (l, s, t)``: ``node`` is the location
    ``e.l``, ``emitter_coefficient`` the size ``e.s`` (``EC`` in Eq. 1), and
    ``start_time`` the starting slot ``e.t`` in seconds.
    """

    node: str
    emitter_coefficient: float
    start_time: float
    emitter_exponent: float = 0.5


class ExtendedPeriodSimulator:
    """Runs an EPS over a network without mutating it."""

    def __init__(
        self,
        network: WaterNetwork,
        controls: list[SimpleControl] | None = None,
        rules: list | None = None,
        audit=None,
        linear_solver: str = "auto",
    ):
        self.network = network
        self.controls = list(controls or [])
        self.rules = list(rules or [])
        self._solver = GGASolver(network, linear_solver=linear_solver)
        if audit is not None:
            self._solver.audit = audit

    @property
    def solver(self) -> GGASolver:
        """The underlying steady-state solver (e.g. to attach an auditor)."""
        return self._solver

    def run(
        self,
        duration: float | None = None,
        timestep: float | None = None,
        leaks: list[TimedLeak] | None = None,
        report_start: float = 0.0,
    ) -> SimulationResults:
        """Run the simulation and return full time series.

        Args:
            duration: total simulated seconds (default: network options).
            timestep: hydraulic/IoT timestep seconds (default: options).
            leaks: timed leak events to inject (on top of any emitters
                already present on the network).
            report_start: first timestamp recorded in the results.

        Raises:
            SimulationError: on invalid timing.
        """
        options = self.network.options
        total = options.duration if duration is None else duration
        step = options.hydraulic_timestep if timestep is None else timestep
        if step <= 0:
            raise SimulationError(f"hydraulic timestep must be > 0, got {step}")
        if total < 0:
            raise SimulationError(f"duration must be >= 0, got {total}")
        leaks = list(leaks or [])

        network = self.network
        node_names = network.node_names()
        link_names = network.link_names()
        builder = ResultsBuilder(node_names, link_names)

        tanks = list(network.tanks())
        tank_levels = {t.name: t.init_level for t in tanks}
        tank_lockout: dict[str, LinkStatus] = {}
        last_pressures: dict[str, float] | None = None

        n_steps = max(int(round(total / step)), 0) + 1
        time = 0.0
        for _step_index in range(n_steps):
            demands = self._pattern_demands(time)
            fixed_heads = self._fixed_heads(tank_levels, time)
            emitters = self._active_emitters(leaks, time)
            overrides = evaluate_controls(
                self.controls, network, time, tank_levels, last_pressures
            )
            if self.rules:
                from .rules import evaluate_rules

                overrides.update(
                    evaluate_rules(self.rules, time, tank_levels, last_pressures)
                )
            overrides.update(self._tank_limit_overrides(tanks, tank_levels))
            solution = self._solver.solve(
                demands=demands,
                fixed_heads=fixed_heads,
                emitters=emitters,
                status_overrides=overrides or None,
            )
            last_pressures = solution.node_pressure
            if time >= report_start:
                builder.append(
                    time,
                    solution.node_head,
                    solution.node_pressure,
                    solution.node_demand,
                    solution.leak_flow,
                    solution.link_flow,
                    dict(tank_levels),
                )
            self._integrate_tanks(tanks, tank_levels, solution.link_flow, step)
            time += step
        return builder.build()

    # ------------------------------------------------------------------
    def _pattern_demands(self, time_seconds: float) -> dict[str, float]:
        """Pattern-scaled demand for every junction at ``time_seconds``."""
        options = self.network.options
        demands: dict[str, float] = {}
        for junction in self.network.junctions():
            multiplier = 1.0
            if junction.demand_pattern is not None:
                pattern = self.network.pattern(junction.demand_pattern)
                multiplier = pattern.at(time_seconds, options.pattern_timestep)
            demands[junction.name] = junction.base_demand * multiplier
        return demands

    def _fixed_heads(
        self, tank_levels: dict[str, float], time_seconds: float
    ) -> dict[str, float]:
        heads: dict[str, float] = {}
        options = self.network.options
        for reservoir in self.network.reservoirs():
            head = reservoir.base_head
            if reservoir.head_pattern is not None:
                pattern = self.network.pattern(reservoir.head_pattern)
                head *= pattern.at(time_seconds, options.pattern_timestep)
            heads[reservoir.name] = head
        for tank in self.network.tanks():
            heads[tank.name] = tank.head_at_level(tank_levels[tank.name])
        return heads

    def _active_emitters(
        self, leaks: list[TimedLeak], time_seconds: float
    ) -> dict[str, tuple[float, float]] | None:
        """Merge static network emitters with activated timed leaks.

        Returns None when nothing leaks, letting the solver take its
        fast no-override path.
        """
        emitters: dict[str, tuple[float, float]] = {}
        for junction in self.network.junctions():
            if junction.emitter_coefficient > 0.0:
                emitters[junction.name] = (
                    junction.emitter_coefficient,
                    junction.emitter_exponent,
                )
        for leak in leaks:
            if time_seconds >= leak.start_time:
                previous = emitters.get(leak.node, (0.0, leak.emitter_exponent))
                emitters[leak.node] = (
                    previous[0] + leak.emitter_coefficient,
                    leak.emitter_exponent,
                )
        if not emitters:
            return None
        return emitters

    @staticmethod
    def _tank_limit_overrides(
        tanks: list[Tank], tank_levels: dict[str, float]
    ) -> dict[str, LinkStatus]:
        """Close nothing by default; tanks clamp via level integration.

        A full treatment would close inflow links at max level and outflow
        links at min level; clamping the integrated level (see
        :meth:`_integrate_tanks`) keeps heads bounded, which is all the
        leak experiments require.
        """
        return {}

    def _integrate_tanks(
        self,
        tanks: list[Tank],
        tank_levels: dict[str, float],
        link_flow: dict[str, float],
        step: float,
    ) -> None:
        """Forward-Euler tank level update from net inflow, clamped."""
        for tank in tanks:
            net_inflow = 0.0
            for link in self.network.links.values():
                flow = link_flow[link.name]
                if link.end_node == tank.name:
                    net_inflow += flow
                elif link.start_node == tank.name:
                    net_inflow -= flow
            new_level = tank_levels[tank.name] + net_inflow * step / tank.area
            tank_levels[tank.name] = min(max(new_level, tank.min_level), tank.max_level)


def simulate(
    network: WaterNetwork,
    duration: float | None = None,
    timestep: float | None = None,
    leaks: list[TimedLeak] | None = None,
    controls: list[SimpleControl] | None = None,
    rules: list | None = None,
    audit=None,
    linear_solver: str = "auto",
) -> SimulationResults:
    """One-call EPS convenience wrapper around ExtendedPeriodSimulator."""
    simulator = ExtendedPeriodSimulator(
        network, controls=controls, rules=rules, audit=audit,
        linear_solver=linear_solver,
    )
    return simulator.run(duration=duration, timestep=timestep, leaks=leaks)
