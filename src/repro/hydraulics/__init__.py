"""EPANET++ substitute: a from-scratch hydraulic network simulator.

The paper enhances EPANET with IoT-sensor and pipe-failure modelling and
calls the result EPANET++.  This package reimplements the needed surface in
Python: the network object model, Hazen-Williams hydraulics solved with the
Todini-Pilati global gradient algorithm, extended-period simulation with
tanks/pumps/valves/controls, leak emitters (``Q = EC * p**beta``), and
EPANET INP file I/O.
"""

from .components import (
    Curve,
    Junction,
    Link,
    LinkStatus,
    Node,
    Pattern,
    Pipe,
    Pump,
    Reservoir,
    Tank,
    Valve,
    ValveType,
)
from .age import WaterAgeSimulator, mean_age_hours, simulate_water_age
from .controls import ControlCondition, SimpleControl
from .energy import (
    PumpEnergyReport,
    leak_energy_penalty,
    pump_energy,
    specific_energy,
)
from .exceptions import (
    ConvergenceError,
    HydraulicsError,
    InpSyntaxError,
    NetworkTopologyError,
    SimulationError,
    UnitsError,
)
from .inp import inp_text, read_inp, read_rules, write_inp
from .network import SimulationOptions, WaterNetwork
from .quality import (
    QualityResults,
    QualitySimulator,
    QualitySource,
    simulate_quality,
)
from .batched import (
    BatchedGGASolver,
    BatchResult,
    BatchTrace,
)
from .results import SimulationResults
from .rules import Action, Comparator, Premise, Rule, evaluate_rules, parse_rule
from .simulation import ExtendedPeriodSimulator, TimedLeak, simulate
from .solver import DENSE_SOLVE_LIMIT, GGASolver, SteadyStateSolution
from .sparse import (
    CachedSchurSolver,
    SchurPattern,
    SchurStats,
    SingularSchurError,
)

__all__ = [
    "Action",
    "BatchResult",
    "BatchTrace",
    "BatchedGGASolver",
    "CachedSchurSolver",
    "Comparator",
    "ControlCondition",
    "ConvergenceError",
    "Curve",
    "DENSE_SOLVE_LIMIT",
    "ExtendedPeriodSimulator",
    "GGASolver",
    "HydraulicsError",
    "InpSyntaxError",
    "Junction",
    "Link",
    "LinkStatus",
    "NetworkTopologyError",
    "Node",
    "Pattern",
    "Pipe",
    "Premise",
    "Pump",
    "PumpEnergyReport",
    "QualityResults",
    "QualitySimulator",
    "QualitySource",
    "Reservoir",
    "Rule",
    "SchurPattern",
    "SchurStats",
    "SimpleControl",
    "SimulationError",
    "SimulationOptions",
    "SimulationResults",
    "SingularSchurError",
    "SteadyStateSolution",
    "Tank",
    "TimedLeak",
    "UnitsError",
    "Valve",
    "ValveType",
    "WaterAgeSimulator",
    "WaterNetwork",
    "evaluate_rules",
    "inp_text",
    "leak_energy_penalty",
    "mean_age_hours",
    "parse_rule",
    "pump_energy",
    "read_inp",
    "read_rules",
    "simulate",
    "simulate_quality",
    "simulate_water_age",
    "specific_energy",
    "write_inp",
]
