"""Water-age computation (EPANET's AGE quality analysis).

Water age — hours since the water left a source — is the standard proxy
for disinfectant decay and stagnation risk.  It reuses the Lagrangian
transport machinery: age is a "concentration" that grows linearly with
residence time instead of decaying, with sources pinned at zero.
"""

from __future__ import annotations

import numpy as np

from .network import WaterNetwork
from .quality import QualityResults, QualitySimulator, QualitySource
from .results import SimulationResults


class WaterAgeSimulator(QualitySimulator):
    """Tracks water age over completed hydraulic results.

    Implemented as the quality simulator with negative exponential decay
    replaced by a linear per-step increment: every parcel's "age value"
    rises by ``quality_timestep`` each step, and reservoir water enters
    at age zero.
    """

    def __init__(
        self,
        network: WaterNetwork,
        results: SimulationResults,
        quality_timestep: float = 120.0,
    ):
        super().__init__(
            network, results, decay_rate=0.0, quality_timestep=quality_timestep
        )

    def run_age(self, initial_age: float = 0.0) -> QualityResults:
        """Compute the age field (seconds) over the hydraulic horizon."""
        sources = [
            QualitySource(reservoir.name, concentration=0.0)
            for reservoir in self.network.reservoirs()
        ]
        # Hook the per-step aging in by monkey-free subclass behaviour:
        # QualitySimulator applies `decay(factor)` each step; aging is the
        # same traversal with addition instead of multiplication, so we
        # run the parent loop with decay disabled and add the increment
        # through the private segment hook below.
        self._age_mode = True
        return self.run(sources, initial_concentration=initial_age)

    # The parent calls pipe_segments.decay(factor) with factor = 1.0 when
    # decay_rate == 0; we override the step to add aging afterwards.
    def _advect_step(self, flows, segments, node_conc, tank_conc, source_map, time, dt):
        """Advect as usual, then age every parcel by ``dt``."""
        new_conc = super()._advect_step(
            flows, segments, node_conc, tank_conc, source_map, time, dt
        )
        if getattr(self, "_age_mode", False):
            for pipe_segments in segments.values():
                for segment in pipe_segments.segments:
                    segment[1] += dt
            for tank_name in tank_conc:
                tank_conc[tank_name] += dt
            for name in new_conc:
                # Node values are snapshots of blended arrivals; aging
                # them keeps stagnant (no-inflow) nodes growing older.
                if source_map.get(name):
                    continue  # sources stay at age zero
                new_conc[name] += dt
        return new_conc


def simulate_water_age(
    network: WaterNetwork,
    results: SimulationResults,
    quality_timestep: float = 120.0,
) -> QualityResults:
    """One-call water-age analysis; values are seconds of age."""
    simulator = WaterAgeSimulator(network, results, quality_timestep)
    return simulator.run_age()


def mean_age_hours(age: QualityResults, node: str, settle_fraction: float = 0.5) -> float:
    """Mean age (hours) at a node over the settled tail of the run.

    The first ``settle_fraction`` of the horizon is warm-up (the initial
    age field is arbitrary); the tail approximates steady state.
    """
    series = age.at(node)
    start = int(len(series) * settle_fraction)
    tail = series[start:]
    if len(tail) == 0:
        return 0.0
    return float(np.mean(tail) / 3600.0)
