"""Exception hierarchy for the hydraulic simulator.

Every error raised by :mod:`repro.hydraulics` derives from
:class:`HydraulicsError`, so callers can catch simulator problems without
accidentally swallowing unrelated bugs.
"""

from __future__ import annotations


class HydraulicsError(Exception):
    """Base class for all hydraulic-simulator errors."""


class NetworkTopologyError(HydraulicsError):
    """The network definition is structurally invalid.

    Examples: duplicate component names, a link referencing a missing node,
    a junction with no path to any fixed-head source.
    """


class UnitsError(HydraulicsError):
    """A quantity was supplied in (or converted to) an unsupported unit."""


class ConvergenceError(HydraulicsError):
    """The global gradient algorithm failed to converge.

    Carries the iteration count and the final residual so callers can report
    or retry with relaxed settings.
    """

    def __init__(self, message: str, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SimulationError(HydraulicsError):
    """Extended-period simulation failed (e.g. inconsistent timing)."""


class InpSyntaxError(HydraulicsError):
    """An EPANET INP file could not be parsed.

    Carries the 1-based line number of the offending line.
    """

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number
