"""Rule-based controls (EPANET ``[RULES]``-style).

Simple controls trigger on a single condition; rules combine several
premises with AND/OR and carry THEN/ELSE action lists:

    RULE nightly-refill
    IF   TANK T1 LEVEL BELOW 2.0
    AND  SYSTEM CLOCKTIME >= 22:00
    THEN PUMP PU1 STATUS IS OPEN
    ELSE PUMP PU1 STATUS IS CLOSED

Rules are built programmatically (:class:`Rule`) or parsed from the text
form (:func:`parse_rule`).  The extended-period simulator evaluates them
before each hydraulic step; their actions become status overrides, with
later rules taking precedence (EPANET's priority-free behaviour).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .components import LinkStatus
from .exceptions import SimulationError
from .units import parse_clock_time

#: Seconds in a day, for CLOCKTIME wrap-around.
DAY = 24 * 3600.0


class Comparator(enum.Enum):
    """Premise comparison operators."""

    BELOW = "BELOW"
    ABOVE = "ABOVE"
    LE = "<="
    GE = ">="
    EQ = "="

    def test(self, value: float, threshold: float) -> bool:
        """Apply this comparison to a value and threshold."""
        if self is Comparator.BELOW:
            return value < threshold
        if self is Comparator.ABOVE:
            return value > threshold
        if self is Comparator.LE:
            return value <= threshold
        if self is Comparator.GE:
            return value >= threshold
        return abs(value - threshold) < 1e-9


@dataclass(frozen=True)
class Premise:
    """One IF/AND/OR clause.

    Attributes:
        subject: "TANK", "JUNCTION" or "SYSTEM".
        identifier: component name ("" for SYSTEM).
        attribute: "LEVEL" (tanks), "PRESSURE" (junctions),
            "CLOCKTIME" or "TIME" (system).
        comparator: the comparison.
        threshold: level/pressure in metres, or time in seconds.
    """

    subject: str
    identifier: str
    attribute: str
    comparator: Comparator
    threshold: float

    def evaluate(
        self,
        time_seconds: float,
        tank_levels: dict[str, float],
        pressures: dict[str, float] | None,
    ) -> bool:
        """Whether the clause holds at the given system state."""
        subject = self.subject.upper()
        attribute = self.attribute.upper()
        if subject == "SYSTEM":
            if attribute == "CLOCKTIME":
                return self.comparator.test(time_seconds % DAY, self.threshold)
            if attribute == "TIME":
                return self.comparator.test(time_seconds, self.threshold)
            raise SimulationError(f"unknown SYSTEM attribute {self.attribute!r}")
        if subject == "TANK" and attribute == "LEVEL":
            value = tank_levels.get(self.identifier)
            return value is not None and self.comparator.test(value, self.threshold)
        if subject in ("JUNCTION", "NODE") and attribute == "PRESSURE":
            if not pressures:
                return False
            value = pressures.get(self.identifier)
            return value is not None and self.comparator.test(value, self.threshold)
        raise SimulationError(
            f"unsupported premise {self.subject} {self.attribute}"
        )


@dataclass(frozen=True)
class Action:
    """THEN/ELSE action: set a link's status."""

    link_name: str
    status: LinkStatus


@dataclass
class Rule:
    """IF premises (joined by AND/OR) THEN actions ELSE actions.

    Attributes:
        name: rule identifier (diagnostics only).
        premises: the clauses.
        conjunction: "AND" (all premises) or "OR" (any premise).
        then_actions: applied when the condition holds.
        else_actions: applied otherwise (may be empty).
    """

    name: str
    premises: list[Premise]
    then_actions: list[Action]
    else_actions: list[Action] = field(default_factory=list)
    conjunction: str = "AND"

    def evaluate(
        self,
        time_seconds: float,
        tank_levels: dict[str, float],
        pressures: dict[str, float] | None,
    ) -> list[Action]:
        """The action list this rule fires at the given state."""
        if not self.premises:
            return self.then_actions
        results = [
            p.evaluate(time_seconds, tank_levels, pressures) for p in self.premises
        ]
        fired = all(results) if self.conjunction.upper() == "AND" else any(results)
        return self.then_actions if fired else self.else_actions


def evaluate_rules(
    rules: list[Rule],
    time_seconds: float,
    tank_levels: dict[str, float],
    pressures: dict[str, float] | None = None,
) -> dict[str, LinkStatus]:
    """Status overrides from all fired rules (later rules win)."""
    overrides: dict[str, LinkStatus] = {}
    for rule in rules:
        for action in rule.evaluate(time_seconds, tank_levels, pressures):
            overrides[action.link_name] = action.status
    return overrides


def parse_rule(text: str) -> Rule:
    """Parse the EPANET-like text form shown in the module docstring.

    Raises:
        SimulationError: on malformed rule text.
    """
    name = "rule"
    premises: list[Premise] = []
    then_actions: list[Action] = []
    else_actions: list[Action] = []
    conjunction = "AND"
    current: list[Action] | None = None
    for raw in text.strip().splitlines():
        tokens = raw.split()
        if not tokens:
            continue
        keyword = tokens[0].upper()
        if keyword == "RULE":
            if len(tokens) < 2:
                raise SimulationError("RULE needs a name")
            name = tokens[1]
        elif keyword in ("IF", "AND", "OR"):
            if keyword == "OR":
                conjunction = "OR"
            premises.append(_parse_premise(tokens[1:], raw))
            current = None
        elif keyword == "THEN":
            then_actions.append(_parse_action(tokens[1:], raw))
            current = then_actions
        elif keyword == "ELSE":
            else_actions.append(_parse_action(tokens[1:], raw))
            current = else_actions
        elif current is not None:
            current.append(_parse_action(tokens, raw))
        else:
            raise SimulationError(f"cannot parse rule line {raw!r}")
    if not then_actions:
        raise SimulationError("rule has no THEN action")
    return Rule(
        name=name,
        premises=premises,
        then_actions=then_actions,
        else_actions=else_actions,
        conjunction=conjunction,
    )


def _parse_premise(tokens: list[str], raw: str) -> Premise:
    # Forms: TANK T1 LEVEL BELOW 2.0 | SYSTEM CLOCKTIME >= 6:00
    if len(tokens) < 4 and not (tokens and tokens[0].upper() == "SYSTEM"):
        raise SimulationError(f"bad premise {raw!r}")
    subject = tokens[0].upper()
    if subject == "SYSTEM":
        attribute = tokens[1].upper()
        comparator = _comparator(tokens[2], raw)
        threshold = parse_clock_time(" ".join(tokens[3:]))
        return Premise("SYSTEM", "", attribute, comparator, threshold)
    identifier = tokens[1]
    attribute = tokens[2].upper()
    comparator = _comparator(tokens[3], raw)
    try:
        threshold = float(tokens[4])
    except (IndexError, ValueError):
        raise SimulationError(f"bad premise threshold in {raw!r}") from None
    return Premise(subject, identifier, attribute, comparator, threshold)


def _parse_action(tokens: list[str], raw: str) -> Action:
    # Forms: PUMP PU1 STATUS IS OPEN | LINK P3 STATUS IS CLOSED
    upper = [t.upper() for t in tokens]
    try:
        status_index = upper.index("IS") + 1
        status = LinkStatus(upper[status_index])
        link_name = tokens[1]
    except (ValueError, IndexError):
        raise SimulationError(f"bad action {raw!r}") from None
    return Action(link_name=link_name, status=status)


def _comparator(token: str, raw: str) -> Comparator:
    try:
        return Comparator(token.upper())
    except ValueError:
        raise SimulationError(f"unknown comparator {token!r} in {raw!r}") from None
