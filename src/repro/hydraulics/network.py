"""The :class:`WaterNetwork` container.

A ``WaterNetwork`` holds every component of a distribution system plus the
simulation options, and offers the graph-level queries the rest of
AquaSCALE needs (shortest-path distances for Fig. 2, networkx export for
placement and feature extraction, validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx

from .components import (
    Curve,
    Junction,
    Link,
    LinkStatus,
    Node,
    Pattern,
    Pipe,
    Pump,
    Reservoir,
    Tank,
    Valve,
    ValveType,
)
from .exceptions import NetworkTopologyError


@dataclass
class SimulationOptions:
    """Timing and solver options for a network.

    Attributes:
        duration: total simulated time (s). 0 means single steady-state run.
        hydraulic_timestep: interval between hydraulic solutions (s); the
            paper uses this as the IoT sampling interval (15 min = 900 s).
        pattern_timestep: interval between pattern multipliers (s).
        demand_multiplier: global multiplier applied to all base demands.
        trials: maximum GGA iterations per solve.
        accuracy: convergence tolerance on relative flow change.
        headloss_model: "HW" (Hazen-Williams) or "DW" (Darcy-Weisbach).
        demand_model: "DDA" (demand-driven, EPANET classic) or "PDD"
            (pressure-driven: delivered demand follows the Wagner curve
            between ``minimum_pressure`` and ``required_pressure``).
        minimum_pressure: PDD — no water delivered at/below this head (m).
        required_pressure: PDD — full demand delivered at/above this (m).
    """

    duration: float = 0.0
    hydraulic_timestep: float = 900.0
    pattern_timestep: float = 3600.0
    demand_multiplier: float = 1.0
    trials: int = 100
    accuracy: float = 1e-4
    headloss_model: str = "HW"
    demand_model: str = "DDA"
    minimum_pressure: float = 0.0
    required_pressure: float = 20.0


class WaterNetwork:
    """A complete water distribution network model.

    Components are stored in insertion order; names are unique across nodes
    and unique across links (mirroring EPANET).
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self.options = SimulationOptions()
        self._nodes: dict[str, Node] = {}
        self._links: dict[str, Link] = {}
        self._patterns: dict[str, Pattern] = {}
        self._curves: dict[str, Curve] = {}
        self._adjacency_cache = None
        self._rcm_cache = None

    # ------------------------------------------------------------------
    # Component registration
    # ------------------------------------------------------------------
    def _register_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise NetworkTopologyError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._adjacency_cache = None
        self._rcm_cache = None

    def _register_link(self, link: Link) -> None:
        if link.name in self._links:
            raise NetworkTopologyError(f"duplicate link name {link.name!r}")
        for endpoint in (link.start_node, link.end_node):
            if endpoint not in self._nodes:
                raise NetworkTopologyError(
                    f"link {link.name!r} references unknown node {endpoint!r}"
                )
        if link.start_node == link.end_node:
            raise NetworkTopologyError(f"link {link.name!r} is a self-loop")
        self._links[link.name] = link
        self._adjacency_cache = None
        self._rcm_cache = None

    def add_junction(
        self,
        name: str,
        elevation: float = 0.0,
        base_demand: float = 0.0,
        demand_pattern: str | None = None,
        coordinates: tuple[float, float] = (0.0, 0.0),
        emitter_coefficient: float = 0.0,
    ) -> Junction:
        """Add a junction and return it."""
        junction = Junction(
            name=name,
            elevation=elevation,
            base_demand=base_demand,
            demand_pattern=demand_pattern,
            coordinates=coordinates,
            emitter_coefficient=emitter_coefficient,
        )
        self._register_node(junction)
        return junction

    def add_reservoir(
        self,
        name: str,
        base_head: float,
        head_pattern: str | None = None,
        coordinates: tuple[float, float] = (0.0, 0.0),
    ) -> Reservoir:
        """Add a fixed-head reservoir and return it."""
        reservoir = Reservoir(
            name=name,
            base_head=base_head,
            head_pattern=head_pattern,
            coordinates=coordinates,
        )
        self._register_node(reservoir)
        return reservoir

    def add_tank(
        self,
        name: str,
        elevation: float,
        init_level: float,
        min_level: float,
        max_level: float,
        diameter: float,
        coordinates: tuple[float, float] = (0.0, 0.0),
    ) -> Tank:
        """Add a cylindrical tank and return it."""
        tank = Tank(
            name=name,
            elevation=elevation,
            init_level=init_level,
            min_level=min_level,
            max_level=max_level,
            diameter=diameter,
            coordinates=coordinates,
        )
        self._register_node(tank)
        return tank

    def add_pipe(
        self,
        name: str,
        start_node: str,
        end_node: str,
        length: float = 100.0,
        diameter: float = 0.3,
        roughness: float = 100.0,
        minor_loss: float = 0.0,
        status: LinkStatus = LinkStatus.OPEN,
        check_valve: bool = False,
    ) -> Pipe:
        """Add a pipe and return it."""
        pipe = Pipe(
            name=name,
            start_node=start_node,
            end_node=end_node,
            initial_status=status,
            length=length,
            diameter=diameter,
            roughness=roughness,
            minor_loss=minor_loss,
            check_valve=check_valve,
        )
        self._register_link(pipe)
        return pipe

    def add_pump(
        self,
        name: str,
        start_node: str,
        end_node: str,
        curve_name: str | None = None,
        speed: float = 1.0,
        power: float | None = None,
        status: LinkStatus = LinkStatus.OPEN,
    ) -> Pump:
        """Add a pump and return it. The curve must already be registered."""
        if curve_name is not None and curve_name not in self._curves:
            raise NetworkTopologyError(
                f"pump {name!r} references unknown curve {curve_name!r}"
            )
        pump = Pump(
            name=name,
            start_node=start_node,
            end_node=end_node,
            initial_status=status,
            curve_name=curve_name,
            speed=speed,
            power=power,
        )
        self._register_link(pump)
        return pump

    def add_valve(
        self,
        name: str,
        start_node: str,
        end_node: str,
        valve_type: ValveType | str = ValveType.TCV,
        diameter: float = 0.3,
        setting: float = 0.0,
        minor_loss: float = 0.0,
        status: LinkStatus = LinkStatus.ACTIVE,
    ) -> Valve:
        """Add a control valve and return it."""
        valve = Valve(
            name=name,
            start_node=start_node,
            end_node=end_node,
            initial_status=status,
            valve_type=valve_type,
            diameter=diameter,
            setting=setting,
            minor_loss=minor_loss,
        )
        self._register_link(valve)
        return valve

    def add_pattern(self, name: str, multipliers: Iterable[float]) -> Pattern:
        """Register a demand/head pattern."""
        if name in self._patterns:
            raise NetworkTopologyError(f"duplicate pattern name {name!r}")
        pattern = Pattern(name=name, multipliers=list(multipliers))
        self._patterns[name] = pattern
        return pattern

    def add_curve(self, name: str, points: Iterable[tuple[float, float]]) -> Curve:
        """Register a curve (e.g. a pump head curve)."""
        if name in self._curves:
            raise NetworkTopologyError(f"duplicate curve name {name!r}")
        curve = Curve(name=name, points=list(points))
        self._curves[name] = curve
        return curve

    # ------------------------------------------------------------------
    # Lookup and iteration
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look up a node by name (raises NetworkTopologyError if absent)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkTopologyError(f"no node named {name!r}") from None

    def link(self, name: str) -> Link:
        """Look up a link by name (raises NetworkTopologyError if absent)."""
        try:
            return self._links[name]
        except KeyError:
            raise NetworkTopologyError(f"no link named {name!r}") from None

    def pattern(self, name: str) -> Pattern:
        """Look up a pattern by name (raises NetworkTopologyError if absent)."""
        try:
            return self._patterns[name]
        except KeyError:
            raise NetworkTopologyError(f"no pattern named {name!r}") from None

    def curve(self, name: str) -> Curve:
        """Look up a curve by name (raises NetworkTopologyError if absent)."""
        try:
            return self._curves[name]
        except KeyError:
            raise NetworkTopologyError(f"no curve named {name!r}") from None

    @property
    def nodes(self) -> dict[str, Node]:
        return self._nodes

    @property
    def links(self) -> dict[str, Link]:
        return self._links

    @property
    def patterns(self) -> dict[str, Pattern]:
        return self._patterns

    @property
    def curves(self) -> dict[str, Curve]:
        return self._curves

    def junctions(self) -> Iterator[Junction]:
        return (n for n in self._nodes.values() if isinstance(n, Junction))

    def reservoirs(self) -> Iterator[Reservoir]:
        return (n for n in self._nodes.values() if isinstance(n, Reservoir))

    def tanks(self) -> Iterator[Tank]:
        return (n for n in self._nodes.values() if isinstance(n, Tank))

    def pipes(self) -> Iterator[Pipe]:
        return (l for l in self._links.values() if isinstance(l, Pipe))

    def pumps(self) -> Iterator[Pump]:
        return (l for l in self._links.values() if isinstance(l, Pump))

    def valves(self) -> Iterator[Valve]:
        return (l for l in self._links.values() if isinstance(l, Valve))

    def junction_names(self) -> list[str]:
        return [n.name for n in self.junctions()]

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def link_names(self) -> list[str]:
        return list(self._links)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def describe(self) -> dict[str, int]:
        """Component counts, handy for matching the paper's Fig. 5 caption."""
        return {
            "nodes": self.num_nodes,
            "junctions": sum(1 for _ in self.junctions()),
            "reservoirs": sum(1 for _ in self.reservoirs()),
            "tanks": sum(1 for _ in self.tanks()),
            "links": self.num_links,
            "pipes": sum(1 for _ in self.pipes()),
            "pumps": sum(1 for _ in self.pumps()),
            "valves": sum(1 for _ in self.valves()),
        }

    # ------------------------------------------------------------------
    # Leak helpers (EPANET++ surface)
    # ------------------------------------------------------------------
    def set_leak(
        self,
        node_name: str,
        emitter_coefficient: float,
        emitter_exponent: float = 0.5,
    ) -> None:
        """Attach (or clear, with 0) a leak emitter to a junction."""
        node = self.node(node_name)
        if not isinstance(node, Junction):
            raise NetworkTopologyError(
                f"leaks attach to junctions; {node_name!r} is a {node.node_type}"
            )
        node.emitter_coefficient = float(emitter_coefficient)
        node.emitter_exponent = float(emitter_exponent)

    def clear_leaks(self) -> None:
        """Remove every leak emitter from the network."""
        for junction in self.junctions():
            junction.emitter_coefficient = 0.0

    def leaky_nodes(self) -> list[str]:
        """Names of junctions with an active emitter."""
        return [j.name for j in self.junctions() if j.emitter_coefficient > 0.0]

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Undirected multigraph view with pipe lengths as edge weights.

        Pumps and valves get a nominal near-zero length so they do not
        distort shortest-path distances.
        """
        graph = nx.MultiGraph()
        for node in self._nodes.values():
            graph.add_node(
                node.name,
                node_type=node.node_type,
                coordinates=node.coordinates,
                elevation=getattr(node, "elevation", getattr(node, "base_head", 0.0)),
            )
        for link in self._links.values():
            length = link.length if isinstance(link, Pipe) else 1e-3
            graph.add_edge(
                link.start_node,
                link.end_node,
                key=link.name,
                name=link.name,
                link_type=link.link_type,
                length=length,
            )
        return graph

    def junction_adjacency(self):
        """The cached undirected junction-junction CSR graph.

        Built by :func:`repro.networks.junction_adjacency` (conductance
        weights, directed half-edge arrays) on first use and memoised;
        registering any node or link invalidates the cache.  Leak
        emitters do not touch topology, so scenario injection keeps the
        cache warm.
        """
        if self._adjacency_cache is None:
            from ..networks.adjacency import junction_adjacency

            self._adjacency_cache = junction_adjacency(self)
        return self._adjacency_cache

    def rcm_permutation(self):
        """Cached reverse Cuthill–McKee ordering of the junctions.

        A fill-reducing/bandwidth-reducing permutation over the same
        junction order as :meth:`junction_adjacency` (whose CSR graph it
        is computed from).  The sparse Schur solver core folds it into
        its scatter map once per pattern build, so large-network solves
        assemble an already-banded matrix at zero per-iteration cost.
        Like the adjacency, it is invalidated whenever a node or link is
        registered.

        Returns:
            ``int64`` array ``perm`` with ``perm[k]`` = original junction
            index placed at position ``k``.
        """
        if self._rcm_cache is None:
            import numpy as np
            import scipy.sparse as sp
            from scipy.sparse.csgraph import reverse_cuthill_mckee

            adjacency = self.junction_adjacency()
            n = len(adjacency.indptr) - 1
            graph = sp.csr_matrix(
                (
                    np.ones(len(adjacency.indices)),
                    adjacency.indices,
                    adjacency.indptr,
                ),
                shape=(n, n),
            )
            self._rcm_cache = np.asarray(
                reverse_cuthill_mckee(graph, symmetric_mode=True),
                dtype=np.int64,
            )
        return self._rcm_cache

    def shortest_path_lengths(self, source: str) -> dict[str, float]:
        """Pipe-length shortest-path distance from ``source`` to all nodes.

        This is the distance notion used in the paper's Fig. 2 ("the
        distance between two adjacent nodes is the length of the connection
        pipeline").
        """
        graph = self.to_networkx()
        return nx.single_source_dijkstra_path_length(graph, source, weight="length")

    def validate(self) -> None:
        """Raise :class:`NetworkTopologyError` on structural problems.

        Checks: at least one fixed-head source, full connectivity from the
        sources to every node, every pump curve resolvable.
        """
        sources = [n.name for n in self._nodes.values() if isinstance(n, (Reservoir, Tank))]
        if not sources:
            raise NetworkTopologyError("network has no reservoir or tank")
        graph = self.to_networkx()
        reachable: set[str] = set()
        for source in sources:
            reachable |= nx.node_connected_component(graph, source)
        unreachable = set(self._nodes) - reachable
        if unreachable:
            sample = sorted(unreachable)[:5]
            raise NetworkTopologyError(
                f"{len(unreachable)} node(s) unreachable from any source, "
                f"e.g. {sample}"
            )
        for pump in self.pumps():
            if pump.curve_name is not None:
                self.curve(pump.curve_name)

    def copy(self) -> "WaterNetwork":
        """Deep copy; scenario injection mutates copies, never the original."""
        import copy as _copy

        return _copy.deepcopy(self)

    def __repr__(self) -> str:
        counts = self.describe()
        return (
            f"WaterNetwork({self.name!r}, nodes={counts['nodes']}, "
            f"links={counts['links']})"
        )
