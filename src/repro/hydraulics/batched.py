"""Scenario-axis-vectorized GGA Newton engine.

Dataset generation, telemetry candidate sweeps and robustness campaigns
all solve thousands of steady states *on the same network*: the topology,
the Jacobian sparsity pattern, the dense scatter layout and the status
machinery are identical across scenarios — only demands, emitters and
warm starts differ.  :class:`BatchedGGASolver` exploits that by running
Newton with stacked per-scenario state:

* ``(lanes, n_junctions)`` head arrays and ``(lanes, n_links)`` flow
  arrays — one *lane* per scenario;
* the headloss / emitter / PDD kernels shared with
  :class:`~repro.hydraulics.solver.GGASolver` evaluated on the whole
  stack at once;
* RHS and Schur-complement assembly through the same scatter maps,
  batched with 2-D ``np.add.at`` (whose C-order traversal reproduces the
  sequential per-lane accumulation order bit for bit);
* per-lane convergence masking: converged lanes retire from the active
  set and their state is frozen (never touched again) while stragglers
  keep iterating;
* status passes (check valves, pumps, PRVs) applied per lane between
  Newton runs, with lanes regrouped by status profile so each group's
  re-solve touches only the lanes whose statuses actually flipped.

Equivalence contract (the ``batched_vs_sequential`` oracle pins this):
on the dense linear-solve path the batched engine performs *the same
floating-point operations in the same order* as a sequential
per-scenario sweep, including one LAPACK ``dposv`` per lane per
iteration, so heads and flows match the sequential solver **bit for
bit** (tolerance 0.0).  On the sparse path (networks beyond
``DENSE_SOLVE_LIMIT``) lanes share the sequential solver's
cached-pattern Schur core; its tiered factorization reuse is
history-dependent, so results are pinned to ``<= 1e-8`` instead (the
core itself is exact to ``PCG_RTOL``).  Per-lane LAPACK solves are the
single-core compute floor at these sizes — a shared-factor multi-RHS
PCG was measured slower than one ``dposv`` per lane once lane states
diverge after the first Newton iteration — so the engine's win comes
from vectorizing everything *around* the linear solve and from skipping
per-scenario Python packaging (``package=False``).

Lanes the vectorized kernel cannot express — active PRVs (whose lagged
continuity flows are inherently scalar) and networks with FCVs (whose
throttling mutates shared link records) — transparently fall back to a
per-lane sequential solve with identical inputs, so ``solve_batch`` is
total: any scenario the sequential solver accepts, the batch accepts.

Errors are isolated per lane: one non-converging scenario marks only its
own lane (``BatchResult.errors``) and never poisons siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg.lapack import dposv as _dposv

from .components import LinkStatus, ValveType
from .exceptions import ConvergenceError, NetworkTopologyError
from .headloss import (
    dw_headloss_and_gradient_array,
    hw_headloss_and_gradient_array,
)
from .network import WaterNetwork
from .headloss import Q_LAMINAR
from .solver import (
    MAX_STATUS_PASSES,
    Q_PUMP_MIN,
    R_CLOSED,
    RHO_G,
    GGASolver,
    SteadyStateSolution,
    emitter_flow_and_gradient,
    pdd_delivery_and_gradient,
)
from .sparse import SingularSchurError


def _link_coefficients_column(record, speed: float, q: np.ndarray):
    """Per-lane ``_link_coefficients`` for one open pump/valve column.

    ``record``/``speed`` are constant across a lane group (statuses and
    speeds are part of the group key), so only the flow column varies.
    Valves vectorize exactly — their coefficients are multiplications
    only, so the array arithmetic is bit-identical to the scalar path.
    Pumps stay on the scalar :meth:`GGASolver._pump_coefficients` per
    lane: their head curve needs ``pow``, and NumPy's array power (an
    ``x*x`` fast path for exponent 2.0) differs from the scalar power
    (libm) by 1 ulp — a few scalar calls per pump column is the price of
    bit-identity, and networks carry few pumps.
    """
    if record.kind == "pump":
        f = np.empty(q.shape)
        g = np.empty(q.shape)
        for a in range(len(q)):
            f[a], g[a] = GGASolver._pump_coefficients(record, speed, q[a])
        return f, g
    assert record.kind == "valve"
    if record.valve_type is ValveType.TCV:
        minor = record.minor if record.minor > 0 else record.open_minor
    else:
        minor = record.open_minor
    minor = max(minor, 1e-3)
    aq = np.abs(q)
    f = minor * q * aq
    g = 2.0 * minor * aq
    laminar = aq < Q_LAMINAR
    if np.any(laminar):
        slope = 2.0 * minor * Q_LAMINAR
        f = np.where(laminar, q * slope, f)
        g = np.where(laminar, slope, g)
    return f, g


class _RankedScatter:
    """Batched scatter-add reproducing ``np.add.at`` bit for bit.

    ``np.add.at(out, cols, vals)`` accumulates duplicate buckets in
    element order but runs at interpreter-like speed (~20M elements/s);
    ``np.add.reduceat`` is fast but reassociates within segments.  This
    decomposes the column list by *occurrence rank* (the j-th time a
    bucket appears lands in level j): within one level every bucket is
    unique, so ``out[:, cols] += vals[:, members]`` is a well-defined
    vectorized fancy add, and running levels in rank order replays each
    bucket's contributions in exactly the element order ``np.add.at``
    would have used — same floats, same order, same bits, at numpy
    gather/scatter speed.  The level count equals the largest bucket
    multiplicity (the maximum node degree for nodal scatters).
    """

    def __init__(self, cols: np.ndarray):
        cols = np.asarray(cols, dtype=np.int64)
        rank = np.empty(len(cols), dtype=np.int64)
        seen: dict[int, int] = {}
        for i, c in enumerate(cols.tolist()):
            r = seen.get(c, 0)
            rank[i] = r
            seen[c] = r + 1
        self.uniq = np.unique(cols)
        self.levels: list[tuple[np.ndarray, np.ndarray]] = []
        max_rank = int(rank.max()) if len(cols) else -1
        for r in range(max_rank + 1):
            members = np.nonzero(rank == r)[0]
            self.levels.append((cols[members], members))

    def add_into(self, out: np.ndarray, vals: np.ndarray) -> None:
        """``out[:, cols] += vals`` with add.at's accumulation order."""
        for cols_r, members_r in self.levels:
            out[:, cols_r] += vals[:, members_r]


@dataclass(frozen=True)
class BatchIterationRecord:
    """One Newton iteration of one lane group, as seen by a trace."""

    status_pass: int
    iteration: int
    lanes: tuple[int, ...]
    heads: np.ndarray
    flows: np.ndarray


@dataclass
class BatchTrace:
    """Opt-in iteration trace for convergence-mask and status-pass tests.

    ``records`` carries a full ``(S, n)`` / ``(S, m)`` snapshot after
    every group Newton iteration together with the lane ids that were
    *active* during it; a lane retired from the active set must show
    bit-frozen rows across all later records.  ``resolves`` records, for
    every status pass after the first, exactly which lanes were
    re-solved — the masked-re-solve assertion.
    """

    records: list[BatchIterationRecord] = field(default_factory=list)
    resolves: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)

    def lanes_active_at(self, status_pass: int, iteration: int) -> tuple[int, ...]:
        """Lane indices still iterating at ``(status_pass, iteration)``."""
        for record in self.records:
            if record.status_pass == status_pass and record.iteration == iteration:
                return record.lanes
        return ()


@dataclass
class BatchResult:
    """Stacked solutions of one :meth:`BatchedGGASolver.solve_batch` call.

    ``heads``/``flows`` are ``(S, n_junctions)`` / ``(S, n_links)``
    stacks in lane order; failed lanes hold NaN rows and a
    :class:`~repro.hydraulics.exceptions.ConvergenceError` in
    ``errors``.  ``solutions`` holds per-lane
    :class:`~repro.hydraulics.solver.SteadyStateSolution` objects when
    the batch was run with ``package=True`` (None entries for failed
    lanes), else None.
    """

    heads: np.ndarray
    flows: np.ndarray
    iterations: np.ndarray
    residuals: np.ndarray
    converged: np.ndarray
    errors: list[ConvergenceError | None]
    solutions: list[SteadyStateSolution | None] | None = None

    @property
    def n_lanes(self) -> int:
        return len(self.errors)

    @property
    def all_converged(self) -> bool:
        return bool(np.all(self.converged)) if self.n_lanes else True

    def first_error(self) -> ConvergenceError | None:
        """The lowest failing lane's error, or None if every lane converged."""
        for error in self.errors:
            if error is not None:
                return error
        return None

    def require(self) -> list[SteadyStateSolution]:
        """Per-lane solutions, raising the first lane's error if any failed.

        Matches the observable behaviour of a sequential sweep: the
        exception a serial ``for scenario: solve(...)`` loop would have
        raised (the lowest failing lane's) is the one the caller sees.
        """
        error = self.first_error()
        if error is not None:
            raise error
        if self.solutions is None:
            raise RuntimeError(
                "solve_batch(package=False) result has no solution objects"
            )
        return list(self.solutions)  # type: ignore[arg-type]


def _per_lane(value, n_lanes: int, *, shared_types: tuple) -> list:
    """Normalise a shared-or-per-lane argument to one entry per lane."""
    if value is None or isinstance(value, shared_types):
        return [value] * n_lanes
    entries = list(value)
    if len(entries) != n_lanes:
        raise NetworkTopologyError(
            f"per-lane argument has {len(entries)} entries for {n_lanes} lanes"
        )
    return entries


class BatchedGGASolver:
    """Batched steady-state solves sharing one network's structure.

    Composes a :class:`~repro.hydraulics.solver.GGASolver` (pass
    ``solver=`` to share an existing one, e.g. the telemetry engine's,
    so Schur patterns, RCM orderings and dense layouts are computed
    once per network and reused everywhere).

    Args:
        network: the network to solve on.
        linear_solver: forwarded to the composed ``GGASolver`` when one
            is built here; ignored when ``solver`` is given.
        solver: an existing sequential solver to share structure with.
    """

    def __init__(
        self,
        network: WaterNetwork,
        linear_solver: str = "auto",
        solver: GGASolver | None = None,
    ):
        if solver is None:
            solver = GGASolver(network, linear_solver)
        self._seq = solver
        self.network = solver.network
        seq = solver
        n = seq._n_junctions
        m = len(seq._records)
        self._n = n
        self._m = m
        start_idx = seq._start_jidx
        end_idx = seq._end_jidx
        self._s_mask = start_idx >= 0
        self._e_mask = end_idx >= 0
        self._both = self._s_mask & self._e_mask
        self._f2_start_cols = start_idx[self._s_mask]
        self._f2_end_cols = end_idx[self._e_mask]
        # Nodal scatter (F2 and A21*inv_g*F1): start contributions then
        # end contributions, exactly the order of the sequential
        # solver's two scatter-adds, so each node bucket accumulates in
        # the same element order.
        s_links = np.nonzero(self._s_mask)[0]
        e_links = np.nonzero(self._e_mask)[0]
        self._node_src = np.concatenate([s_links, e_links])
        self._node_sign = np.concatenate(
            [-np.ones(len(s_links)), np.ones(len(e_links))]
        )
        self._node_scatter = _RankedScatter(
            np.concatenate([self._f2_start_cols, self._f2_end_cols])
        )
        # Dense Schur layout: flat indices identical to the sequential
        # solver's, concatenated in its exact scatter order (ss, ee, se,
        # es) so the ranked scatter reproduces the four sequential
        # scatter-adds' per-bucket accumulation order.
        if n:
            flat_ss = start_idx[self._s_mask] * (n + 1)
            flat_ee = end_idx[self._e_mask] * (n + 1)
            flat_se = start_idx[self._both] * n + end_idx[self._both]
            flat_es = end_idx[self._both] * n + start_idx[self._both]
            self._dense_cols = np.concatenate([flat_ss, flat_ee, flat_se, flat_es])
            self._flat_diag = np.arange(n) * (n + 1)
            both_links = np.nonzero(self._both)[0]
            self._dense_src = np.concatenate(
                [s_links, e_links, both_links, both_links]
            )
            self._dense_sign = np.concatenate(
                [
                    np.ones(len(s_links)),
                    np.ones(len(e_links)),
                    -np.ones(len(both_links)),
                    -np.ones(len(both_links)),
                ]
            )
            self._dense_scatter = _RankedScatter(self._dense_cols)
            # Columns that must be reset each iteration: every scatter
            # bucket plus every diagonal (the sequential path zeroes the
            # whole matrix; untouched columns stay zero from allocation).
            self._dense_reset = np.union1d(self._dense_cols, self._flat_diag)
        else:
            self._dense_cols = np.zeros(0, dtype=np.int64)
            self._flat_diag = np.zeros(0, dtype=np.int64)
            self._dense_src = np.zeros(0, dtype=np.int64)
            self._dense_sign = np.zeros(0)
            self._dense_scatter = _RankedScatter(self._dense_cols)
            self._dense_reset = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def solve_batch(
        self,
        demands=None,
        fixed_heads=None,
        emitters=None,
        status_overrides=None,
        pump_speeds=None,
        trials: int | None = None,
        accuracy: float | None = None,
        warm_starts=None,
        n_lanes: int | None = None,
        package: bool = True,
        trace: BatchTrace | None = None,
    ) -> BatchResult:
        """Solve a stack of scenarios as one vectorized Newton run.

        Each argument accepts either one shared value (applied to every
        lane; the sequential ``solve`` types) or a sequence with one
        entry per lane.  ``demands`` additionally accepts an ``(S, n)``
        array of junction-order rows, and ``emitters`` an ``(ec, beta)``
        pair of ``(S, n)`` arrays.  ``n_lanes`` is required when every
        argument is shared (nothing else determines the batch size).

        Per-lane failures (non-convergence, singular systems) are
        captured in ``BatchResult.errors`` — sibling lanes always
        complete.  Call :meth:`BatchResult.require` for sequential-sweep
        raise semantics.
        """
        seq = self._seq
        demand_rows, n_lanes, demand_stack = self._demand_rows(demands, n_lanes)
        emitter_rows, emitter_stack = self._emitter_rows(emitters, n_lanes)
        fixed_rows = _per_lane(fixed_heads, n_lanes, shared_types=(dict,))
        status_rows = _per_lane(status_overrides, n_lanes, shared_types=(dict,))
        speed_rows = _per_lane(pump_speeds, n_lanes, shared_types=(dict,))
        warm_rows = _per_lane(
            warm_starts, n_lanes, shared_types=(SteadyStateSolution,)
        )

        n, m = self._n, self._m
        result = BatchResult(
            heads=np.full((n_lanes, n), np.nan),
            flows=np.full((n_lanes, m), np.nan),
            iterations=np.zeros(n_lanes, dtype=np.int64),
            residuals=np.full(n_lanes, np.inf),
            converged=np.zeros(n_lanes, dtype=bool),
            errors=[None] * n_lanes,
            solutions=[None] * n_lanes if package else None,
        )
        if n_lanes == 0:
            return result

        options = seq.network.options
        max_trials = trials if trials is not None else options.trials
        tol = accuracy if accuracy is not None else options.accuracy
        pdd = options.demand_model.upper() == "PDD"

        # -- per-lane input normalisation through the sequential helpers
        # (same validation, same arrays).  Stacked/shared inputs take
        # vectorized fast paths whose arithmetic is elementwise identical
        # to the per-lane helper calls.
        records = seq._records
        for i in seq._fcv_positions:
            records[i].minor = 0.0  # matches the sequential per-solve reset
        if demand_stack is not None:
            demand = demand_stack * options.demand_multiplier
        else:
            demand = np.empty((n_lanes, n))
            for k in range(n_lanes):
                demand[k] = seq._demand_vector(demand_rows[k])
        if emitter_stack is not None:
            ec, beta = emitter_stack
        else:
            ec = np.empty((n_lanes, n))
            beta = np.empty((n_lanes, n))
            for k in range(n_lanes):
                ec[k], beta[k] = seq._emitter_arrays(emitter_rows[k])
        fixed_arr = np.empty((n_lanes, len(seq._fixed_names)))
        if fixed_heads is None or isinstance(fixed_heads, dict):
            head_fixed = seq._fixed_head_map(fixed_heads)
            head_fixed_maps = [head_fixed] * n_lanes
            fixed_arr[:] = [head_fixed[name] for name in seq._fixed_names]
        else:
            head_fixed_maps = []
            for k in range(n_lanes):
                head_fixed = seq._fixed_head_map(fixed_rows[k])
                head_fixed_maps.append(head_fixed)
                fixed_arr[k] = [head_fixed[name] for name in seq._fixed_names]
        statuses_rows: list[list[LinkStatus]] = []
        speeds_rows: list[list[float]] = []
        for k in range(n_lanes):
            statuses = seq._status_template.copy()
            if status_rows[k]:
                for name, status in status_rows[k].items():
                    index = seq._link_index.get(name)
                    if index is not None:
                        statuses[index] = status
            statuses_rows.append(statuses)
            speeds = seq._speed_template.copy()
            if speed_rows[k]:
                for i in seq._pump_positions:
                    if records[i].name in speed_rows[k]:
                        speeds[i] = speed_rows[k][records[i].name]
            speeds_rows.append(speeds)
        heads = np.empty((n_lanes, n))
        flows = np.empty((n_lanes, m))
        if isinstance(warm_starts, SteadyStateSolution):
            warm = warm_starts
            if len(warm.junction_heads) != n or len(warm.link_flows) != m:
                raise NetworkTopologyError(
                    "warm_start solution does not match this network's shape"
                )
            heads[:] = warm.junction_heads
            flows[:] = warm.link_flows
        else:
            for k in range(n_lanes):
                warm = warm_rows[k]
                if warm is not None:
                    if len(warm.junction_heads) != n or len(warm.link_flows) != m:
                        raise NetworkTopologyError(
                            "warm_start solution does not match this "
                            "network's shape"
                        )
                    heads[k] = warm.junction_heads
                    flows[k] = warm.link_flows
                else:
                    head_fixed = head_fixed_maps[k]
                    heads[k] = np.maximum(
                        float(np.mean(list(head_fixed.values())))
                        if head_fixed
                        else 50.0,
                        seq._elevation_arr + 10.0,
                    )
                    flows[k] = seq._initial_flow_template
                    for i in seq._pump_positions:
                        flows[k, i] = seq._initial_flow(records[i], speeds_rows[k][i])

        # -- lanes the vectorized kernel cannot express run sequentially --
        fallback = set()
        if seq._fcv_positions or seq._linear_solver == "legacy" or n == 0:
            fallback.update(range(n_lanes))
        else:
            for k in range(n_lanes):
                if any(
                    statuses_rows[k][i] is LinkStatus.ACTIVE
                    for i in seq._prv_positions
                ):
                    fallback.add(k)

        active = [k for k in range(n_lanes) if k not in fallback]
        total_iterations = np.zeros(n_lanes, dtype=np.int64)
        live = set(active)
        for status_pass in range(MAX_STATUS_PASSES):
            if not live:
                break
            groups: dict[tuple, list[int]] = {}
            for k in sorted(live):
                # id() of interned enum members: hashing 118-element
                # LinkStatus tuples through enum.__hash__ dominated the
                # profile; identity keys are equivalent and C-speed.
                key = (tuple(map(id, statuses_rows[k])), tuple(speeds_rows[k]))
                groups.setdefault(key, []).append(k)
            if trace is not None and status_pass > 0:
                trace.resolves.append(
                    (status_pass, tuple(sorted(live)))
                )
            pass_converged: dict[int, bool] = {}
            for lanes in groups.values():
                self._newton_group(
                    lanes,
                    statuses_rows[lanes[0]],
                    speeds_rows[lanes[0]],
                    heads,
                    flows,
                    demand,
                    fixed_arr,
                    ec,
                    beta,
                    max_trials,
                    tol,
                    pdd,
                    status_pass,
                    total_iterations,
                    result,
                    pass_converged,
                    trace,
                )
            any_changed = False
            for k in sorted(live):
                if result.errors[k] is not None:
                    live.discard(k)
                    continue
                changed = seq._update_statuses(
                    records, statuses_rows[k], flows[k], heads[k], fixed_arr[k]
                )
                if changed:
                    any_changed = True
                    if any(
                        statuses_rows[k][i] is LinkStatus.ACTIVE
                        for i in seq._prv_positions
                    ):
                        # The lane entered PRV-regulating territory; its
                        # lagged-flow bookkeeping is scalar, so replay the
                        # whole lane sequentially from its original inputs.
                        fallback.add(k)
                        live.discard(k)
                    continue
                live.discard(k)
                if not pass_converged.get(k, False):
                    result.errors[k] = ConvergenceError(
                        "GGA failed to converge "
                        f"(residual {result.residuals[k]:.3e} m^3/s)",
                        iterations=int(total_iterations[k]),
                        residual=float(result.residuals[k]),
                    )
                else:
                    result.converged[k] = True
                    result.iterations[k] = total_iterations[k]
            if any_changed:
                # Status flips change conductances by orders of magnitude;
                # cached factorizations stop being useful preconditioners.
                for core in seq._schur_cache.values():
                    core.invalidate()
        for k in sorted(live):
            # Lanes still flipping statuses after MAX_STATUS_PASSES: like
            # the sequential solver, succeed iff the final Newton run
            # converged (with whatever statuses it last had).
            if pass_converged.get(k, False):
                result.converged[k] = True
                result.iterations[k] = total_iterations[k]
            elif result.errors[k] is None:
                result.errors[k] = ConvergenceError(
                    "GGA failed to converge "
                    f"(residual {result.residuals[k]:.3e} m^3/s)",
                    iterations=int(total_iterations[k]),
                    residual=float(result.residuals[k]),
                )

        # -- package converged vectorized lanes --
        need_package = package or seq.audit is not None
        for k in active:
            if not result.converged[k] or k in fallback:
                continue
            if need_package:
                solution = seq._package(
                    records,
                    statuses_rows[k],
                    heads[k],
                    flows[k],
                    demand[k],
                    head_fixed_maps[k],
                    ec[k],
                    beta[k],
                    int(total_iterations[k]),
                    float(result.residuals[k]),
                    True,
                )
                if result.solutions is not None:
                    result.solutions[k] = solution
                if seq.audit is not None:
                    seq.audit.observe(seq, solution, emitters=(ec[k], beta[k]))
            result.heads[k] = heads[k]
            result.flows[k] = flows[k]

        # -- sequential fallback lanes (active PRVs, FCV networks, legacy) --
        for k in sorted(fallback):
            try:
                solution = seq.solve(
                    demands=demand_rows[k],
                    fixed_heads=fixed_rows[k],
                    emitters=emitter_rows[k],
                    status_overrides=status_rows[k],
                    pump_speeds=speed_rows[k],
                    trials=trials,
                    accuracy=accuracy,
                    warm_start=warm_rows[k],
                )
            except ConvergenceError as exc:
                result.errors[k] = exc
                result.converged[k] = False
                continue
            result.heads[k] = solution.junction_heads
            result.flows[k] = solution.link_flows
            result.iterations[k] = solution.iterations
            result.residuals[k] = solution.residual
            result.converged[k] = True
            if result.solutions is not None:
                result.solutions[k] = solution
        return result

    # ------------------------------------------------------------------
    def _demand_rows(self, demands, n_lanes):
        """Split ``demands`` into per-lane specs + lane count + stacked form.

        The third return is the validated ``(S, n)`` float stack when the
        caller passed one (the vectorized normalisation fast path), else
        None.
        """
        rows: list
        stacked = None
        if isinstance(demands, np.ndarray) and demands.ndim == 2:
            if demands.shape[1] != self._n:
                raise NetworkTopologyError(
                    f"demand stack has shape {demands.shape}, expected "
                    f"(lanes, {self._n}) in junction_names order"
                )
            stacked = demands.astype(float)
            rows = [demands[k] for k in range(demands.shape[0])]
        elif demands is None or isinstance(demands, (dict, np.ndarray)):
            rows = None  # shared; resolved below
        else:
            rows = list(demands)
        if rows is not None:
            if n_lanes is not None and len(rows) != n_lanes:
                raise NetworkTopologyError(
                    f"demands has {len(rows)} lanes, n_lanes={n_lanes}"
                )
            return rows, len(rows), stacked
        if n_lanes is None:
            raise NetworkTopologyError(
                "n_lanes is required when no argument is per-lane"
            )
        return [demands] * n_lanes, n_lanes, None

    def _emitter_rows(self, emitters, n_lanes):
        """Per-lane emitter specs + the stacked ``(ec, beta)`` fast path."""
        if isinstance(emitters, tuple) and len(emitters) == 2:
            ec, beta = np.asarray(emitters[0]), np.asarray(emitters[1])
            if ec.ndim == 2:
                if ec.shape != (n_lanes, self._n) or beta.shape != ec.shape:
                    raise NetworkTopologyError(
                        "stacked emitter arrays must both have shape "
                        f"({n_lanes}, {self._n}) in junction_names order"
                    )
                rows = [(ec[k], beta[k]) for k in range(ec.shape[0])]
                return rows, (ec.astype(float), beta.astype(float))
            return [emitters] * n_lanes, None
        return _per_lane(emitters, n_lanes, shared_types=(dict,)), None

    # ------------------------------------------------------------------
    def _newton_group(
        self,
        lanes: list[int],
        statuses: list[LinkStatus],
        speeds: list[float],
        heads_all: np.ndarray,
        flows_all: np.ndarray,
        demand_all: np.ndarray,
        fixed_all: np.ndarray,
        ec_all: np.ndarray,
        beta_all: np.ndarray,
        max_trials: int,
        tol: float,
        pdd: bool,
        status_pass: int,
        total_iterations: np.ndarray,
        result: BatchResult,
        pass_converged: dict[int, bool],
        trace: BatchTrace | None,
    ) -> None:
        """One Newton run over a group of lanes sharing a status profile.

        Mirrors ``GGASolver._newton`` with a leading lane axis; lanes
        retire from the active set as they converge (their rows in
        ``heads_all``/``flows_all`` are written back once and never
        touched again) or fail (their error is recorded and siblings
        continue).
        """
        seq = self._seq
        n, m = self._n, self._m
        start_idx = seq._start_jidx
        end_idx = seq._end_jidx
        s_mask, e_mask, both = self._s_mask, self._e_mask, self._both
        elevations = seq._elevation_arr
        options = seq.network.options

        lane_ids = np.array(lanes, dtype=np.int64)
        heads = heads_all[lane_ids].copy()
        flows = flows_all[lane_ids].copy()
        demand = demand_all[lane_ids]
        ec = ec_all[lane_ids]
        beta = beta_all[lane_ids]
        fixed = fixed_all[lane_ids]
        sf = seq._start_fidx
        ef = seq._end_fidx
        start_fixed = np.where(
            sf >= 0, fixed[:, np.maximum(sf, 0)], 0.0
        )
        end_fixed = np.where(ef >= 0, fixed[:, np.maximum(ef, 0)], 0.0)

        # Loop-invariant status partition (statuses are frozen within a
        # Newton run), matching the sequential masks.
        kind = seq._kind_codes
        closed = np.fromiter(
            (status is LinkStatus.CLOSED for status in statuses), bool, m
        )
        pipe_open = ~closed & (kind == 0)
        other_pos = np.nonzero(~closed & (kind != 0))[0]
        use_dense = seq._dense

        total_demand_scale = np.sum(np.abs(demand), axis=1) + 1e-6
        n_active = len(lanes)
        iters_here = np.zeros(n_active, dtype=np.int64)
        residual = np.full(n_active, np.inf)

        def retire(local: int, *, converged: bool, error=None) -> None:
            lane = int(lane_ids[local])
            heads_all[lane] = heads[local]
            flows_all[lane] = flows[local]
            total_iterations[lane] += iters_here[local]
            result.residuals[lane] = residual[local]
            if error is not None:
                result.errors[lane] = error
            pass_converged[lane] = converged

        active = np.arange(n_active)
        dense_buf: np.ndarray | None = None

        for iteration in range(1, max_trials + 1):
            if active.size == 0:
                break
            iters_here[active] = iteration
            q = flows[active]
            A = active.size

            # -- per-link headloss coefficients --
            f_vals = np.empty((A, m))
            g_vals = np.empty((A, m))
            if closed.any():
                f_vals[:, closed] = R_CLOSED * q[:, closed]
                g_vals[:, closed] = R_CLOSED
            if pipe_open.any():
                rows = np.nonzero(pipe_open)[0]
                if seq._use_darcy_weisbach:
                    f, g = dw_headloss_and_gradient_array(
                        q[:, rows],
                        seq._pipe_len[rows],
                        seq._pipe_diam[rows],
                        seq._pipe_rough[rows],
                        seq._pipe_minor[rows],
                    )
                else:
                    f, g = hw_headloss_and_gradient_array(
                        q[:, rows], seq._pipe_res[rows], seq._pipe_minor[rows]
                    )
                f_vals[:, rows] = f
                g_vals[:, rows] = g
            for pos in other_pos:
                i = int(pos)
                f_vals[:, i], g_vals[:, i] = _link_coefficients_column(
                    seq._records[i], speeds[i], q[:, i]
                )
            g_vals = np.maximum(g_vals, 1e-10)
            inv_g = 1.0 / g_vals

            h = heads[active]
            h_start = np.where(
                s_mask, h[:, np.maximum(start_idx, 0)], start_fixed[active]
            )
            h_end = np.where(
                e_mask, h[:, np.maximum(end_idx, 0)], end_fixed[active]
            )
            f1 = f_vals - (h_start - h_end)

            pressure = h - elevations
            em_flow, em_grad = emitter_flow_and_gradient(
                pressure, ec[active], beta[active]
            )
            if pdd:
                delivered, pdd_grad = pdd_delivery_and_gradient(
                    pressure,
                    demand[active],
                    options.minimum_pressure,
                    options.required_pressure,
                )
            else:
                delivered = demand[active]
                pdd_grad = np.zeros((A, n))

            # Mass residual F2 = A21 q - delivered - emitter; the ranked
            # scatter replays the sequential per-bucket accumulation
            # order (see _RankedScatter).
            f2 = -delivered - em_flow
            self._node_scatter.add_into(
                f2, self._node_sign * q[:, self._node_src]
            )
            residual[active] = np.max(np.abs(f2), axis=1)

            diag_extra = em_grad + pdd_grad
            contrib = inv_g * f1
            a21f1 = np.zeros((A, n))
            self._node_scatter.add_into(
                a21f1, self._node_sign * contrib[:, self._node_src]
            )
            rhs = f2 - a21f1

            # -- linear solve: dh per lane --
            failed: dict[int, ConvergenceError] = {}
            if use_dense:
                dh = np.empty((A, n))
                if dense_buf is None or dense_buf.shape[0] < A:
                    dense_buf = np.zeros((A, n * n))
                A_flat = dense_buf[:A]
                # Equivalent to the sequential full-matrix zeroing:
                # untouched columns are zero from allocation and
                # never written.
                A_flat[:, self._dense_reset] = 0.0
                self._dense_scatter.add_into(
                    A_flat, self._dense_sign * inv_g[:, self._dense_src]
                )
                A_flat[:, self._flat_diag] += diag_extra + 1e-12
                for a in range(A):
                    matrix = A_flat[a].reshape(n, n)
                    _, x, info = _dposv(matrix, rhs[a], lower=1)
                    if info != 0:
                        try:
                            x = np.linalg.solve(matrix, rhs[a])
                        except np.linalg.LinAlgError as exc:
                            failed[a] = ConvergenceError(
                                f"GGA linear solve failed: {exc}",
                                iteration,
                                float(residual[active[a]]),
                            )
                            continue
                    dh[a] = x
            else:
                dh = np.empty((A, n))
                core = seq._schur_core((), start_idx, end_idx)
                for a in range(A):
                    try:
                        dh[a] = core.solve(
                            inv_g[a],
                            diag_extra[a],
                            rhs[a],
                            anchor=iteration == 1,
                        )
                    except SingularSchurError as exc:
                        failed[a] = ConvergenceError(
                            f"GGA linear solve failed: {exc}",
                            iteration,
                            float(residual[active[a]]),
                        )

            bad = ~np.all(np.isfinite(dh), axis=1)
            for a in np.nonzero(bad)[0]:
                if int(a) not in failed:
                    failed[int(a)] = ConvergenceError(
                        "GGA linear solve produced non-finite heads",
                        iteration,
                        float(residual[active[a]]),
                    )
            if pdd:
                np.clip(dh, -50.0, 50.0, out=dh)

            # Failed lanes keep their pre-iteration state (the update
            # below is masked away from them) and retire with an error.
            ok = np.ones(A, dtype=bool)
            for a in failed:
                ok[a] = False

            heads_new = h[ok] + dh[ok]
            heads[active[ok]] = heads_new
            dh_ok = dh[ok]
            dh_start = np.where(
                s_mask, dh_ok[:, np.maximum(start_idx, 0)], 0.0
            )
            dh_end = np.where(e_mask, dh_ok[:, np.maximum(end_idx, 0)], 0.0)
            dq = -inv_g[ok] * (f1[ok] + dh_end - dh_start)
            new_flows = q[ok] + dq
            flow_change = np.sum(np.abs(new_flows - q[ok]), axis=1)
            flow_scale = np.sum(np.abs(new_flows), axis=1) + 1e-9
            flows[active[ok]] = new_flows
            conv_now = (flow_change / flow_scale < tol) & (
                residual[active[ok]]
                < 1e-6 + 1e-4 * total_demand_scale[active[ok]]
            )

            if trace is not None:
                lanes_now = tuple(int(lane_ids[a]) for a in active)
                snap_h = heads_all.copy()
                snap_f = flows_all.copy()
                snap_h[lane_ids] = heads
                snap_f[lane_ids] = flows
                trace.records.append(
                    BatchIterationRecord(
                        status_pass=status_pass,
                        iteration=iteration,
                        lanes=lanes_now,
                        heads=snap_h,
                        flows=snap_f,
                    )
                )

            # -- retire failed and converged lanes, compact the rest --
            keep = np.ones(A, dtype=bool)
            for a, error in failed.items():
                retire(int(active[a]), converged=False, error=error)
                keep[a] = False
            ok_locals = active[ok]
            for pos, local in enumerate(ok_locals):
                if conv_now[pos]:
                    retire(int(local), converged=True)
            keep[ok] &= ~conv_now
            active = active[keep]

        for local in active:
            # max_trials exhausted: not converged (the status pass may
            # still flip something and trigger another run).
            retire(int(local), converged=False)
