"""Time-series results of an extended-period simulation.

Results are stored as dense numpy arrays (time x component) plus
name -> column maps, which is what the sensing layer samples from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimulationResults:
    """Hydraulic time series for every node and link.

    Attributes:
        times: simulation timestamps (s), shape ``(T,)``.
        node_names: column order of the node arrays.
        link_names: column order of the link arrays.
        head: total head (m), shape ``(T, n_nodes)``.
        pressure: pressure head (m), shape ``(T, n_nodes)``.
        demand: consumer demand (m^3/s), shape ``(T, n_nodes)``.
        leak_flow: emitter outflow (m^3/s), shape ``(T, n_nodes)``.
        flow: signed link flow (m^3/s), shape ``(T, n_links)``.
        tank_level: level (m) for tank columns, NaN elsewhere.
    """

    times: np.ndarray
    node_names: list[str]
    link_names: list[str]
    head: np.ndarray
    pressure: np.ndarray
    demand: np.ndarray
    leak_flow: np.ndarray
    flow: np.ndarray
    tank_level: np.ndarray
    _node_index: dict[str, int] = field(init=False, repr=False)
    _link_index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._node_index = {n: i for i, n in enumerate(self.node_names)}
        self._link_index = {n: i for i, n in enumerate(self.link_names)}

    @property
    def n_timesteps(self) -> int:
        return len(self.times)

    def node_column(self, name: str) -> int:
        return self._node_index[name]

    def link_column(self, name: str) -> int:
        return self._link_index[name]

    def pressure_at(self, node: str) -> np.ndarray:
        """Pressure-head time series (m) for one node."""
        return self.pressure[:, self.node_column(node)]

    def head_at(self, node: str) -> np.ndarray:
        """Total-head time series (m) for one node."""
        return self.head[:, self.node_column(node)]

    def flow_at(self, link: str) -> np.ndarray:
        """Signed flow time series (m^3/s) for one link."""
        return self.flow[:, self.link_column(link)]

    def leak_at(self, node: str) -> np.ndarray:
        """Emitter-outflow time series (m^3/s) for one node."""
        return self.leak_flow[:, self.node_column(node)]

    def time_index(self, time_seconds: float) -> int:
        """Index of the recorded timestep closest to ``time_seconds``."""
        return int(np.argmin(np.abs(self.times - time_seconds)))

    def total_water_loss(self) -> float:
        """Volume of water lost through leaks over the run (m^3)."""
        if self.n_timesteps < 2:
            return 0.0
        step = float(np.median(np.diff(self.times)))
        return float(np.sum(self.leak_flow) * step)


class ResultsBuilder:
    """Accumulates per-timestep solutions into a SimulationResults."""

    def __init__(self, node_names: list[str], link_names: list[str]):
        self.node_names = list(node_names)
        self.link_names = list(link_names)
        self._times: list[float] = []
        self._head: list[np.ndarray] = []
        self._pressure: list[np.ndarray] = []
        self._demand: list[np.ndarray] = []
        self._leak: list[np.ndarray] = []
        self._flow: list[np.ndarray] = []
        self._level: list[np.ndarray] = []

    def append(
        self,
        time_seconds: float,
        head: dict[str, float],
        pressure: dict[str, float],
        demand: dict[str, float],
        leak: dict[str, float],
        flow: dict[str, float],
        tank_level: dict[str, float],
    ) -> None:
        """Record one timestep's solution (values keyed by component name)."""
        self._times.append(time_seconds)
        self._head.append(np.array([head[n] for n in self.node_names]))
        self._pressure.append(np.array([pressure[n] for n in self.node_names]))
        self._demand.append(np.array([demand[n] for n in self.node_names]))
        self._leak.append(np.array([leak[n] for n in self.node_names]))
        self._flow.append(np.array([flow[n] for n in self.link_names]))
        self._level.append(
            np.array([tank_level.get(n, np.nan) for n in self.node_names])
        )

    def build(self) -> SimulationResults:
        return SimulationResults(
            times=np.array(self._times),
            node_names=self.node_names,
            link_names=self.link_names,
            head=np.vstack(self._head) if self._head else np.empty((0, len(self.node_names))),
            pressure=np.vstack(self._pressure) if self._pressure else np.empty((0, len(self.node_names))),
            demand=np.vstack(self._demand) if self._demand else np.empty((0, len(self.node_names))),
            leak_flow=np.vstack(self._leak) if self._leak else np.empty((0, len(self.node_names))),
            flow=np.vstack(self._flow) if self._flow else np.empty((0, len(self.link_names))),
            tank_level=np.vstack(self._level) if self._level else np.empty((0, len(self.node_names))),
        )
