"""Water-quality transport (EPANET-style Lagrangian time-driven scheme).

The paper motivates quality tracking twice: "Quality of water can also be
compromised via contaminant propagation through a faulty pipe" and
EPANET++ "capture[s] hydraulic and water quality behavior".  This module
transports a single constituent over a completed hydraulic simulation:

* each pipe holds a queue of plug-flow segments (volume, concentration);
* every quality step, segments advect with the pipe's current flow,
  blend at downstream nodes (flow-weighted mixing), and decay with
  first-order kinetics;
* sources inject either a fixed concentration (reservoir/treatment) or a
  mass rate at a node (contaminant intrusion at a leaky joint).

Tanks are treated as completely-mixed reservoirs of their current volume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .components import Pipe, Reservoir, Tank
from .exceptions import SimulationError
from .network import WaterNetwork
from .results import SimulationResults


@dataclass(frozen=True)
class QualitySource:
    """A constituent source.

    Attributes:
        node: source node name.
        concentration: fixed concentration (mg/L) imposed on water
            leaving the node, used when ``mass_rate`` is None.
        mass_rate: mass injection rate (mg/s) blended into the node's
            outflow — the contaminant-intrusion mode.
        start_time: source activates at this time (s).
        end_time: source deactivates (None = whole run).
    """

    node: str
    concentration: float = 0.0
    mass_rate: float | None = None
    start_time: float = 0.0
    end_time: float | None = None

    def active_at(self, time_seconds: float) -> bool:
        """Whether the source is switched on at the given time."""
        if time_seconds < self.start_time:
            return False
        return self.end_time is None or time_seconds < self.end_time


@dataclass
class QualityResults:
    """Concentration time series.

    Attributes:
        times: quality timestamps (s).
        node_names: column order.
        concentration: (T, n_nodes) node concentrations (mg/L).
    """

    times: np.ndarray
    node_names: list[str]
    concentration: np.ndarray
    _index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._index = {n: i for i, n in enumerate(self.node_names)}

    def at(self, node: str) -> np.ndarray:
        """Concentration series (mg/L) for one node."""
        return self.concentration[:, self._index[node]]

    def max_concentration(self, node: str) -> float:
        return float(self.at(node).max()) if len(self.times) else 0.0

    def arrival_time(self, node: str, threshold: float) -> float | None:
        """First time the node's concentration exceeds ``threshold``."""
        series = self.at(node)
        above = np.nonzero(series > threshold)[0]
        if len(above) == 0:
            return None
        return float(self.times[above[0]])


class _PipeSegments:
    """Plug-flow segment queue for one pipe (upstream end = right)."""

    def __init__(self, volume: float, concentration: float):
        self.volume = volume
        self.segments: deque[list[float]] = deque([[volume, concentration]])

    def push(self, volume: float, concentration: float) -> float:
        """Inject at the upstream end; return flow-weighted outflow conc."""
        if volume <= 0.0:
            return self.segments[0][1]
        self.segments.append([volume, concentration])
        # Pop the same volume from the downstream end.
        out_mass = 0.0
        remaining = volume
        while remaining > 1e-12 and self.segments:
            seg = self.segments[0]
            if seg[0] <= remaining + 1e-12:
                out_mass += seg[0] * seg[1]
                remaining -= seg[0]
                self.segments.popleft()
            else:
                out_mass += remaining * seg[1]
                seg[0] -= remaining
                remaining = 0.0
        if not self.segments:
            self.segments.append([self.volume, 0.0])
        return out_mass / max(volume, 1e-12)

    def decay(self, factor: float) -> None:
        for seg in self.segments:
            seg[1] *= factor

    def mean_concentration(self) -> float:
        total = sum(s[0] for s in self.segments)
        if total <= 0:
            return 0.0
        return sum(s[0] * s[1] for s in self.segments) / total


class QualitySimulator:
    """Transports a constituent over completed hydraulic results.

    Args:
        network: the simulated network.
        results: hydraulic results (flows define the advection field).
        decay_rate: first-order decay constant k (1/s); 0 = conservative.
        quality_timestep: transport step (s); must divide the hydraulic
            step reasonably (a few minutes is typical).
    """

    def __init__(
        self,
        network: WaterNetwork,
        results: SimulationResults,
        decay_rate: float = 0.0,
        quality_timestep: float = 60.0,
    ):
        if quality_timestep <= 0:
            raise SimulationError("quality timestep must be > 0")
        if results.n_timesteps < 1:
            raise SimulationError("hydraulic results are empty")
        if decay_rate < 0:
            raise SimulationError("decay rate must be >= 0")
        self.network = network
        self.results = results
        self.decay_rate = decay_rate
        self.quality_timestep = quality_timestep

    # ------------------------------------------------------------------
    def run(
        self,
        sources: list[QualitySource],
        initial_concentration: float = 0.0,
    ) -> QualityResults:
        """Simulate transport over the full hydraulic horizon."""
        network = self.network
        results = self.results
        dt = self.quality_timestep
        node_names = network.node_names()
        pipes = [l for l in network.links.values() if isinstance(l, Pipe)]
        source_map: dict[str, list[QualitySource]] = {}
        for source in sources:
            if source.node not in network.nodes:
                raise SimulationError(f"quality source at unknown node {source.node!r}")
            source_map.setdefault(source.node, []).append(source)

        segments = {
            pipe.name: _PipeSegments(pipe.area * pipe.length, initial_concentration)
            for pipe in pipes
        }
        node_conc = {name: initial_concentration for name in node_names}
        tank_conc = {t.name: initial_concentration for t in network.tanks()}
        decay_factor = float(np.exp(-self.decay_rate * dt))

        hyd_times = results.times
        horizon = float(hyd_times[-1]) if len(hyd_times) > 1 else max(
            float(hyd_times[0]), dt
        )
        times = []
        records = []
        time = 0.0
        n_steps = max(int(round(horizon / dt)), 1)
        for _step in range(n_steps + 1):
            hyd_index = results.time_index(time)
            flows = {
                name: results.flow[hyd_index, results.link_column(name)]
                for name in network.link_names()
            }
            node_conc = self._advect_step(
                flows, segments, node_conc, tank_conc, source_map, time, dt
            )
            for pipe_segments in segments.values():
                pipe_segments.decay(decay_factor)
            for tank_name in tank_conc:
                tank_conc[tank_name] *= decay_factor
            times.append(time)
            records.append([node_conc[name] for name in node_names])
            time += dt
        return QualityResults(
            times=np.array(times),
            node_names=node_names,
            concentration=np.array(records),
        )

    # ------------------------------------------------------------------
    def _advect_step(
        self,
        flows: dict[str, float],
        segments: dict[str, _PipeSegments],
        node_conc: dict[str, float],
        tank_conc: dict[str, float],
        source_map: dict[str, list[QualitySource]],
        time: float,
        dt: float,
    ) -> dict[str, float]:
        network = self.network
        # 0) Per-node outflow volume this step (for mass-rate sources:
        #    injected mass dilutes into everything leaving the node).
        outflow_volume: dict[str, float] = {n: 0.0 for n in network.node_names()}
        for link in network.links.values():
            q = flows[link.name]
            upstream = link.start_node if q >= 0 else link.end_node
            outflow_volume[upstream] += abs(q) * dt
        for junction in network.junctions():
            outflow_volume[junction.name] += max(junction.base_demand, 0.0) * dt

        def out_conc_of(name: str) -> float:
            base = tank_conc.get(name, node_conc.get(name, 0.0))
            return self._source_concentration(
                name, base, source_map, time, outflow_volume[name], dt
            )

        # 1) Move water through pipes: each pipe takes dt * |q| from its
        #    upstream node at that node's outflow concentration and
        #    delivers the displaced volume downstream.
        inflow_mass: dict[str, float] = {n: 0.0 for n in network.node_names()}
        inflow_volume: dict[str, float] = {n: 0.0 for n in network.node_names()}
        for link_name, pipe_segments in segments.items():
            link = network.links[link_name]
            q = flows[link_name]
            if q >= 0:
                upstream, downstream = link.start_node, link.end_node
            else:
                upstream, downstream = link.end_node, link.start_node
            volume = abs(q) * dt
            out_conc = pipe_segments.push(volume, out_conc_of(upstream))
            inflow_mass[downstream] += volume * out_conc
            inflow_volume[downstream] += volume
        # Pumps/valves carry water instantaneously (negligible volume).
        for link in network.links.values():
            if isinstance(link, Pipe):
                continue
            q = flows[link.name]
            if abs(q) < 1e-12:
                continue
            if q >= 0:
                upstream, downstream = link.start_node, link.end_node
            else:
                upstream, downstream = link.end_node, link.start_node
            volume = abs(q) * dt
            inflow_mass[downstream] += volume * out_conc_of(upstream)
            inflow_volume[downstream] += volume

        # 2) New node concentrations: flow-weighted blend of arrivals.
        new_conc: dict[str, float] = {}
        for node in network.nodes.values():
            name = node.name
            if isinstance(node, Reservoir):
                new_conc[name] = self._source_concentration(
                    name, 0.0, source_map, time, outflow_volume[name], dt
                )
            elif isinstance(node, Tank):
                level_col = self.results.node_column(name)
                level = self.results.tank_level[
                    self.results.time_index(time), level_col
                ]
                volume = node.volume_at_level(level if np.isfinite(level) else node.init_level)
                volume = max(volume, 1.0)
                mass = tank_conc[name] * volume + inflow_mass[name]
                tank_conc[name] = mass / (volume + inflow_volume[name])
                new_conc[name] = tank_conc[name]
            else:
                if inflow_volume[name] > 1e-12:
                    blended = inflow_mass[name] / inflow_volume[name]
                else:
                    blended = node_conc[name]
                new_conc[name] = self._source_concentration(
                    name, blended, source_map, time, outflow_volume[name], dt
                )
        return new_conc

    def _source_concentration(
        self,
        name: str,
        base: float,
        source_map: dict[str, list[QualitySource]],
        time: float,
        outflow_volume: float,
        dt: float,
    ) -> float:
        """Apply any active source at a node to its water.

        Fixed-concentration sources impose a floor (treatment plant);
        mass-rate sources dilute ``mass_rate * dt`` into the node's
        outflow volume (intrusion at a joint).
        """
        for source in source_map.get(name, []):
            if not source.active_at(time):
                continue
            if source.mass_rate is None:
                base = max(base, source.concentration)
            else:
                # mg/s * s / m^3 = mg/m^3; divide by 1000 for mg/L.
                volume = max(outflow_volume, 1e-6)
                base = base + source.mass_rate * dt / volume / 1000.0
        return base


def simulate_quality(
    network: WaterNetwork,
    results: SimulationResults,
    sources: list[QualitySource],
    decay_rate: float = 0.0,
    quality_timestep: float = 60.0,
) -> QualityResults:
    """One-call wrapper around :class:`QualitySimulator`."""
    simulator = QualitySimulator(
        network, results, decay_rate=decay_rate, quality_timestep=quality_timestep
    )
    return simulator.run(sources)
