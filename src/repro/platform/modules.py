"""The Sec.-VI prototype modules.

AquaSCALE's initial implementation is "a workflow based system comprised
of multiple components": Scenario Generation, Sensor Data Acquisition, an
Integrated Simulation and Modeling Engine, a Plug-and-Play Analytics
Module and a Decision Support Module.  This package realises each module
as a thin, composable object over the core library, wired together by
:class:`~repro.platform.workflow.AquaScaleWorkflow`'s
observe-analyze-adapt loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import InferenceResult, make_classifier, register_classifier
from ..failures import FailureScenario, LeakEvent, ScenarioGenerator
from ..flood import predict_flood
from ..hydraulics import SimulationResults, WaterNetwork, simulate
from ..sensing import SensorNetwork, SteadyStateTelemetry, kmedoids_placement


class ScenarioGenerationModule:
    """Lets analysts define and sample 'situations' (hazard contexts).

    Wraps :class:`~repro.failures.ScenarioGenerator` with named presets so
    a workflow can request e.g. ``"cold-snap"`` without repeating
    parameters.
    """

    PRESETS = {
        "single-leak": {"kind": "single"},
        "multi-leak": {"kind": "multi", "max_events": 5},
        "cold-snap": {"kind": "low-temperature", "max_events": 5},
    }

    def __init__(self, network: WaterNetwork, seed: int = 0):
        self.network = network
        self._generator = ScenarioGenerator(network, seed=seed)

    def sample(self, preset: str = "multi-leak", count: int = 1) -> list[FailureScenario]:
        """Draw scenarios from a named preset.

        Raises:
            KeyError: unknown preset (message lists valid ones).
        """
        if preset not in self.PRESETS:
            raise KeyError(
                f"unknown preset {preset!r}; available: {sorted(self.PRESETS)}"
            )
        params = dict(self.PRESETS[preset])
        kind = params.pop("kind")
        return self._generator.batch(count, kind=kind, **params)


class SensorDataAcquisitionModule:
    """Gathers real-time field information for predefined scenarios.

    In the prototype, field data comes from the simulation engine; the
    module's surface (deploy, acquire) is what a physical deployment
    would also expose.
    """

    def __init__(self, network: WaterNetwork, iot_percent: float = 100.0, seed: int = 0):
        from ..sensing import percentage_to_count

        self.network = network
        self.sensors: SensorNetwork = kmedoids_placement(
            network, percentage_to_count(network, iot_percent), seed=seed
        )
        self._telemetry = SteadyStateTelemetry(network, seed=seed)

    def acquire(
        self, scenario: FailureScenario, elapsed_slots: int = 1
    ) -> np.ndarray:
        """Δ-readings the deployed devices would report for a scenario."""
        from ..sensing import sensor_column_indices

        full = self._telemetry.candidate_deltas(scenario, elapsed_slots=elapsed_slots)
        columns = sensor_column_indices(self._telemetry.candidate_keys(), self.sensors)
        return full[columns]


class IntegratedSimulationEngine:
    """Executes EPANET++ (and BreZo) runs for the workflow."""

    def __init__(self, network: WaterNetwork):
        self.network = network

    def run_hydraulics(
        self, scenario: FailureScenario | None = None, duration: float = 4 * 3600.0
    ) -> SimulationResults:
        """Extended-period run, optionally with a scenario injected."""
        leaks = None
        if scenario is not None:
            step = self.network.options.hydraulic_timestep
            leaks = [event.to_timed_leak(step) for event in scenario.events]
        return simulate(self.network, duration=duration, leaks=leaks)

    def run_flood(
        self, events: list[LeakEvent], duration: float = 3600.0, cell_size: float = 60.0
    ):
        """Flood prediction for confirmed leaks (Fig. 11 path)."""
        return predict_flood(
            self.network, events, duration=duration, cell_size=cell_size
        )


class PlugAndPlayAnalyticsModule:
    """Technique selection/registration facade over the core registry."""

    def __init__(self, random_state: int | None = 0):
        self.random_state = random_state

    def technique(self, name: str, **overrides):
        """Instantiate a registered classifier by name."""
        return make_classifier(name, random_state=self.random_state, **overrides)

    def register(self, name: str, factory) -> None:
        """Plug a new technique into every downstream experiment."""
        register_classifier(name, factory)


@dataclass
class DecisionRecord:
    """One decision-support entry: a localized event and suggested action.

    Attributes:
        leak_nodes: the predicted leak set.
        confidence: P(leak) per predicted node.
        suggested_action: operator-facing recommendation.
        tuning_flips: human-input corrections applied during inference.
        valves_to_close: concrete isolation valves (when a network was
            supplied and isolation is recommended).
        demand_at_risk: demand (m^3/s) interrupted by that isolation.
    """

    leak_nodes: tuple[str, ...]
    confidence: dict[str, float]
    suggested_action: str
    tuning_flips: int = 0
    valves_to_close: tuple[str, ...] = ()
    demand_at_risk: float = 0.0


class DecisionSupportModule:
    """Turns inference results into operator-facing recommendations.

    When built with a network, isolation recommendations are concrete:
    the valve-segment analysis (paper conclusion: shutting down "an
    entire pressure zone ... to prevent cascading failures") names the
    valves to close and the service cost of doing so.
    """

    def __init__(
        self,
        confidence_threshold: float = 0.8,
        network: WaterNetwork | None = None,
    ):
        self.confidence_threshold = confidence_threshold
        self._analyzer = None
        if network is not None:
            from ..analysis import IsolationAnalyzer

            self._analyzer = IsolationAnalyzer(network)

    def _isolation_for(self, nodes: list[str]) -> tuple[tuple[str, ...], float]:
        if self._analyzer is None or not nodes:
            return (), 0.0
        valves: set[str] = set()
        demand = 0.0
        seen_segments: set[int] = set()
        for node in nodes:
            try:
                plan = self._analyzer.shutdown_plan_for_node(node)
            except KeyError:
                continue
            valves |= plan.valves_to_close
            for segment in plan.segments:
                if segment.segment_id not in seen_segments:
                    seen_segments.add(segment.segment_id)
                    demand += segment.demand
        return tuple(sorted(valves)), demand

    def recommend(self, result: InferenceResult) -> DecisionRecord:
        """Turn one inference result into an operator recommendation."""
        leaks = tuple(sorted(result.leak_nodes))
        confidence = {
            name: float(result.probabilities[result.junction_names.index(name)])
            for name in leaks
        }
        confident = [n for n, p in confidence.items() if p >= self.confidence_threshold]
        valves: tuple[str, ...] = ()
        demand_at_risk = 0.0
        if len(confident) >= 2:
            valves, demand_at_risk = self._isolation_for(confident)
            action = (
                f"isolate pressure zone around {', '.join(confident)} and "
                "dispatch repair crews"
            )
            if valves:
                action += f" (close valves: {', '.join(valves)})"
        elif len(confident) == 1:
            action = f"dispatch inspection crew to {confident[0]}"
        elif leaks:
            action = f"schedule acoustic survey near {', '.join(leaks)}"
        else:
            action = "no action; continue monitoring"
        return DecisionRecord(
            leak_nodes=leaks,
            confidence=confidence,
            suggested_action=action,
            tuning_flips=len(result.tuning_steps),
            valves_to_close=valves,
            demand_at_risk=demand_at_risk,
        )
