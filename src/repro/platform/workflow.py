"""The observe-analyze-adapt loop (paper Fig. 1).

:class:`AquaScaleWorkflow` wires the Sec.-VI modules into the logical loop
the paper describes: *observations* arrive from the acquisition module and
external feeds, the *analytics* module (the trained two-phase core) turns
them into awareness, and *adaptations* (decision-support records, flood
forecasts) are emitted for operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import AquaScale, InferenceResult
from ..failures import FailureScenario, LeakEvent
from ..hydraulics import WaterNetwork
from .modules import (
    DecisionRecord,
    DecisionSupportModule,
    IntegratedSimulationEngine,
    PlugAndPlayAnalyticsModule,
    ScenarioGenerationModule,
    SensorDataAcquisitionModule,
)


@dataclass
class LoopOutcome:
    """Everything one observe-analyze-adapt cycle produced."""

    scenario: FailureScenario
    inference: InferenceResult
    decision: DecisionRecord
    flood_summary: dict[str, float] = field(default_factory=dict)


class AquaScaleWorkflow:
    """End-to-end prototype: modules + loop.

    Args:
        network: managed network.
        iot_percent: deployment penetration.
        classifier: plug-and-play technique for the profile model.
        seed: master seed.
    """

    def __init__(
        self,
        network: WaterNetwork,
        iot_percent: float = 100.0,
        classifier: str = "hybrid-rsl",
        seed: int = 0,
    ):
        self.network = network
        self.seed = seed
        self.scenarios = ScenarioGenerationModule(network, seed=seed)
        self.acquisition = SensorDataAcquisitionModule(network, iot_percent, seed=seed)
        self.simulation = IntegratedSimulationEngine(network)
        self.analytics = PlugAndPlayAnalyticsModule(random_state=seed)
        self.decisions = DecisionSupportModule(network=network)
        self.core = AquaScale(
            network, iot_percent=iot_percent, classifier=classifier, seed=seed
        )

    def train(self, n_train: int = 800, kind: str = "multi") -> "AquaScaleWorkflow":
        """Offline Phase I over simulated scenarios."""
        self.core.train(n_train=n_train, kind=kind)
        return self

    def forecast_freeze_risk(
        self,
        horizon_hours: float = 24.0,
        currently_in_snap: bool = False,
        seed: int | None = None,
    ) -> float:
        """P(freezing conditions within the horizon), via the Markov
        weather model (the paper's future-work weather study).

        Decision support uses this to pre-position crews: above ~0.5 an
        operator would stage repair teams before the failure wave starts.

        Args:
            horizon_hours: forecast horizon.
            currently_in_snap: whether a cold snap is already under way.
            seed: weather-path seed; defaults to the workflow's master
                seed so each workflow is reproducible on its own.
        """
        from ..observations import MarkovWeatherModel

        slots = max(1, int(round(horizon_hours * 4)))  # 15-min slots
        model = MarkovWeatherModel(seed=self.seed if seed is None else seed)
        return model.freeze_risk_forecast(
            currently_in_snap, horizon_slots=slots, n_paths=200
        )

    def run_stream(
        self,
        n_slots: int = 24,
        preset: str = "multi-leak",
        feeds: int = 1,
        workers: int = 1,
        dropout: float = 0.0,
        onset_slot: int | None = None,
        detector_params: dict | None = None,
        seed: int | None = None,
        logger=None,
    ):
        """Serve simulated live feeds through the streaming runtime.

        Where :meth:`cycle` is handed the ground-truth scenario, this is
        the online story: scenarios are sampled, re-stamped onto the
        stream's timeline, and replayed slot by slot; the runtime has to
        *detect* them before it can localize.

        Args:
            n_slots: slots to stream per feed.
            preset: scenario preset, or ``"no-leak"`` for healthy feeds.
            feeds: concurrent network feeds to serve.
            workers: localization worker threads.
            dropout: per-slot sensor dropout probability.
            onset_slot: where sampled failures start (default: one third
                into the window, so the detector sees a clean baseline
                first).
            detector_params: trigger-detector overrides.
            seed: feed noise seed; defaults to the workflow master seed.
            logger: structured logger for the runtime (default stderr).

        Returns:
            :class:`~repro.stream.StreamReport` with detections, per-event
            localizations and the metrics snapshot.
        """
        from ..sensing import SteadyStateTelemetry
        from ..stream import StreamRuntime, TelemetryStream, restamp_scenario

        seed = self.seed if seed is None else seed
        # One shared engine: the no-leak baseline cache (one solve per
        # slot-of-day) serves every feed.
        telemetry = SteadyStateTelemetry(self.network, seed=seed)
        if onset_slot is None:
            onset_slot = max(2, n_slots // 3)
        if preset == "no-leak":
            scenarios = [None] * feeds
        else:
            scenarios = [
                restamp_scenario(s, onset_slot)
                for s in self.scenarios.sample(preset, count=feeds)
            ]
        stream_feeds = [
            TelemetryStream(
                self.network,
                self.core.sensors,
                scenario=scenario,
                feed_id=f"feed-{i}",
                seed=seed + i,
                dropout=dropout,
                telemetry=telemetry,
            )
            for i, scenario in enumerate(scenarios)
        ]
        runtime = StreamRuntime(
            self.core,
            workers=workers,
            detector_params=detector_params,
            logger=logger,
        )
        return runtime.run(stream_feeds, n_slots=n_slots)

    def cycle(
        self,
        scenario: FailureScenario | None = None,
        preset: str = "multi-leak",
        elapsed_slots: int = 1,
        sources: str = "all",
        with_flood: bool = False,
    ) -> LoopOutcome:
        """Run one observe-analyze-adapt cycle.

        Args:
            scenario: the ground-truth situation (sampled from ``preset``
                when omitted — the prototype's simulation-in-the-loop
                mode).
            preset: scenario preset used when sampling.
            elapsed_slots: slots since onset (more slots, more tweets).
            sources: observation mix for the analyze stage.
            with_flood: also run the flood forecast for predicted leaks.
        """
        if scenario is None:
            scenario = self.scenarios.sample(preset, count=1)[0]
        # Observe.
        features = self.acquisition.acquire(scenario, elapsed_slots=elapsed_slots)
        weather, human = self.core._observations_for(scenario, elapsed_slots, sources)
        # Analyze.
        inference = self.core.localize(features, weather=weather, human=human)
        # Adapt.
        decision = self.decisions.recommend(inference)
        flood_summary: dict[str, float] = {}
        if with_flood and inference.leak_nodes:
            events = [LeakEvent(node, 2e-3) for node in sorted(inference.leak_nodes)]
            dem, flood = self.simulation.run_flood(events, duration=1800.0)
            flood_summary = {
                "flooded_cells": float(flood.flooded_cells(0.001)),
                "max_depth_m": float(flood.max_depth.max()),
                "volume_m3": float(flood.total_inflow_volume),
            }
        return LoopOutcome(
            scenario=scenario,
            inference=inference,
            decision=decision,
            flood_summary=flood_summary,
        )
