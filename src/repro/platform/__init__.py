"""Sec.-VI prototype: workflow modules + observe-analyze-adapt loop."""

from .modules import (
    DecisionRecord,
    DecisionSupportModule,
    IntegratedSimulationEngine,
    PlugAndPlayAnalyticsModule,
    ScenarioGenerationModule,
    SensorDataAcquisitionModule,
)
from .workflow import AquaScaleWorkflow, LoopOutcome

__all__ = [
    "AquaScaleWorkflow",
    "DecisionRecord",
    "DecisionSupportModule",
    "IntegratedSimulationEngine",
    "LoopOutcome",
    "PlugAndPlayAnalyticsModule",
    "ScenarioGenerationModule",
    "SensorDataAcquisitionModule",
]
