"""Flood modeling substrate (BreZo substitute): DEM + diffusive wave."""

from .brezo import DRY_DEPTH, DiffusiveWaveSolver, FloodResult, FloodSource
from .coupling import flood_sources_from_events, leak_outflows, predict_flood
from .dem import DEM, dem_from_network

__all__ = [
    "DEM",
    "DRY_DEPTH",
    "DiffusiveWaveSolver",
    "FloodResult",
    "FloodSource",
    "dem_from_network",
    "flood_sources_from_events",
    "leak_outflows",
    "predict_flood",
]
