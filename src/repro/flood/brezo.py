"""2-D flood-spreading solver (the BreZo substitute).

BreZo is a Godunov finite-volume shallow-water code; what Fig. 11 uses it
for is gravity-driven spreading of leak outflow over a DEM.  This module
implements a diffusive-wave (zero-inertia) finite-volume solver on the
regular DEM grid with Manning friction — the standard reduced model for
urban flood spreading (LISFLOOD-FP family) — with adaptive explicit time
stepping and exact volume accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dem import DEM

#: Gravitational acceleration (m/s^2).
G = 9.80665
#: Depths below this (m) neither flow nor count as flooded.
DRY_DEPTH = 1e-4


@dataclass
class FloodSource:
    """A point inflow (leak outflow surfacing), in m^3/s at a map point."""

    x: float
    y: float
    inflow: float


@dataclass
class FloodResult:
    """Output of a flood simulation.

    Attributes:
        depth: final water depth per DEM cell (m).
        max_depth: per-cell maximum depth over the run (m).
        times: snapshot timestamps (s).
        snapshots: depth fields at those times (list of arrays).
        total_inflow_volume: water injected (m^3).
        final_volume: water on the grid at the end (m^3) — equals the
            inflow minus what left through the open boundary.
    """

    depth: np.ndarray
    max_depth: np.ndarray
    times: list[float]
    snapshots: list[np.ndarray]
    total_inflow_volume: float
    final_volume: float

    def flooded_cells(self, threshold: float = 0.01) -> int:
        """Number of cells with final depth above ``threshold`` metres."""
        return int(np.sum(self.depth > threshold))

    def flooded_area(self, cell_area: float, threshold: float = 0.01) -> float:
        """Flooded area (m^2) at the given depth threshold."""
        return self.flooded_cells(threshold) * cell_area


class DiffusiveWaveSolver:
    """Zero-inertia shallow-water solver on a DEM.

    Args:
        dem: the terrain grid.
        manning_n: Manning roughness (0.03 ~ short grass / streets).
        open_boundary: if True, water reaching the grid edge leaves the
            domain (realistic for a subzone map); if False the edges are
            walls and volume is strictly conserved.
    """

    def __init__(self, dem: DEM, manning_n: float = 0.03, open_boundary: bool = True):
        if manning_n <= 0:
            raise ValueError(f"manning_n must be > 0, got {manning_n}")
        self.dem = dem
        self.manning_n = manning_n
        self.open_boundary = open_boundary

    def run(
        self,
        sources: list[FloodSource],
        duration: float,
        inflow_duration: float | None = None,
        snapshot_interval: float | None = None,
        max_timestep: float = 5.0,
    ) -> FloodResult:
        """Simulate spreading for ``duration`` seconds.

        Args:
            sources: point inflows.
            duration: total simulated time (s).
            inflow_duration: sources shut off after this (default: whole
                run, i.e. the leak keeps discharging).
            snapshot_interval: record depth fields this often (s).
            max_timestep: cap on the adaptive timestep (s).

        Raises:
            ValueError: on non-positive duration.
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        inflow_duration = duration if inflow_duration is None else inflow_duration
        z = self.dem.elevation
        rows, cols = z.shape
        area = self.dem.cell_area
        dx = self.dem.cell_size
        depth = np.zeros_like(z)
        max_depth = np.zeros_like(z)

        source_cells = []
        for source in sources:
            if source.inflow < 0:
                raise ValueError("source inflow must be >= 0")
            source_cells.append((self.dem.cell_of(source.x, source.y), source.inflow))

        times: list[float] = []
        snapshots: list[np.ndarray] = []
        time = 0.0
        injected = 0.0
        next_snapshot = 0.0 if snapshot_interval else np.inf

        while time < duration:
            h_max = float(depth.max())
            if h_max > DRY_DEPTH:
                dt = min(max_timestep, 0.7 * dx / np.sqrt(G * h_max))
            else:
                dt = max_timestep
            dt = min(dt, duration - time)

            # Inflow.
            if time < inflow_duration:
                active = min(dt, inflow_duration - time)
                for (row, col), inflow in source_cells:
                    depth[row, col] += inflow * active / area
                    injected += inflow * active

            # Diffusive-wave flux between index-neighbours along each axis:
            # h_flow = max(eta_lo, eta_hi) - max(z_lo, z_hi) (LISFLOOD-FP),
            # v = h_flow^(2/3) sqrt(|d eta| / dx) / n, and the moved depth
            # is limited to half the donor cell's depth for stability.
            for axis in (0, 1):
                lo = [slice(None), slice(None)]
                hi = [slice(None), slice(None)]
                lo[axis] = slice(0, depth.shape[axis] - 1)
                hi[axis] = slice(1, depth.shape[axis])
                lo_t, hi_t = tuple(lo), tuple(hi)

                eta = z + depth
                eta_lo, eta_hi = eta[lo_t], eta[hi_t]
                d_eta = eta_hi - eta_lo  # > 0: water flows hi -> lo
                h_flow = np.maximum(
                    np.maximum(eta_lo, eta_hi) - np.maximum(z[lo_t], z[hi_t]), 0.0
                )
                slope = np.abs(d_eta) / dx
                wet = h_flow > DRY_DEPTH
                velocity = np.zeros_like(d_eta)
                velocity[wet] = (
                    h_flow[wet] ** (2.0 / 3.0) * np.sqrt(slope[wet]) / self.manning_n
                )
                # Depth moved across the face this step (donor-limited).
                moved = velocity * h_flow * dt / dx
                donor_depth = np.where(d_eta > 0, depth[hi_t], depth[lo_t])
                moved = np.minimum(moved, 0.5 * donor_depth)
                moved = np.where(donor_depth > DRY_DEPTH, moved, 0.0)
                gain_lo = np.where(d_eta > 0, moved, -moved)
                depth[lo_t] += gain_lo
                depth[hi_t] -= gain_lo

            if self.open_boundary:
                depth[0, :] = 0.0
                depth[-1, :] = 0.0
                depth[:, 0] = 0.0
                depth[:, -1] = 0.0

            np.maximum(max_depth, depth, out=max_depth)
            time += dt
            if snapshot_interval and time >= next_snapshot:
                times.append(time)
                snapshots.append(depth.copy())
                next_snapshot += snapshot_interval

        return FloodResult(
            depth=depth,
            max_depth=max_depth,
            times=times,
            snapshots=snapshots,
            total_inflow_volume=injected,
            final_volume=float(depth.sum() * area),
        )
