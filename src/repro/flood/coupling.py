"""Leak-to-flood coupling.

"To feed leak information into the flood model, we use (1) to calculate
the outflow rate based on pressure readings, which is then input into
BreZo for flood simulations."  Given a network, leak events and a solved
hydraulic state, this module computes each leak's surface outflow and
produces the point sources the flood solver consumes.
"""

from __future__ import annotations

from ..failures import LeakEvent, events_to_emitters
from ..hydraulics import GGASolver, WaterNetwork
from .brezo import DiffusiveWaveSolver, FloodResult, FloodSource
from .dem import DEM, dem_from_network


def leak_outflows(
    network: WaterNetwork, events: list[LeakEvent]
) -> dict[str, float]:
    """Steady-state emitter outflow (m^3/s) per leaking junction.

    Solves the hydraulics with the events injected and reads the emitter
    discharges — Eq. (1) evaluated at the solved pressures.
    """
    solver = GGASolver(network)
    solution = solver.solve(emitters=events_to_emitters(events))
    return {
        event.location: solution.leak_flow[event.location] for event in events
    }


def flood_sources_from_events(
    network: WaterNetwork, events: list[LeakEvent]
) -> list[FloodSource]:
    """Point flood sources at the leaking junctions' map positions."""
    outflows = leak_outflows(network, events)
    sources = []
    for event in events:
        node = network.nodes[event.location]
        x, y = node.coordinates
        sources.append(FloodSource(x=x, y=y, inflow=outflows[event.location]))
    return sources


def predict_flood(
    network: WaterNetwork,
    events: list[LeakEvent],
    duration: float = 3600.0,
    cell_size: float = 100.0,
    manning_n: float = 0.03,
    dem: DEM | None = None,
    snapshot_interval: float | None = None,
) -> tuple[DEM, FloodResult]:
    """Fig. 11 end-to-end: leaks -> outflow -> DEM flood map.

    Args:
        network: the water network (supplies geometry + elevations).
        events: the leak events driving the flood.
        duration: flood simulation horizon (s).
        cell_size: DEM resolution (m).
        manning_n: surface roughness.
        dem: reuse a prebuilt DEM (otherwise interpolated from nodes).
        snapshot_interval: optional depth-field recording interval (s).

    Returns:
        (dem, flood result).
    """
    if dem is None:
        dem = dem_from_network(network, cell_size=cell_size)
    sources = flood_sources_from_events(network, events)
    solver = DiffusiveWaveSolver(dem, manning_n=manning_n)
    result = solver.run(
        sources, duration=duration, snapshot_interval=snapshot_interval
    )
    return dem, result
