"""Digital elevation model (DEM) construction.

Fig. 11 predicts flooding "based on the digital elevation map (DEM),
interpolated from node elevations".  This module builds a regular-grid DEM
over a network's bounding box by inverse-distance-weighted interpolation
of the node elevations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hydraulics import WaterNetwork
from ..observations import network_bounding_box


@dataclass
class DEM:
    """A regular-grid elevation model.

    Attributes:
        x0, y0: map coordinates of cell (0, 0)'s centre (m).
        cell_size: grid spacing (m).
        elevation: (rows, cols) elevations (m); row 0 is the south edge.
    """

    x0: float
    y0: float
    cell_size: float
    elevation: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.elevation.shape

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """(row, col) of the cell containing a map point (clamped)."""
        col = int(round((x - self.x0) / self.cell_size))
        row = int(round((y - self.y0) / self.cell_size))
        rows, cols = self.elevation.shape
        return min(max(row, 0), rows - 1), min(max(col, 0), cols - 1)

    def centre_of(self, row: int, col: int) -> tuple[float, float]:
        """Map coordinates of a cell centre."""
        return self.x0 + col * self.cell_size, self.y0 + row * self.cell_size

    @property
    def cell_area(self) -> float:
        return self.cell_size**2


def dem_from_network(
    network: WaterNetwork,
    cell_size: float = 100.0,
    margin: float = 200.0,
    power: float = 2.0,
    smoothing: float = 1e-6,
) -> DEM:
    """IDW-interpolate node elevations onto a regular grid.

    Args:
        network: source of (coordinates, elevation) samples.
        cell_size: grid spacing (m).
        margin: extra map border beyond the network extent (m).
        power: IDW exponent.
        smoothing: distance floor preventing division by zero at nodes.
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be > 0, got {cell_size}")
    points = []
    values = []
    for node in network.nodes.values():
        elevation = getattr(node, "elevation", None)
        if elevation is None:
            continue
        points.append(node.coordinates)
        values.append(elevation)
    if not points:
        raise ValueError("network has no elevation samples")
    points_arr = np.asarray(points)
    values_arr = np.asarray(values)

    xmin, ymin, xmax, ymax = network_bounding_box(network, margin=margin)
    cols = max(int(np.ceil((xmax - xmin) / cell_size)) + 1, 2)
    rows = max(int(np.ceil((ymax - ymin) / cell_size)) + 1, 2)
    xs = xmin + np.arange(cols) * cell_size
    ys = ymin + np.arange(rows) * cell_size
    grid_x, grid_y = np.meshgrid(xs, ys)

    dx = grid_x[..., None] - points_arr[None, None, :, 0]
    dy = grid_y[..., None] - points_arr[None, None, :, 1]
    distances = np.sqrt(dx**2 + dy**2) + smoothing
    weights = distances ** (-power)
    elevation = (weights * values_arr[None, None, :]).sum(axis=2) / weights.sum(axis=2)
    return DEM(x0=xmin, y0=ymin, cell_size=cell_size, elevation=elevation)
