"""Consistent-hash front tier for multi-worker serving.

The :class:`RouterServer` is the single public endpoint of a
:class:`~repro.serve.cluster.ServeCluster`: it speaks the same JSON-lines
protocol as the workers, keeps one persistent pipelined connection per
worker process, and forwards every ``localize`` to the worker chosen by
a **consistent hash with bounded loads**:

* the ring (:class:`HashRing`) maps a routing key — the request's
  ``network`` field, falling back to the cluster's default — to a
  preferred worker, so one network's traffic lands on one worker and
  keeps its caches and micro-batches dense;
* the bounded-load rule walks the ring past any worker whose in-flight
  count exceeds ``load_factor`` times the cluster average, so a hot key
  spills to the next worker instead of queueing behind itself
  (Mirrokni et al.'s consistent-hashing-with-bounded-loads policy).

Worker health is observed, not polled: a backend disconnect fails that
link's in-flight requests, marks it unhealthy, and the ring walk skips
it until the cluster replaces the process.  ``activate`` broadcasts to
every healthy worker under one lock so a hot swap is serialized
cluster-wide; ``health``/``models`` forward to one worker and the
router annotates the reply with per-worker status.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import itertools
import json
import re

from ..stream.log import StructuredLogger, get_stream_logger
from ..stream.metrics import MetricsRegistry
from . import protocol


def _hash_point(value: str) -> int:
    """Stable 64-bit ring position for a string."""
    return int.from_bytes(hashlib.md5(value.encode("utf-8")).digest()[:8], "big")


# Hot-path scanners: a router that fully re-parsed and re-serialized every
# ~4 KB localize line (feature vector in, posterior out) would spend more
# CPU on JSON than the workers spend on inference.  Instead the forward
# path rewrites request/response ids *in the raw bytes* and never touches
# the payload; only control ops (health/models/activate), draining, and
# lines these scanners cannot read fall back to a full parse.
_ID_RE = re.compile(rb'"id"[ \t]*:[ \t]*(-?\d+|null|"(?:[^"\\]|\\.)*")')
_OP_RE = re.compile(rb'"op"[ \t]*:[ \t]*"([a-zA-Z_]+)"')
_NETWORK_RE = re.compile(rb'"network"[ \t]*:[ \t]*"((?:[^"\\]|\\.)*)"')


def _splice_id(line: bytes, new_id: bytes) -> bytes | None:
    """Replace the first ``"id": <value>`` in a raw line (None = no id)."""
    match = _ID_RE.search(line)
    if match is None:
        return None
    return line[: match.start(1)] + new_id + line[match.end(1) :]


def _id_value(token: bytes):
    """Decode a raw id token (number, null, or string) to its JSON value."""
    return json.loads(token)


class HashRing:
    """A consistent-hash ring over named nodes with virtual replicas.

    Args:
        nodes: node names (must be non-empty and unique).
        replicas: virtual points per node — smooths the key space so
            each node owns roughly equal arc length.

    Raises:
        ValueError: for an empty or duplicated node list.
    """

    def __init__(self, nodes, replicas: int = 64):
        nodes = list(nodes)
        if not nodes:
            raise ValueError("hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("hash ring nodes must be unique")
        self.nodes = nodes
        points = []
        for node in nodes:
            for replica in range(replicas):
                points.append((_hash_point(f"{node}#{replica}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def walk(self, key: str):
        """Yield nodes in ring order from ``key``'s position, deduped.

        The first yielded node is the key's consistent-hash owner; the
        rest are the fallback order a bounded-load or health check
        should try next.
        """
        start = bisect.bisect_right(self._points, _hash_point(key))
        seen = set()
        for i in range(len(self._owners)):
            node = self._owners[(start + i) % len(self._owners)]
            if node not in seen:
                seen.add(node)
                yield node
                if len(seen) == len(self.nodes):
                    return


class WorkerLink:
    """One persistent pipelined backend connection to a worker.

    Rewrites request ids so many client requests multiplex over the
    single connection; a disconnect fails every in-flight request and
    flips :attr:`healthy` until the cluster replaces the worker.
    """

    def __init__(self, worker_id: str, host: str, port: int):
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.healthy = False
        self.inflight = 0
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task | None = None

    async def connect(self) -> None:
        """Open the backend connection and start the response matcher."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self.healthy = True
        self._read_task = asyncio.get_running_loop().create_task(self._read_loop())

    async def _read_loop(self) -> None:
        """Match raw response lines to futures by scanning the id only.

        The response body is never parsed here — localize payloads are
        relayed to the client verbatim (id re-spliced); control-op
        callers parse the bytes themselves.
        """
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                match = _ID_RE.search(line)
                try:
                    backend_id = int(match.group(1)) if match else None
                except ValueError:
                    backend_id = None
                future = self._pending.pop(backend_id, None)
                if future is not None and not future.done():
                    future.set_result(line)
        except (OSError, asyncio.IncompleteReadError):
            pass
        finally:
            self.healthy = False
            pending, self._pending = self._pending, {}
            for future in pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError(f"worker {self.worker_id} disconnected")
                    )

    async def call_raw(self, line: bytes) -> bytes:
        """Round-trip one raw request line, id spliced in place.

        Returns the raw response line (still carrying the backend id).

        Raises:
            ValueError: when the line carries no id to rewrite.
            ConnectionError: when the worker disconnects mid-request.
        """
        if not self.healthy or self._writer is None:
            raise ConnectionError(f"worker {self.worker_id} is not connected")
        backend_id = next(self._ids)
        spliced = _splice_id(line, str(backend_id).encode("ascii"))
        if spliced is None:
            raise ValueError("request line has no id field")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[backend_id] = future
        self.inflight += 1
        try:
            self._writer.write(spliced)
            await self._writer.drain()
            return await future
        finally:
            self.inflight -= 1
            self._pending.pop(backend_id, None)

    async def call(self, message: dict) -> dict:
        """Round-trip one message dict (control-op convenience path).

        Raises:
            ConnectionError: when the worker disconnects mid-request.
        """
        raw = await self.call_raw(
            protocol.dumps_line({"id": 0, **message})
        )
        return protocol.loads_line(raw)

    async def close(self) -> None:
        """Tear down the connection (idempotent)."""
        self.healthy = False
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
                await self._writer.wait_closed()
        if self._read_task is not None:
            self._read_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._read_task
            self._read_task = None

    def describe(self) -> dict:
        """Health row for this worker."""
        return {
            "worker_id": self.worker_id,
            "port": self.port,
            "healthy": self.healthy,
            "inflight": self.inflight,
        }


class RouterServer:
    """The cluster's public endpoint: hash-route, forward, annotate.

    Args:
        links: backend :class:`WorkerLink`\\ s (one per worker process).
        host: bind address.
        port: bind port (0 = ephemeral; read :attr:`port` after start).
        default_key: routing key for requests that name no ``network``.
        load_factor: bounded-load spill threshold — a worker is skipped
            while its in-flight count exceeds ``load_factor`` times the
            cluster-average load (minimum headroom of one request).
        metrics: shared registry (fresh when omitted).
        logger: structured logger.
    """

    def __init__(
        self,
        links: list[WorkerLink],
        host: str = "127.0.0.1",
        port: int = 0,
        default_key: str = "default",
        load_factor: float = 1.25,
        metrics: MetricsRegistry | None = None,
        logger: StructuredLogger | None = None,
    ):
        if not links:
            raise ValueError("router needs at least one worker link")
        if load_factor <= 1.0:
            raise ValueError(f"load_factor must be > 1, got {load_factor}")
        self.links = {link.worker_id: link for link in links}
        self.ring = HashRing(list(self.links))
        self.config_host = host
        self.config_port = port
        self.default_key = default_key
        self.load_factor = load_factor
        self.metrics = metrics or MetricsRegistry()
        self.log = logger or get_stream_logger()
        self._routed = self.metrics.counter("router_requests_total")
        self._spilled = self.metrics.counter("router_spills_total")
        self._rejected = self.metrics.counter("router_no_worker_total")
        self._activate_lock = asyncio.Lock()
        self._server: asyncio.base_events.Server | None = None
        self._port: int | None = None
        self._draining = False
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`).

        Raises:
            RuntimeError: before the router has started.
        """
        if self._port is None:
            raise RuntimeError("router is not started")
        return self._port

    async def start(self) -> None:
        """Connect every worker link and bind the public socket."""
        for link in self.links.values():
            if not link.healthy:
                await link.connect()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config_host, port=self.config_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self.log.event(
            "router.start",
            host=self.config_host,
            port=self.port,
            workers=len(self.links),
        )

    async def serve_forever(self) -> None:
        """Serve until :meth:`drain` completes."""
        if self._server is None:
            await self.start()
        await self._drained.wait()

    async def drain(self) -> None:
        """Stop accepting clients and close backend links.

        Worker processes are not touched — the owning cluster drains
        them (SIGTERM) after the router stops feeding them.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        for link in self.links.values():
            await link.close()
        self.log.event("router.stop")
        self._drained.set()

    # ------------------------------------------------------------------
    def pick(self, key: str) -> WorkerLink | None:
        """The bounded-load consistent-hash choice for ``key``.

        Walks the ring from the key's owner, skipping unhealthy workers
        and workers above the load bound; falls back to the least
        healthy choice standing (first healthy on the walk) when every
        worker is over the bound, and ``None`` when none are healthy.
        """
        healthy = [link for link in self.links.values() if link.healthy]
        if not healthy:
            return None
        total = sum(link.inflight for link in healthy)
        limit = max(1.0, self.load_factor * (total + 1) / len(healthy))
        first_healthy = None
        for worker_id in self.ring.walk(key):
            link = self.links[worker_id]
            if not link.healthy:
                continue
            if first_healthy is None:
                first_healthy = link
            if link.inflight < limit:
                if link is not first_healthy:
                    self._spilled.inc()
                return link
        return first_healthy

    def _routing_key(self, message: dict) -> str:
        network = message.get("network")
        return network if isinstance(network, str) and network else self.default_key

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One JSON-lines session; requests may interleave (pipelining)."""
        tasks: set[asyncio.Task] = set()
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.strip() == b"":
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        raw = await self._forward_raw(line)
        if raw is not None:
            async with write_lock:
                writer.write(raw)
                with contextlib.suppress(ConnectionResetError):
                    await writer.drain()
            return
        # Slow path: control ops, draining, or lines the scanners can't
        # read — full parse.
        request_id = None
        try:
            message = protocol.loads_line(line)
            request_id = message.get("id")
            response = await self._dispatch(message)
        except ValueError as error:
            response = {
                "id": request_id,
                "ok": False,
                "error": protocol.error_payload(protocol.E_BAD_REQUEST, str(error)),
            }
        except ConnectionError as error:
            response = {
                "id": request_id,
                "ok": False,
                "error": protocol.error_payload(protocol.E_INTERNAL, str(error)),
            }
        except Exception as error:  # pragma: no cover - defensive
            response = {
                "id": request_id,
                "ok": False,
                "error": protocol.error_payload(protocol.E_INTERNAL, repr(error)),
            }
        async with write_lock:
            writer.write(protocol.dumps_line(response))
            with contextlib.suppress(ConnectionResetError):
                await writer.drain()

    async def _forward_raw(self, line: bytes) -> bytes | None:
        """The zero-parse localize fast path.

        Scans the raw line for op/id/network, picks a worker, relays the
        bytes with the id spliced both ways.  Returns the response line
        to write, or ``None`` to fall back to the parsing path.
        """
        if self._draining:
            return None
        op_match = _OP_RE.search(line)
        id_match = _ID_RE.search(line)
        if op_match is None or op_match.group(1) != b"localize" or id_match is None:
            return None
        client_id = id_match.group(1)
        key_match = _NETWORK_RE.search(line)
        key = (
            key_match.group(1).decode("utf-8", "replace")
            if key_match and key_match.group(1)
            else self.default_key
        )
        link = self.pick(key)
        if link is None:
            self._rejected.inc()
            return protocol.dumps_line(
                {
                    "id": _id_value(client_id),
                    "ok": False,
                    "error": protocol.error_payload(
                        protocol.E_OVERLOADED, "no healthy workers", 100.0
                    ),
                }
            )
        self._routed.inc()
        try:
            raw = await link.call_raw(line)
        except ConnectionError as error:
            return protocol.dumps_line(
                {
                    "id": _id_value(client_id),
                    "ok": False,
                    "error": protocol.error_payload(protocol.E_INTERNAL, str(error)),
                }
            )
        out = _splice_id(raw, client_id)
        if out is None:  # pragma: no cover - workers always echo an id
            return protocol.dumps_line(
                {
                    "id": _id_value(client_id),
                    "ok": False,
                    "error": protocol.error_payload(
                        protocol.E_INTERNAL, "worker response missing id"
                    ),
                }
            )
        return out

    async def _dispatch(self, message: dict) -> dict:
        request_id = message.get("id")
        op = message.get("op")
        if self._draining:
            return {
                "id": request_id,
                "ok": False,
                "error": protocol.error_payload(
                    protocol.E_DRAINING, "router is draining; connect elsewhere"
                ),
            }
        if op == "activate":
            return await self._op_activate(request_id, message)
        link = self.pick(self._routing_key(message))
        if link is None:
            self._rejected.inc()
            return {
                "id": request_id,
                "ok": False,
                "error": protocol.error_payload(
                    protocol.E_OVERLOADED,
                    "no healthy workers",
                    retry_after_ms=100.0,
                ),
            }
        self._routed.inc()
        response = await link.call(message)
        response["id"] = request_id
        if op == "health" and response.get("ok"):
            response["result"]["router"] = self._router_payload()
        return response

    def _router_payload(self) -> dict:
        workers = [link.describe() for link in self.links.values()]
        return {
            "workers": workers,
            "n_workers": len(workers),
            "healthy_workers": sum(1 for w in workers if w["healthy"]),
            "load_factor": self.load_factor,
        }

    async def _op_activate(self, request_id, message: dict) -> dict:
        """Broadcast a hot swap to every healthy worker, serialized.

        The registry swap inside each worker is atomic; the router lock
        serializes concurrent activations so every worker applies them
        in the same order.  The reply is the first worker's on success,
        or the first failure (all workers share one registry content,
        so an unknown model fails uniformly).
        """
        async with self._activate_lock:
            healthy = [link for link in self.links.values() if link.healthy]
            if not healthy:
                self._rejected.inc()
                return {
                    "id": request_id,
                    "ok": False,
                    "error": protocol.error_payload(
                        protocol.E_OVERLOADED, "no healthy workers", 100.0
                    ),
                }
            responses = await asyncio.gather(
                *(link.call(message) for link in healthy)
            )
            for response in responses:
                if not response.get("ok"):
                    response["id"] = request_id
                    return response
            response = responses[0]
            response["id"] = request_id
            self.log.event(
                "router.activate",
                model=message.get("name"),
                workers=len(healthy),
            )
            return response
