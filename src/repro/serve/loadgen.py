"""Open-loop Poisson load generation for the serving tier.

A closed-loop bench (K clients, each firing its next request when the
previous reply lands) measures the *server's convenience*, not the
user's experience: the clients slow down exactly when the server does,
arrivals synchronize with queue drains, and the tail collapses onto the
body (the old serve bench reported p99 ≈ p95).  This is the classic
*coordinated omission* bias.

:func:`run_open_loop` drives the service the way a community actually
does: request arrival times are drawn up front from a Poisson process
(exponential inter-arrival gaps at the offered rate), every request is
fired at its scheduled time whether or not earlier replies have landed,
and **latency is measured from the scheduled arrival stamp** on one
monotonic clock — a request the sender fired late because the server
pushed back is charged for that lag.  Replies carry the server's own
``queue_wait_ms`` / ``kernel_ms`` split, so the report separates time
spent in batching policy from time spent in the inference kernel.
"""

from __future__ import annotations

import contextlib
import gc
import threading
import time

import numpy as np

from .client import ServeClient


@contextlib.contextmanager
def _gc_paused():
    """Suspend cyclic GC for the measured window.

    A gen-2 collection in the *measuring* process stalls the sender and
    every reader thread for 100 ms+ and books that pause as server
    latency.  Reference counting still reclaims the per-request garbage
    (futures, dicts, arrays are acyclic); the deferred cycles are
    collected after the window closes.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()


def summarize_ms(values) -> dict:
    """mean/p50/p95/p99/max summary (milliseconds) of a sample."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return {"count": 0}
    return {
        "count": int(data.size),
        "mean": round(float(data.mean()), 3),
        "p50": round(float(np.percentile(data, 50)), 3),
        "p95": round(float(np.percentile(data, 95)), 3),
        "p99": round(float(np.percentile(data, 99)), 3),
        "max": round(float(data.max()), 3),
    }


def run_open_loop(
    host: str,
    port: int,
    feature_rows,
    rate_rps: float,
    n_requests: int,
    clients: int = 4,
    deadline_ms: float | None = None,
    inference: str | None = None,
    warmup: int = 32,
    seed: int = 0,
    timeout: float = 60.0,
) -> dict:
    """Offer Poisson traffic at ``rate_rps`` and report the latency tail.

    Args:
        host: server (or router) address.
        port: server (or router) port.
        feature_rows: feature vectors to cycle through (any length ≥ 1).
        rate_rps: offered arrival rate (requests per second).
        n_requests: measured request count (excludes warmup).
        clients: TCP connections to spread requests over round-robin —
            sockets are not the bottleneck under test, the server is.
        deadline_ms: per-request deadline forwarded to the server.
        inference: aggregation mode forwarded to the server.
        warmup: unmeasured priming requests (closed-loop) before the
            clock starts.
        seed: RNG seed of the arrival schedule.
        timeout: wait bound for the final stragglers.

    Returns:
        A report dict: offered/achieved rates, ``latency_ms`` /
        ``queue_wait_ms`` / ``kernel_ms`` summaries, error counts by
        code, mean batch size, and the sender's worst scheduling lag
        (``send_lag_ms_max`` — how open the loop actually stayed).

    Raises:
        ValueError: for a non-positive rate or request count.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    rows = [np.asarray(row, dtype=float) for row in feature_rows]
    if not rows:
        raise ValueError("feature_rows must not be empty")
    pool = [ServeClient(host, port, timeout=timeout) for _ in range(max(1, clients))]
    try:
        with _gc_paused():
            for i in range(warmup):
                pool[i % len(pool)].localize(
                    rows[i % len(rows)], deadline_ms=deadline_ms, inference=inference
                )
            gaps = np.random.default_rng(seed).exponential(
                1.0 / rate_rps, n_requests
            )
            schedule = np.cumsum(gaps)
            done_at = [0.0] * n_requests
            outcomes: list[dict | str] = [""] * n_requests
            remaining = threading.Semaphore(0)

            def make_callback(index: int):
                def on_done(future) -> None:
                    done_at[index] = time.monotonic()
                    try:
                        response = future.result()
                        outcomes[index] = (
                            response["result"]
                            if response.get("ok")
                            else response.get("error", {}).get("code", "error")
                        )
                    except BaseException:
                        outcomes[index] = "connection_error"
                    remaining.release()

                return on_done

            start = time.monotonic()
            max_lag = 0.0
            for i in range(n_requests):
                target = start + schedule[i]
                while True:
                    lag = time.monotonic() - target
                    if lag >= 0:
                        break
                    time.sleep(min(-lag, 0.002))
                max_lag = max(max_lag, lag)
                future = pool[i % len(pool)].localize_async(
                    rows[i % len(rows)], deadline_ms=deadline_ms, inference=inference
                )
                future.add_done_callback(make_callback(i))
            deadline = time.monotonic() + timeout
            for _ in range(n_requests):
                if not remaining.acquire(
                    timeout=max(0.1, deadline - time.monotonic())
                ):
                    break
    finally:
        for client in pool:
            client.close()

    latencies, queue_waits, kernels, batches = [], [], [], []
    errors: dict[str, int] = {}
    for i, outcome in enumerate(outcomes):
        if isinstance(outcome, dict):
            latencies.append((done_at[i] - (start + schedule[i])) * 1000.0)
            if "queue_wait_ms" in outcome:
                queue_waits.append(outcome["queue_wait_ms"])
            if "kernel_ms" in outcome:
                kernels.append(outcome["kernel_ms"])
            batches.append(outcome.get("batch_size", 1))
        else:
            errors[outcome or "pending"] = errors.get(outcome or "pending", 0) + 1
    duration = (max(t for t in done_at if t) - start) if latencies else 0.0
    return {
        "mode": "open-loop-poisson",
        "offered_rps": round(rate_rps, 1),
        "n_requests": n_requests,
        "completed": len(latencies),
        "clients": len(pool),
        "duration_s": round(duration, 3),
        "achieved_rps": round(len(latencies) / duration, 1) if duration > 0 else 0.0,
        "errors": errors,
        "latency_ms": summarize_ms(latencies),
        "queue_wait_ms": summarize_ms(queue_waits),
        "kernel_ms": summarize_ms(kernels),
        "mean_batch_size": (
            round(float(np.mean(batches)), 2) if batches else 0.0
        ),
        "send_lag_ms_max": round(max_lag * 1000.0, 3),
    }
