"""Dynamic micro-batching: coalesce concurrent requests into one kernel call.

The flattened tree-kernel inference path (``AquaScale.localize_batch``)
amortises its dispatch overhead across rows, so a serving layer wins by
stacking whatever requests are in flight *right now* into one call.  The
:class:`MicroBatcher` bounds every batch two ways:

* ``max_batch_size`` — dispatch as soon as this many requests are
  waiting (throughput bound);
* an **adaptive hold-down** — never hold the first request longer than
  the traffic can actually repay.  A fixed TTL (the original
  ``max_wait_ms`` policy) taxes sparse traffic with the full wait and
  still dispatches half-empty batches when arrivals are merely *near*
  the window; the adaptive policy instead estimates the request
  inter-arrival gap with an EWMA (:class:`ArrivalEstimator`) and holds a
  partial batch only for the time a full batch is *expected* to take to
  form — long waits when requests are dense, immediate dispatch when
  they are sparse.  ``max_wait_ms`` survives as the hard ceiling, and
  ``adaptive=False`` restores the fixed-TTL behaviour.

Batches execute on a worker thread pool, never on the event loop — the
loop keeps accepting sockets and forming the *next* batch while
inference runs, which is what makes coalescing actually happen under
load.  The batcher is generic: items are opaque, and a ``run_batch``
callable (supplied by the server) maps a list of items to a list of
results of the same length.  Per-request queue wait (enqueue to kernel
dispatch, monotonic clock) is recorded in the
``serve_queue_wait_seconds`` histogram so the latency budget can be
split into queueing policy vs kernel time.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..stream.metrics import MetricsRegistry


class BatcherClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after drain has begun."""


class ArrivalEstimator:
    """EWMA of request inter-arrival gaps, in seconds.

    Single-writer (the event loop) — no locking.  ``gap_seconds`` is
    ``None`` until two arrivals have been observed; a long idle period
    between bursts is folded in like any other gap, so the estimate
    recovers from stale density within a few arrivals.

    Args:
        alpha: EWMA smoothing weight for the newest gap.

    Raises:
        ValueError: for alpha outside (0, 1].
    """

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._last: float | None = None
        self._gap: float | None = None

    def observe(self, now: float) -> None:
        """Fold one arrival stamp (monotonic seconds) into the estimate."""
        if self._last is not None:
            gap = max(0.0, now - self._last)
            self._gap = (
                gap
                if self._gap is None
                else (1.0 - self.alpha) * self._gap + self.alpha * gap
            )
        self._last = now

    @property
    def gap_seconds(self) -> float | None:
        """Current inter-arrival estimate (None before two arrivals)."""
        return self._gap


class MicroBatcher:
    """Coalesces awaitable submissions into bounded batches.

    Args:
        run_batch: ``list[item] -> list[result]``; executed on a worker
            thread, must return exactly one result per item (exceptions
            fail every item of the batch).
        max_batch_size: dispatch when this many items are waiting.
        max_wait_ms: hold-down ceiling after the first item (the whole
            wait in fixed mode, the upper bound in adaptive mode).
        workers: inference thread-pool size (concurrent batches).
        adaptive: scale the hold-down with the arrival-rate EWMA
            (default) instead of always waiting the full ``max_wait_ms``.
        ewma_alpha: smoothing weight of the arrival estimator.
        metrics: registry for the ``serve_batch_size`` /
            ``serve_queue_wait_seconds`` histograms and the
            ``serve_queue_depth`` gauge.

    Raises:
        ValueError: for non-positive batch size, wait, worker count, or
            an out-of-range ``ewma_alpha``.
    """

    #: Hold a partial batch this many expected fill-times (adaptive mode):
    #: >1 absorbs arrival jitter without stretching the tail far past the
    #: point where the batch should have filled.
    FILL_HEADROOM = 2.0

    def __init__(
        self,
        run_batch: Callable[[list[Any]], list[Any]],
        max_batch_size: int = 8,
        max_wait_ms: float = 5.0,
        workers: int = 2,
        adaptive: bool = True,
        ewma_alpha: float = 0.2,
        metrics: MetricsRegistry | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.run_batch = run_batch
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.workers = workers
        self.adaptive = adaptive
        self.arrivals = ArrivalEstimator(alpha=ewma_alpha)
        self.metrics = metrics or MetricsRegistry()
        self._batch_size_hist = self.metrics.histogram("serve_batch_size")
        self._queue_wait_hist = self.metrics.histogram("serve_queue_wait_seconds")
        self._batches_counter = self.metrics.counter("serve_batches_total")
        self._queue_gauge = self.metrics.gauge("serve_queue_depth")
        self._queue: asyncio.Queue | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._gather_task: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and start the gather task."""
        self._queue = asyncio.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-infer"
        )
        self._closed = False
        self._gather_task = asyncio.get_running_loop().create_task(self._gather())

    async def submit(self, item: Any) -> Any:
        """Queue one item and await its result.

        Raises:
            BatcherClosed: when the batcher is draining or stopped.
            Exception: whatever ``run_batch`` raised for this batch.
        """
        if self._closed or self._queue is None:
            raise BatcherClosed("micro-batcher is not accepting work")
        self.arrivals.observe(time.monotonic())
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((item, future, time.monotonic()))
        self._queue_gauge.set(self._queue.qsize())
        return await future

    async def drain(self) -> None:
        """Stop intake, flush queued items, and wait for running batches."""
        self._closed = True
        if self._queue is not None:
            await self._queue.join()
        if self._gather_task is not None:
            self._gather_task.cancel()
            try:
                await self._gather_task
            except asyncio.CancelledError:
                pass
            self._gather_task = None
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _wait_budget(self, have: int) -> float:
        """Hold-down (seconds) for a partial batch of ``have`` items.

        Fixed mode: the full ``max_wait_ms``.  Adaptive mode: the
        EWMA-estimated time for the remaining slots to fill, padded by
        :data:`FILL_HEADROOM` and capped at ``max_wait_ms`` — and zero
        whenever the traffic is too sparse for waiting to pay (no
        history yet, or one *single* slot is expected to take longer
        than the whole ceiling).
        """
        max_wait = self.max_wait_ms / 1000.0
        if not self.adaptive:
            return max_wait
        gap = self.arrivals.gap_seconds
        if gap is None or gap >= max_wait:
            return 0.0
        need = self.max_batch_size - have
        return min(max_wait, gap * need * self.FILL_HEADROOM)

    async def _gather(self) -> None:
        """The batching loop: pull, coalesce under the policy, dispatch."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._queue.get()
            batch = [entry]
            # Whatever is already queued joins for free — no policy, no
            # waiting, and a burst straight to max_batch_size never even
            # consults the estimator.
            while len(batch) < self.max_batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if len(batch) < self.max_batch_size:
                budget = self._wait_budget(len(batch))
                if budget > 0.0:
                    deadline = loop.time() + budget
                    while len(batch) < self.max_batch_size:
                        timeout = deadline - loop.time()
                        if timeout <= 0:
                            break
                        try:
                            batch.append(
                                await asyncio.wait_for(self._queue.get(), timeout)
                            )
                        except asyncio.TimeoutError:
                            break
            self._queue_gauge.set(self._queue.qsize())
            task = loop.create_task(self._execute(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    def _run_timed(self, entries: list[tuple]) -> list[Any]:
        """Record per-item queue wait, then run the batch (worker thread)."""
        now = time.monotonic()
        for _, _, enqueued in entries:
            self._queue_wait_hist.observe(now - enqueued)
        return self.run_batch([item for item, _, _ in entries])

    async def _execute(self, batch: list) -> None:
        """Run one batch on the pool and deliver per-item results."""
        assert self._queue is not None and self._pool is not None
        self._batch_size_hist.observe(len(batch))
        self._batches_counter.inc()
        try:
            results = await asyncio.get_running_loop().run_in_executor(
                self._pool, self._run_timed, batch
            )
            if len(results) != len(batch):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for "
                    f"{len(batch)} items"
                )
            for (_, future, _), result in zip(batch, results):
                if not future.cancelled():
                    future.set_result(result)
        except Exception as error:
            for _, future, _ in batch:
                if not future.cancelled():
                    future.set_exception(error)
        finally:
            for _ in batch:
                self._queue.task_done()
