"""Dynamic micro-batching: coalesce concurrent requests into one kernel call.

The flattened tree-kernel inference path (``AquaScale.localize_batch``)
amortises its dispatch overhead across rows, so a serving layer wins by
stacking whatever requests are in flight *right now* into one call.  The
:class:`MicroBatcher` implements the classic policy pair:

* ``max_batch_size`` — dispatch as soon as this many requests are
  waiting (throughput bound);
* ``max_wait_ms``    — never hold the first request longer than this
  (latency bound).

Batches execute on a worker thread pool, never on the event loop — the
loop keeps accepting sockets and forming the *next* batch while
inference runs, which is what makes coalescing actually happen under
load.  The batcher is generic: items are opaque, and a ``run_batch``
callable (supplied by the server) maps a list of items to a list of
results of the same length.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..stream.metrics import MetricsRegistry


class BatcherClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after drain has begun."""


class MicroBatcher:
    """Coalesces awaitable submissions into bounded batches.

    Args:
        run_batch: ``list[item] -> list[result]``; executed on a worker
            thread, must return exactly one result per item (exceptions
            fail every item of the batch).
        max_batch_size: dispatch when this many items are waiting.
        max_wait_ms: dispatch at latest this long after the first item.
        workers: inference thread-pool size (concurrent batches).
        metrics: registry for the ``serve_batch_size`` histogram and
            ``serve_queue_depth`` gauge.

    Raises:
        ValueError: for non-positive batch size, wait, or worker count.
    """

    def __init__(
        self,
        run_batch: Callable[[list[Any]], list[Any]],
        max_batch_size: int = 8,
        max_wait_ms: float = 5.0,
        workers: int = 2,
        metrics: MetricsRegistry | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.run_batch = run_batch
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.workers = workers
        self.metrics = metrics or MetricsRegistry()
        self._batch_size_hist = self.metrics.histogram("serve_batch_size")
        self._batches_counter = self.metrics.counter("serve_batches_total")
        self._queue_gauge = self.metrics.gauge("serve_queue_depth")
        self._queue: asyncio.Queue | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._gather_task: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and start the gather task."""
        self._queue = asyncio.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-infer"
        )
        self._closed = False
        self._gather_task = asyncio.get_running_loop().create_task(self._gather())

    async def submit(self, item: Any) -> Any:
        """Queue one item and await its result.

        Raises:
            BatcherClosed: when the batcher is draining or stopped.
            Exception: whatever ``run_batch`` raised for this batch.
        """
        if self._closed or self._queue is None:
            raise BatcherClosed("micro-batcher is not accepting work")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((item, future))
        self._queue_gauge.set(self._queue.qsize())
        return await future

    async def drain(self) -> None:
        """Stop intake, flush queued items, and wait for running batches."""
        self._closed = True
        if self._queue is not None:
            await self._queue.join()
        if self._gather_task is not None:
            self._gather_task.cancel()
            try:
                await self._gather_task
            except asyncio.CancelledError:
                pass
            self._gather_task = None
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    async def _gather(self) -> None:
        """The batching loop: pull, coalesce under the policy, dispatch."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        max_wait = self.max_wait_ms / 1000.0
        while True:
            entry = await self._queue.get()
            batch = [entry]
            deadline = loop.time() + max_wait
            while len(batch) < self.max_batch_size:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout)
                    )
                except asyncio.TimeoutError:
                    break
            self._queue_gauge.set(self._queue.qsize())
            task = loop.create_task(self._execute(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _execute(self, batch: list) -> None:
        """Run one batch on the pool and deliver per-item results."""
        assert self._queue is not None and self._pool is not None
        items = [item for item, _ in batch]
        self._batch_size_hist.observe(len(items))
        self._batches_counter.inc()
        try:
            results = await asyncio.get_running_loop().run_in_executor(
                self._pool, self.run_batch, items
            )
            if len(results) != len(items):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for "
                    f"{len(items)} items"
                )
            for (_, future), result in zip(batch, results):
                if not future.cancelled():
                    future.set_result(result)
        except Exception as error:
            for _, future in batch:
                if not future.cancelled():
                    future.set_exception(error)
        finally:
            for _ in batch:
                self._queue.task_done()
