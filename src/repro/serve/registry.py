"""Versioned model registry with content-hash etags and atomic hot-swap.

Utilities retrain profiles as deployments change; the service must pick
up a new model without dropping requests.  The registry holds any number
of named :class:`ModelEntry` rows (a trained
:class:`~repro.core.AquaScale` plus the artifact header and its
content-hash etag from :func:`repro.datasets.save_profile`) and one
*active* pointer.  :meth:`ModelRegistry.activate` swaps that pointer
under a lock — batches capture the entry at dispatch time, so in-flight
requests finish on the model they were admitted under while new batches
see the new one.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..core import AquaScale
from ..datasets.cache import (
    _profile_metadata,
    _read_profile_file,
    profile_content_hash,
)


@dataclass(frozen=True)
class ModelEntry:
    """One registered model version.

    Attributes:
        name: registry key (unique).
        model: the trained core serving requests.
        etag: ``sha256:...`` content hash of the serialized artifact.
        source: artifact path, or ``"<in-process>"`` for direct registers.
        header: artifact header (network, classifier, sensor count, ...).
    """

    name: str
    model: AquaScale
    etag: str
    source: str = "<in-process>"
    header: dict = field(default_factory=dict)

    def describe(self, active: bool) -> dict:
        """The ``models`` endpoint row for this entry."""
        return {
            "name": self.name,
            "etag": self.etag,
            "active": bool(active),
            "source": self.source,
            "network": self.header.get("network"),
            "classifier": self.header.get("classifier"),
            "n_sensors": self.header.get("n_sensors"),
        }


class ModelRegistry:
    """Named model versions behind one atomically-swapped active pointer."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[str, ModelEntry] = {}
        self._active: str | None = None

    # ------------------------------------------------------------------
    def register(self, name: str, model: AquaScale, activate: bool = True) -> ModelEntry:
        """Register a trained in-process model under ``name``.

        The etag is the content hash of the model's pickled form — the
        same value :func:`repro.datasets.save_profile` would write — so
        in-process and on-disk registrations of one model agree.

        Raises:
            ValueError: for a duplicate name.
            RuntimeError: for an untrained model.
        """
        model.engine  # fail fast when untrained
        payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        entry = ModelEntry(
            name=name,
            model=model,
            etag=profile_content_hash(payload),
            header=_profile_metadata(model),
        )
        return self._install(entry, activate)

    def register_shared(self, artifact, activate: bool = True) -> ModelEntry:
        """Register a :class:`~repro.serve.shm.SharedModelArtifact`.

        The entry serves the artifact's zero-copy model (read-only views
        over the shared segment) and reuses the artifact's etag, which
        is the content hash of the ordinary pickled form — so a shared
        registration and a direct :meth:`register` of the same model
        report one identity.

        Raises:
            ValueError: for a duplicate name.
        """
        entry = ModelEntry(
            name=artifact.manifest.name,
            model=artifact.model,
            etag=artifact.manifest.etag,
            source=f"<shared:{artifact.manifest.segment}>",
            header=dict(artifact.manifest.header),
        )
        return self._install(entry, activate)

    def load(self, path: str | Path, name: str | None = None, activate: bool = True) -> ModelEntry:
        """Load a :func:`~repro.datasets.save_profile` artifact.

        Args:
            path: profile artifact path.
            name: registry key (default: the file stem).
            activate: also make this the serving model.

        Raises:
            ValueError: for duplicate names, format-version mismatches,
                or corrupt artifacts.
            RuntimeError: for an untrained model.
        """
        path = Path(path)
        header, payload = _read_profile_file(path)
        model = pickle.loads(payload)
        model.engine  # fail fast when untrained
        entry = ModelEntry(
            name=name or path.stem,
            model=model,
            etag=header["content_hash"],
            source=str(path),
            header=header,
        )
        return self._install(entry, activate)

    def _install(self, entry: ModelEntry, activate: bool) -> ModelEntry:
        with self._lock:
            if entry.name in self._entries:
                raise ValueError(f"model {entry.name!r} is already registered")
            self._entries[entry.name] = entry
            if activate or self._active is None:
                self._active = entry.name
        return entry

    # ------------------------------------------------------------------
    def activate(self, name: str) -> ModelEntry:
        """Atomically make ``name`` the serving model (hot swap).

        In-flight batches keep the entry they captured at dispatch; only
        batches formed after this call see the new model.

        Raises:
            KeyError: for an unregistered name.
        """
        with self._lock:
            if name not in self._entries:
                raise KeyError(f"model {name!r} is not registered")
            self._active = name
            return self._entries[name]

    @property
    def active(self) -> ModelEntry:
        """The entry new batches will be served by.

        Raises:
            RuntimeError: when the registry is empty.
        """
        with self._lock:
            if self._active is None:
                raise RuntimeError("model registry has no active model")
            return self._entries[self._active]

    def get(self, name: str) -> ModelEntry:
        """Look up one entry by name.

        Raises:
            KeyError: for an unregistered name.
        """
        with self._lock:
            if name not in self._entries:
                raise KeyError(f"model {name!r} is not registered")
            return self._entries[name]

    def describe(self) -> list[dict]:
        """The ``models`` endpoint payload: every entry, active flagged."""
        with self._lock:
            return [
                entry.describe(active=(name == self._active))
                for name, entry in sorted(self._entries.items())
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
