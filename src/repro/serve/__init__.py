"""repro.serve — the always-on localization service.

The operations-facing deployment of the two-phase pipeline: a
stdlib-only asyncio TCP server speaking newline-delimited JSON, with

* **adaptive micro-batching** — concurrent ``localize`` requests
  coalesce into one :meth:`~repro.core.AquaScale.localize_batch` kernel
  call; the hold-down scales with an arrival-rate EWMA, bounded by
  ``max_batch_size`` / ``max_wait_ms`` (:mod:`~repro.serve.batcher`);
* a **model registry** — named, versioned profiles with content-hash
  etags and atomic hot-swap; in-flight batches finish on the model they
  captured (:mod:`~repro.serve.registry`);
* **admission control** — a bounded in-flight window, per-request
  deadlines, load shedding with honest ``retry_after_ms`` hints, and
  graceful drain on SIGTERM (:mod:`~repro.serve.admission`);
* **multi-worker scale-out** — N worker processes sharing each model
  zero-copy through ``multiprocessing.shared_memory``
  (:mod:`~repro.serve.shm`), fronted by a consistent-hash router with
  bounded-load spill (:mod:`~repro.serve.router`,
  :mod:`~repro.serve.cluster`);
* an **open-loop load harness** — Poisson arrivals, monotonic clocks,
  queue-wait vs kernel-time split (:mod:`~repro.serve.loadgen`).

Everything is instrumented through :mod:`repro.stream.metrics` and
logged through :mod:`repro.stream.log`.  Run it from the CLI with
``repro serve`` (``--workers N`` for a cluster), or in-process::

    from repro.serve import ServeClient, start_in_background

    with start_in_background(trained_model) as handle:
        with ServeClient(*handle.address) as client:
            reply = client.localize(features)

See ``docs/serving.md`` for the protocol, batching policy, and tuning.
"""

from .admission import AdmissionController, AdmissionDecision
from .batcher import ArrivalEstimator, BatcherClosed, MicroBatcher
from .client import LocalizeReply, ServeClient, ServeError
from .cluster import ClusterHandle, ServeCluster, start_cluster_in_background
from .loadgen import run_open_loop
from .registry import ModelEntry, ModelRegistry
from .router import HashRing, RouterServer, WorkerLink
from .server import (
    LocalizationServer,
    ServeConfig,
    ServerHandle,
    start_in_background,
)
from .shm import ArtifactManifest, SharedModelArtifact

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ArrivalEstimator",
    "ArtifactManifest",
    "BatcherClosed",
    "ClusterHandle",
    "HashRing",
    "LocalizationServer",
    "LocalizeReply",
    "MicroBatcher",
    "ModelEntry",
    "ModelRegistry",
    "RouterServer",
    "ServeClient",
    "ServeCluster",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "SharedModelArtifact",
    "WorkerLink",
    "run_open_loop",
    "start_cluster_in_background",
    "start_in_background",
]
