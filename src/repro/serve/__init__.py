"""repro.serve — the always-on localization service.

The operations-facing deployment of the two-phase pipeline: a
stdlib-only asyncio TCP server speaking newline-delimited JSON, with

* **dynamic micro-batching** — concurrent ``localize`` requests coalesce
  into one :meth:`~repro.core.AquaScale.localize_batch` kernel call
  under a ``max_batch_size`` / ``max_wait_ms`` policy
  (:mod:`~repro.serve.batcher`);
* a **model registry** — named, versioned profiles with content-hash
  etags and atomic hot-swap; in-flight batches finish on the model they
  captured (:mod:`~repro.serve.registry`);
* **admission control** — a bounded in-flight window, per-request
  deadlines, load shedding with honest ``retry_after_ms`` hints, and
  graceful drain on SIGTERM (:mod:`~repro.serve.admission`).

Everything is instrumented through :mod:`repro.stream.metrics` and
logged through :mod:`repro.stream.log`.  Run it from the CLI with
``repro serve``, or in-process::

    from repro.serve import ServeClient, start_in_background

    with start_in_background(trained_model) as handle:
        with ServeClient(*handle.address) as client:
            reply = client.localize(features)

See ``docs/serving.md`` for the protocol, batching policy, and tuning.
"""

from .admission import AdmissionController, AdmissionDecision
from .batcher import BatcherClosed, MicroBatcher
from .client import LocalizeReply, ServeClient, ServeError
from .registry import ModelEntry, ModelRegistry
from .server import (
    LocalizationServer,
    ServeConfig,
    ServerHandle,
    start_in_background,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BatcherClosed",
    "LocalizationServer",
    "LocalizeReply",
    "MicroBatcher",
    "ModelEntry",
    "ModelRegistry",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "start_in_background",
]
