"""Zero-copy shared-memory model artifacts for multi-worker serving.

One serve box runs N worker processes, but a trained
:class:`~repro.core.AquaScale` is dominated by a handful of large flat
numpy arrays — the :class:`~repro.ml.flatten.FlattenedForest` node
tables, steady-state baselines, covariance factors.  Pickling the model
into every worker would multiply resident memory by N and make hot swap
an N-way copy.  Instead the cluster *publishes* each model once:

* :meth:`SharedModelArtifact.publish` pickles the model through an
  extracting pickler that diverts every large C-contiguous array into a
  single :class:`multiprocessing.shared_memory.SharedMemory` segment
  (64-byte-aligned offsets) and keeps a small *skeleton* pickle with
  persistent-id references in their place;
* :meth:`SharedModelArtifact.attach` rebuilds the model in a worker by
  unpickling the skeleton with the references resolved to **read-only
  numpy views over the mapped segment** — no array bytes are copied,
  and all workers page the same physical memory.

The artifact's etag is the content hash of the model's ordinary pickled
form — exactly what :meth:`repro.serve.registry.ModelRegistry.register`
computes — so single-process and shared-memory deployments of one model
agree on identity, and the ``serve_vs_direct`` oracle can hold the
cluster to bit-identical posteriors.

Lifetime follows Linux unlink-while-mapped semantics: the publisher
:meth:`~SharedModelArtifact.unlink`\\ s the segment name after the last
worker has exited (or at drain), and the kernel frees the pages when the
final mapping disappears — a segment is never yanked out from under a
reader.
"""

from __future__ import annotations

import contextlib
import io
import os
import pickle
import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..core import AquaScale
from ..datasets.cache import _profile_metadata, profile_content_hash

#: Arrays smaller than this stay in the skeleton pickle: the per-array
#: bookkeeping and alignment padding would cost more than the copy.  One
#: KiB keeps per-junction weight vectors (a few hundred float64s each,
#: the bulk of a trained profile) in the segment while tiny index arrays
#: ride the skeleton.
SHARE_MIN_BYTES = 1024

#: Segment offsets are aligned to cache lines so views start clean.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one externalized array inside the segment."""

    offset: int
    dtype: str
    shape: tuple


@dataclass(frozen=True)
class ArtifactManifest:
    """Everything a worker needs to attach one published model.

    Plain picklable data (no live handles), so it travels to spawned
    worker processes as part of their startup arguments.
    """

    name: str
    segment: str
    nbytes: int
    arrays: tuple
    skeleton: bytes
    etag: str
    header: dict = field(default_factory=dict)
    creator_pid: int = 0


class _ExtractingPickler(pickle.Pickler):
    """Pickler that diverts large arrays out of the stream.

    Every C-contiguous, non-object ndarray of at least ``min_bytes`` is
    assigned the next aligned segment offset and replaced by a
    persistent id; the caller copies the collected arrays into the
    segment afterwards.  Duplicate objects collapse to one spec.
    """

    def __init__(self, file, min_bytes: int = SHARE_MIN_BYTES):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.min_bytes = min_bytes
        self.specs: list[ArraySpec] = []
        self.arrays: list[np.ndarray] = []
        self.total = 0
        self._seen: dict[int, int] = {}

    def persistent_id(self, obj):
        if not (
            isinstance(obj, np.ndarray)
            and obj.dtype != object
            and obj.flags["C_CONTIGUOUS"]
            and obj.nbytes >= self.min_bytes
        ):
            return None
        index = self._seen.get(id(obj))
        if index is None:
            index = len(self.specs)
            self._seen[id(obj)] = index
            self.specs.append(
                ArraySpec(offset=self.total, dtype=obj.dtype.str, shape=obj.shape)
            )
            self.arrays.append(obj)
            self.total += -(-obj.nbytes // _ALIGN) * _ALIGN
        return ("shm-array", index)


class _AttachingUnpickler(pickle.Unpickler):
    """Unpickler that resolves persistent ids to views over the segment."""

    def __init__(self, file, segment: shared_memory.SharedMemory, specs):
        super().__init__(file)
        self.segment = segment
        self.specs = specs
        self.views: list[weakref.ref] = []

    def persistent_load(self, pid):
        kind, index = pid
        if kind != "shm-array":
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        spec = self.specs[index]
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=self.segment.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        # Weakly tracked so detach() can tell whether any reader still
        # holds segment-backed memory (numpy acquires the raw pointer
        # without an exported-buffer claim, so ``close()`` would succeed
        # and leave such views dangling rather than raise BufferError).
        self.views.append(weakref.ref(view))
        return view


@contextlib.contextmanager
def _reader_attach():
    """Suppress resource-tracker registration while attaching as reader.

    Python < 3.13 registers every attach with the resource tracker,
    which the workers share with the publisher — the first worker to
    exit (or unregister) would strip the publisher's own claim and
    either unlink the segment early or make the final unlink a
    double-remove.  The publisher owns the name; readers never touch
    the tracker.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


class SharedModelArtifact:
    """One published model: manifest + segment handle + rebuilt model.

    Created by :meth:`publish` (owner side) or :meth:`attach` (reader
    side).  The owner is responsible for :meth:`unlink` once every
    reader has detached or exited; readers :meth:`detach` (or simply
    exit — the kernel drops their mapping either way).
    """

    def __init__(
        self,
        manifest: ArtifactManifest,
        segment: shared_memory.SharedMemory,
        model: AquaScale,
        owner: bool,
        views: list[weakref.ref] | None = None,
    ):
        self.manifest = manifest
        self.model = model
        self._segment: shared_memory.SharedMemory | None = segment
        self.owner = owner
        self._unlinked = False
        self._views = list(views or [])

    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, name: str, model: AquaScale) -> "SharedModelArtifact":
        """Externalize ``model``'s large arrays into a fresh segment.

        The returned artifact's ``model`` is the original object (the
        publisher keeps serving zero-copy too, from its own pages).

        Raises:
            RuntimeError: for an untrained model.
        """
        model.engine  # fail fast when untrained
        payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        etag = profile_content_hash(payload)
        buffer = io.BytesIO()
        pickler = _ExtractingPickler(buffer)
        pickler.dump(model)
        segment = shared_memory.SharedMemory(create=True, size=max(pickler.total, 1))
        for spec, array in zip(pickler.specs, pickler.arrays):
            _copy_into(segment, spec, array)
        manifest = ArtifactManifest(
            name=name,
            segment=segment.name,
            nbytes=pickler.total,
            arrays=tuple(pickler.specs),
            skeleton=buffer.getvalue(),
            etag=etag,
            header=_profile_metadata(model),
            creator_pid=os.getpid(),
        )
        return cls(manifest, segment=segment, model=model, owner=True)

    @classmethod
    def attach(cls, manifest: ArtifactManifest) -> "SharedModelArtifact":
        """Map a published segment and rebuild its model, zero-copy.

        Raises:
            FileNotFoundError: when the segment has been unlinked.
        """
        if os.getpid() != manifest.creator_pid:
            with _reader_attach():
                segment = shared_memory.SharedMemory(name=manifest.segment)
        else:
            segment = shared_memory.SharedMemory(name=manifest.segment)
        unpickler = _AttachingUnpickler(
            io.BytesIO(manifest.skeleton), segment=segment, specs=manifest.arrays
        )
        model = unpickler.load()
        return cls(
            manifest,
            segment=segment,
            model=model,
            owner=False,
            views=unpickler.views,
        )

    # ------------------------------------------------------------------
    @property
    def n_shared_arrays(self) -> int:
        """How many arrays live in the segment."""
        return len(self.manifest.arrays)

    @property
    def shared_nbytes(self) -> int:
        """Segment size in bytes (aligned)."""
        return self.manifest.nbytes

    def detach(self) -> bool:
        """Drop the model and close this process's mapping.

        Returns ``True`` when the mapping actually closed; ``False``
        when live numpy views still pin the buffer — closing then would
        unmap memory those arrays still point into, so the mapping is
        kept and closes when the last view dies or the process exits.
        """
        self.model = None
        if self._segment is None:
            return True
        self._views = [ref for ref in self._views if ref() is not None]
        if self._views:
            return False
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - exported-buffer path
            return False
        self._segment = None
        return True

    def unlink(self) -> None:
        """Remove the segment name (owner side; safe to repeat).

        Existing mappings stay valid; the kernel frees the pages when
        the last one disappears.
        """
        if self._unlinked:
            return
        self._unlinked = True
        try:
            target = self._segment or shared_memory.SharedMemory(
                name=self.manifest.segment
            )
            target.unlink()
        except FileNotFoundError:
            pass


def _copy_into(
    segment: shared_memory.SharedMemory, spec: ArraySpec, array: np.ndarray
) -> None:
    """Copy one array to its segment offset (scoped so no view lingers)."""
    view = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf, offset=spec.offset
    )
    view[...] = array
