"""Admission control: keep the service alive by refusing excess load.

A serving system protecting a CPU-bound inference core has one lever
that always works — don't enqueue what it cannot finish in time.  The
:class:`AdmissionController` bounds the number of requests in flight
(queued + batching + inferring), stamps every admitted request with a
deadline, and sheds the rest with an honest ``retry_after_ms`` hint
derived from the observed service rate, so well-behaved clients back off
instead of hammering a melting server.  During drain (SIGTERM) new work
is refused immediately while admitted requests finish.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..stream.metrics import MetricsRegistry
from . import protocol


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    Attributes:
        admitted: the request may enter the queue.
        code: protocol error code when refused.
        message: human-readable refusal reason.
        retry_after_ms: suggested client back-off when shed for load.
    """

    admitted: bool
    code: str | None = None
    message: str = ""
    retry_after_ms: float | None = None


class AdmissionController:
    """Bounded in-flight window + deadline stamping + load shedding.

    Args:
        max_pending: in-flight request ceiling; request ``max_pending+1``
            is shed with ``overloaded``.
        default_deadline_ms: deadline applied when a request names none.
        metrics: registry for the ``serve_inflight`` gauge and shed
            counters (a private registry is created when omitted).

    Raises:
        ValueError: for a non-positive window or deadline.
    """

    #: Seed for the service-time EWMA before any batch has completed (s).
    INITIAL_SERVICE_SECONDS = 0.005
    #: EWMA smoothing for per-request service time.
    EWMA_ALPHA = 0.2

    def __init__(
        self,
        max_pending: int = 64,
        default_deadline_ms: float = 2000.0,
        metrics: MetricsRegistry | None = None,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        self.max_pending = max_pending
        self.default_deadline_ms = default_deadline_ms
        self.metrics = metrics or MetricsRegistry()
        self._lock = threading.Lock()
        self._pending = 0
        self._draining = False
        self._service_ewma = self.INITIAL_SERVICE_SECONDS
        self._inflight_gauge = self.metrics.gauge("serve_inflight")
        self._shed_counter = self.metrics.counter("serve_shed_total")

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests currently admitted and not yet answered."""
        with self._lock:
            return self._pending

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` has been called."""
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Refuse all new work from now on; admitted requests finish."""
        with self._lock:
            self._draining = True

    # ------------------------------------------------------------------
    def admit(self) -> AdmissionDecision:
        """Decide one request; on admission the in-flight count is taken.

        The caller owns a matching :meth:`release` for every admitted
        request (use try/finally around the request lifetime).
        """
        with self._lock:
            if self._draining:
                return AdmissionDecision(
                    admitted=False,
                    code=protocol.E_DRAINING,
                    message="server is draining; connect elsewhere",
                )
            if self._pending >= self.max_pending:
                self._shed_counter.inc()
                return AdmissionDecision(
                    admitted=False,
                    code=protocol.E_OVERLOADED,
                    message=(
                        f"request queue full ({self._pending} in flight, "
                        f"limit {self.max_pending})"
                    ),
                    retry_after_ms=self._retry_after_ms_locked(),
                )
            self._pending += 1
            self._inflight_gauge.set(self._pending)
            return AdmissionDecision(admitted=True)

    def release(self) -> None:
        """Return one admitted request's slot (response sent or failed)."""
        with self._lock:
            self._pending = max(0, self._pending - 1)
            self._inflight_gauge.set(self._pending)

    # ------------------------------------------------------------------
    def deadline_for(self, deadline_ms: float | None, now: float | None = None) -> float:
        """Absolute monotonic deadline for a request.

        Args:
            deadline_ms: the client's budget; the server default applies
                when omitted.
            now: monotonic arrival stamp (defaults to ``time.monotonic()``).

        Raises:
            ValueError: for a non-positive client budget.
        """
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        deadline_ms = float(deadline_ms)
        if deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        return (time.monotonic() if now is None else now) + deadline_ms / 1000.0

    def observe_service_time(self, seconds_per_request: float) -> None:
        """Fold one completed request's service time into the EWMA."""
        if seconds_per_request < 0:
            return
        with self._lock:
            self._service_ewma = (
                (1.0 - self.EWMA_ALPHA) * self._service_ewma
                + self.EWMA_ALPHA * seconds_per_request
            )

    def _retry_after_ms_locked(self) -> float:
        """Back-off hint: time to clear the current backlog at the
        observed service rate (called with the lock held)."""
        return max(1.0, self._pending * self._service_ewma * 1000.0)
