"""Multi-worker serving: N processes, one shared-memory model, one port.

A single :class:`~repro.serve.server.LocalizationServer` tops out when
its event loop (JSON parsing, socket writes) saturates one core.  The
:class:`ServeCluster` scales the same box out:

1. every registered model is **published once** into a
   :class:`~repro.serve.shm.SharedModelArtifact` (flat arrays in a
   ``multiprocessing.shared_memory`` segment);
2. N worker processes are spawned, each attaching the segments
   zero-copy and running an ordinary ``LocalizationServer`` on an
   ephemeral port — same batcher, same admission, same wire protocol;
3. a :class:`~repro.serve.router.RouterServer` fronts them on the
   cluster's public port, consistent-hashing requests by network id
   with bounded-load spill.

Hot swap stays atomic: ``activate`` broadcasts through the router to
every worker, and inside each worker in-flight batches keep the entry
they captured at dispatch.  Drain is ordered — router stops feeding,
workers get SIGTERM and finish their admitted requests, and only after
the last worker exits are the segments unlinked, so no reader ever
loses its mapping.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import gc
import multiprocessing
import signal
import threading

from ..core import AquaScale
from ..stream.log import StructuredLogger, get_stream_logger
from ..stream.metrics import MetricsRegistry
from .router import RouterServer, WorkerLink
from .server import ServeConfig
from .shm import SharedModelArtifact


def _worker_main(conn, manifests, active_name, config_kwargs, worker_id):
    """Entry point of one spawned worker process.

    Attaches every published artifact, builds a registry over the
    zero-copy models, reports its ephemeral port through ``conn``, and
    serves until SIGTERM drains it.
    """
    from .registry import ModelRegistry
    from .server import LocalizationServer

    artifacts = [SharedModelArtifact.attach(manifest) for manifest in manifests]
    registry = ModelRegistry()
    for artifact in artifacts:
        registry.register_shared(
            artifact, activate=(artifact.manifest.name == active_name)
        )
    config = ServeConfig(**config_kwargs)

    async def run() -> None:
        server = LocalizationServer(registry, config=config)
        await server.start()
        conn.send(server.port)
        conn.close()
        await server.serve_forever(install_signal_handlers=True)

    asyncio.run(run())


class ServeCluster:
    """N serve workers behind one consistent-hash router port.

    Args:
        models: one trained :class:`~repro.core.AquaScale` (registered
            as ``"default"``) or an ordered ``{name: model}`` mapping;
            the first name is the initially active model on every
            worker.
        n_workers: worker process count (>= 1).
        config: per-worker :class:`~repro.serve.server.ServeConfig`
            (host/port are overridden per worker).
        host: router bind address.
        port: router bind port (0 = ephemeral).
        load_factor: bounded-load spill threshold of the router.
        metrics: router-side metrics registry.
        logger: structured logger.
        startup_timeout: seconds to wait for each worker to report its
            port.

    Raises:
        ValueError: for ``n_workers < 1`` or an empty model mapping.
    """

    def __init__(
        self,
        models: AquaScale | dict[str, AquaScale],
        n_workers: int = 2,
        config: ServeConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        load_factor: float = 1.25,
        metrics: MetricsRegistry | None = None,
        logger: StructuredLogger | None = None,
        startup_timeout: float = 60.0,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if isinstance(models, AquaScale):
            models = {"default": models}
        if not models:
            raise ValueError("cluster needs at least one model")
        self.models = dict(models)
        self.active_name = next(iter(self.models))
        self.n_workers = n_workers
        self.worker_config = config or ServeConfig()
        self.host = host
        self.config_port = port
        self.load_factor = load_factor
        self.metrics = metrics or MetricsRegistry()
        self.log = logger or get_stream_logger()
        self.startup_timeout = startup_timeout
        self.artifacts: list[SharedModelArtifact] = []
        self.processes: list[multiprocessing.Process] = []
        self.router: RouterServer | None = None
        self._draining = False
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The router's bound public port (after :meth:`start`).

        Raises:
            RuntimeError: before the cluster has started.
        """
        if self.router is None:
            raise RuntimeError("cluster is not started")
        return self.router.port

    async def start(self) -> None:
        """Publish artifacts, spawn workers, and bind the router port.

        Raises:
            RuntimeError: when a worker fails to report its port in
                time (all resources are cleaned up first).
        """
        self._drained = asyncio.Event()
        try:
            self.artifacts = [
                SharedModelArtifact.publish(name, model)
                for name, model in self.models.items()
            ]
            links = await asyncio.get_running_loop().run_in_executor(
                None, self._spawn_workers
            )
            self.router = RouterServer(
                links,
                host=self.host,
                port=self.config_port,
                default_key=self.active_name,
                load_factor=self.load_factor,
                metrics=self.metrics,
                logger=self.log,
            )
            await self.router.start()
        except BaseException:
            await self._cleanup()
            raise
        if self.worker_config.gc_freeze:
            # The workers froze their own heaps (ServeConfig.gc_freeze);
            # the router shares *this* process with whatever built the
            # models, and a gen-2 pass over that heap stalls every
            # relayed request just the same.
            gc.collect()
            gc.freeze()
        self.log.event(
            "cluster.start",
            port=self.port,
            workers=self.n_workers,
            shared_mb=round(
                sum(a.shared_nbytes for a in self.artifacts) / 1e6, 2
            ),
        )

    def _spawn_workers(self) -> list[WorkerLink]:
        """Spawn worker processes and collect their ports (blocking)."""
        ctx = multiprocessing.get_context("spawn")
        manifests = [artifact.manifest for artifact in self.artifacts]
        config_kwargs = dataclasses.asdict(self.worker_config)
        config_kwargs.update(host="127.0.0.1", port=0)
        links = []
        pipes = []
        for i in range(self.n_workers):
            worker_id = f"worker-{i}"
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, manifests, self.active_name, config_kwargs, worker_id),
                name=f"repro-serve-{worker_id}",
            )
            process.start()
            child_conn.close()
            self.processes.append(process)
            pipes.append((worker_id, parent_conn))
        for worker_id, parent_conn in pipes:
            if not parent_conn.poll(self.startup_timeout):
                raise RuntimeError(f"{worker_id} failed to report its port in time")
            port = parent_conn.recv()
            parent_conn.close()
            links.append(WorkerLink(worker_id, "127.0.0.1", port))
        return links

    async def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Serve until drained (e.g. by SIGTERM); returns after cleanup."""
        if self.router is None:
            await self.start()
        if install_signal_handlers:
            self._install_signal_handlers()
        await self._drained.wait()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda s=signum: asyncio.ensure_future(self.drain(s))
                )
            except (NotImplementedError, RuntimeError, ValueError):
                return

    async def drain(self, signum: int | None = None) -> None:
        """Ordered shutdown: router → workers (SIGTERM) → unlink segments.

        Safe to call more than once; later calls await the first drain.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self.log.event(
            "cluster.drain", signal=signum if signum is not None else "(api)"
        )
        if self.router is not None:
            await self.router.drain()
        await asyncio.get_running_loop().run_in_executor(None, self._stop_workers)
        for artifact in self.artifacts:
            artifact.unlink()
            artifact.detach()
        self.log.event("cluster.stop")
        self._drained.set()

    async def _cleanup(self) -> None:
        """Failure-path teardown for a partial :meth:`start`."""
        if self.router is not None:
            with contextlib.suppress(Exception):
                await self.router.drain()
        self._stop_workers()
        for artifact in self.artifacts:
            artifact.unlink()
            artifact.detach()

    def _stop_workers(self) -> None:
        """SIGTERM every worker (graceful drain), escalate to kill."""
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        deadline = self.worker_config.drain_timeout_s + 5.0
        for process in self.processes:
            process.join(deadline)
            if process.is_alive():
                process.kill()
                process.join(5.0)

    def health_payload(self) -> dict:
        """Router-side worker status (no worker round-trip)."""
        if self.router is None:
            raise RuntimeError("cluster is not started")
        return self.router._router_payload()


# ----------------------------------------------------------------------
class ClusterHandle:
    """A running cluster hosted on a background thread.

    Returned by :func:`start_cluster_in_background`; usable as a context
    manager.  ``stop()`` drains the whole cluster and joins the thread.
    """

    def __init__(self, cluster: ServeCluster, loop, thread: threading.Thread):
        self.cluster = cluster
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        """The router's public TCP port."""
        return self.cluster.port

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) for :class:`~repro.serve.client.ServeClient`."""
        return (self.cluster.host, self.cluster.port)

    def metrics_snapshot(self) -> dict:
        """Point-in-time router metrics."""
        return self.cluster.metrics.snapshot()

    def stop(self, timeout: float | None = None) -> None:
        """Drain the cluster and join the hosting thread."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.cluster.drain(), self._loop
            )
            future.result(
                timeout or self.cluster.worker_config.drain_timeout_s + 30.0
            )
        self._thread.join(timeout or 10.0)

    def __enter__(self) -> "ClusterHandle":
        """Context-manager entry: the handle itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: graceful stop."""
        self.stop()


def start_cluster_in_background(
    models: AquaScale | dict[str, AquaScale],
    n_workers: int = 2,
    config: ServeConfig | None = None,
    startup_timeout: float = 120.0,
    **kwargs,
) -> ClusterHandle:
    """Host a :class:`ServeCluster` on a daemon thread.

    The multi-worker analogue of
    :func:`repro.serve.server.start_in_background`: returns once the
    router port is bound and every worker has reported in.

    Raises:
        Exception: whatever ``cluster.start()`` raised, re-raised here.
    """
    cluster = ServeCluster(models, n_workers=n_workers, config=config, **kwargs)
    started = threading.Event()
    startup_error: list[BaseException] = []
    loop_holder: list = []

    def host() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder.append(loop)

        async def run() -> None:
            try:
                await cluster.start()
            except BaseException as error:
                startup_error.append(error)
                return
            finally:
                started.set()
            await cluster.serve_forever(install_signal_handlers=False)

        try:
            loop.run_until_complete(run())
        finally:
            loop.close()

    thread = threading.Thread(target=host, name="repro-serve-cluster", daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise RuntimeError("serve cluster failed to start in time")
    if startup_error:
        thread.join(5.0)
        raise startup_error[0]
    return ClusterHandle(cluster, loop_holder[0], thread)
