"""In-process client for the localization service.

:class:`ServeClient` speaks the JSON-lines protocol over one TCP
connection and pipelines: a background reader thread matches responses
to outstanding request ids, so any number of threads can call
:meth:`ServeClient.localize` concurrently on one client — which is
exactly what exercises the server-side micro-batcher.  Used by the test
suite, the benchmarks, ``examples/operations_center.py``, and the
``serve_vs_direct`` differential oracle.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..observations import HumanObservation, WeatherObservation
from . import protocol


class ServeError(RuntimeError):
    """A protocol-level failure response.

    Attributes:
        code: protocol error code (``overloaded``, ``deadline_exceeded``,
            ``draining``, ``bad_request``, ...).
        retry_after_ms: server back-off hint when shed for load.
    """

    def __init__(self, code: str, message: str, retry_after_ms: float | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retry_after_ms = retry_after_ms


@dataclass(frozen=True)
class LocalizeReply:
    """One decoded ``localize`` result.

    Attributes:
        probabilities: (n_junctions,) posterior in junction order.
        leak_nodes: the predicted leak set (sorted).
        top_suspects: ``(junction, probability)`` pairs, best first.
        energy: MRF energy of the served posterior.
        model_name: registry name of the model that answered.
        model_etag: content-hash etag of that model.
        batch_size: live size of the micro-batch this rode in.
        elapsed_ms: server-side latency (admission to response).
        queue_wait_ms: time spent held by batching policy (arrival to
            kernel dispatch) on the server.
        kernel_ms: the shared inference-kernel time of the batch group
            this request rode in.
        inference: aggregation mode that produced the posterior.
        bp_iterations: message-passing sweeps (``crf`` mode; else 0).
        bp_converged: whether BP met its tolerance (True outside crf).
    """

    probabilities: np.ndarray
    leak_nodes: list[str]
    top_suspects: list[tuple[str, float]] = field(default_factory=list)
    energy: float = 0.0
    model_name: str = ""
    model_etag: str = ""
    batch_size: int = 1
    elapsed_ms: float = 0.0
    queue_wait_ms: float = 0.0
    kernel_ms: float = 0.0
    inference: str = "independent"
    bp_iterations: int = 0
    bp_converged: bool = True


def _decode_reply(result: dict) -> LocalizeReply:
    """Build a :class:`LocalizeReply` from a wire result object."""
    return LocalizeReply(
        probabilities=np.asarray(result["probabilities"], dtype=float),
        leak_nodes=list(result["leak_nodes"]),
        top_suspects=[(name, float(p)) for name, p in result["top_suspects"]],
        energy=float(result["energy"]),
        model_name=result["model"]["name"],
        model_etag=result["model"]["etag"],
        batch_size=int(result["batch_size"]),
        elapsed_ms=float(result["elapsed_ms"]),
        queue_wait_ms=float(result.get("queue_wait_ms", 0.0)),
        kernel_ms=float(result.get("kernel_ms", 0.0)),
        inference=result.get("inference", "independent"),
        bp_iterations=int(result.get("bp_iterations", 0)),
        bp_converged=bool(result.get("bp_converged", True)),
    )


#: Errors worth retrying a fresh connection over: the server restarting,
#: a worker draining, or the router recycling a backend.
_RETRYABLE_CONNECT = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class ServeClient:
    """A pipelined JSON-lines client; safe to share across threads.

    Args:
        host: server address.
        port: server port.
        timeout: per-request response timeout in seconds.
        retries: bounded retry budget — connection attempts at startup,
            and per blocking :meth:`localize` call for refused/reset
            connections and ``overloaded`` sheds (0 disables retry).
        backoff_ms: base of the exponential backoff; attempt *k* sleeps
            ``backoff_ms * 2**k`` plus uniform jitter of one base step,
            capped at ``backoff_max_ms``.  An ``overloaded`` shed sleeps
            at least the server's ``retry_after_ms`` hint instead of
            failing the request.
        backoff_max_ms: backoff ceiling.
        retry_seed: seed of the jitter RNG (None = nondeterministic).

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_ms: float = 50.0,
        backoff_max_ms: float = 2000.0,
        retry_seed: int | None = None,
    ):
        self.timeout = timeout
        self.host = host
        self.port = port
        self.retries = max(0, int(retries))
        self.backoff_ms = backoff_ms
        self.backoff_max_ms = backoff_max_ms
        self._jitter = random.Random(retry_seed)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._waiting: dict[int, Future] = {}
        self._closed = False
        self._generation = 0
        self._connect_with_retry()

    # ------------------------------------------------------------------
    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with jitter for retry ``attempt`` (seconds)."""
        delay = min(self.backoff_max_ms, self.backoff_ms * (2.0**attempt))
        return (delay + self._jitter.uniform(0.0, self.backoff_ms)) / 1000.0

    def _connect(self) -> None:
        """Open the socket and start a reader for this connection."""
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        # One logical request spans several small writes on four sockets
        # (client->router->worker and back); Nagle holding any of them for
        # a delayed ACK adds ~40 ms per hop to an SLO of 50 ms total.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._wfile = self._sock.makefile("wb")
        self._rfile = self._sock.makefile("rb")
        self._generation += 1
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(self._rfile,),
            name="serve-client-reader",
            daemon=True,
        )
        self._reader.start()

    def _connect_with_retry(self) -> None:
        """Bounded connection attempts with exponential backoff + jitter.

        Raises:
            OSError: the final attempt's failure, when the budget runs out.
        """
        for attempt in range(self.retries + 1):
            try:
                self._connect()
                return
            except _RETRYABLE_CONNECT:
                if attempt >= self.retries:
                    raise
                time.sleep(self._backoff_delay(attempt))

    def _reconnect(self, generation: int) -> None:
        """Replace a dead connection (one reconnect per generation)."""
        with self._conn_lock:
            if self._closed or self._generation != generation:
                return
            try:
                self._sock.close()
            except OSError:
                pass
            self._connect_with_retry()

    # ------------------------------------------------------------------
    def _read_loop(self, rfile) -> None:
        """Match incoming response lines to outstanding request futures."""
        error: BaseException = ConnectionError("connection closed by server")
        try:
            while True:
                line = rfile.readline()
                if not line:
                    break
                response = protocol.loads_line(line)
                with self._lock:
                    future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (OSError, ValueError) as exc:
            if not self._closed:
                error = exc
        finally:
            with self._lock:
                waiting, self._waiting = self._waiting, {}
            for future in waiting.values():
                if not future.done():
                    future.set_exception(error)

    def _submit(self, message: dict) -> Future:
        """Send one request line; the returned future holds the response."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = next(self._ids)
        message = {"id": request_id, **message}
        future: Future = Future()
        with self._lock:
            self._waiting[request_id] = future
        try:
            data = protocol.dumps_line(message)
            with self._lock:
                self._wfile.write(data)
                self._wfile.flush()
        except BaseException:
            with self._lock:
                self._waiting.pop(request_id, None)
            raise
        return future

    def _call(self, message: dict, timeout: float | None = None) -> dict:
        """Round-trip one request; raise :class:`ServeError` on failure."""
        response = self._submit(message).result(
            timeout if timeout is not None else self.timeout
        )
        if response.get("ok"):
            return response["result"]
        error = response.get("error", {})
        raise ServeError(
            error.get("code", protocol.E_INTERNAL),
            error.get("message", "unspecified server error"),
            error.get("retry_after_ms"),
        )

    # ------------------------------------------------------------------
    def localize(
        self,
        features,
        weather: WeatherObservation | None = None,
        human: HumanObservation | None = None,
        deadline_ms: float | None = None,
        timeout: float | None = None,
        inference: str | None = None,
    ) -> LocalizeReply:
        """Localize one snapshot through the service (blocking).

        Args:
            features: flat sensor feature vector (deployment width).
            weather: optional weather evidence for fusion.
            human: optional human-report evidence for fusion.
            deadline_ms: per-request deadline (server default if None).
            timeout: client-side wait bound (defaults to the client's).
            inference: aggregation mode, ``"independent"`` or ``"crf"``
                (server default — independent — when None).

        Retries: an ``overloaded`` shed sleeps for the server's
        ``retry_after_ms`` hint (or the backoff, whichever is longer)
        and re-submits; a refused/reset connection reconnects with
        exponential backoff — both bounded by the client's ``retries``
        budget.  Other error codes (``bad_request``,
        ``deadline_exceeded``, ...) raise immediately.

        Raises:
            ServeError: for shed-past-budget, expired, draining, or
                malformed requests.
            ConnectionError: when the connection cannot be re-established.
        """
        for attempt in range(self.retries + 1):
            generation = self._generation
            try:
                future = self.localize_async(
                    features,
                    weather=weather,
                    human=human,
                    deadline_ms=deadline_ms,
                    inference=inference,
                )
                return self._resolve(future, timeout)
            except ServeError as error:
                if (
                    error.code != protocol.E_OVERLOADED
                    or attempt >= self.retries
                ):
                    raise
                hint = (error.retry_after_ms or 0.0) / 1000.0
                time.sleep(max(hint, self._backoff_delay(attempt)))
            except ConnectionError:
                if self._closed or attempt >= self.retries:
                    raise
                time.sleep(self._backoff_delay(attempt))
                self._reconnect(generation)
        raise ConnectionError("retry budget exhausted")  # pragma: no cover

    def localize_async(
        self,
        features,
        weather: WeatherObservation | None = None,
        human: HumanObservation | None = None,
        deadline_ms: float | None = None,
        inference: str | None = None,
    ) -> Future:
        """Fire one localize request without waiting.

        Returns a :class:`concurrent.futures.Future` holding the raw
        response; pass it to :meth:`resolve` (or call
        ``client.localize``) to decode.  Issuing many of these before
        resolving is what drives server-side batch coalescing from a
        single client.
        """
        message: dict = {
            "op": "localize",
            "features": [float(x) for x in np.asarray(features, dtype=float)],
            "weather": protocol.encode_weather(weather),
            "human": protocol.encode_human(human),
        }
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        if inference is not None:
            message["inference"] = inference
        return self._submit(message)

    def resolve(self, future: Future, timeout: float | None = None) -> LocalizeReply:
        """Decode one :meth:`localize_async` future into a reply.

        Raises:
            ServeError: when the server answered with an error payload.
        """
        return self._resolve(future, timeout)

    def _resolve(self, future: Future, timeout: float | None) -> LocalizeReply:
        response = future.result(timeout if timeout is not None else self.timeout)
        if response.get("ok"):
            return _decode_reply(response["result"])
        error = response.get("error", {})
        raise ServeError(
            error.get("code", protocol.E_INTERNAL),
            error.get("message", "unspecified server error"),
            error.get("retry_after_ms"),
        )

    def localize_many(
        self,
        feature_rows,
        weather=None,
        human=None,
        deadline_ms: float | None = None,
        timeout: float | None = None,
        inference: str | None = None,
    ) -> list[LocalizeReply]:
        """Pipeline a block of requests and collect every reply.

        All requests go on the wire before any response is awaited, so a
        single client saturates the server's micro-batch window.

        Args:
            feature_rows: iterable of flat feature vectors.
            weather: optional per-row list of weather observations.
            human: optional per-row list of human observations.
            deadline_ms: per-request deadline applied to every row.
            timeout: client-side wait bound per reply.
            inference: aggregation mode applied to every row.
        """
        rows = list(feature_rows)
        weather = weather if weather is not None else [None] * len(rows)
        human = human if human is not None else [None] * len(rows)
        if len(weather) != len(rows) or len(human) != len(rows):
            raise ValueError("weather/human lists must align with feature_rows")
        futures = [
            self.localize_async(
                row, weather=w, human=h, deadline_ms=deadline_ms, inference=inference
            )
            for row, w, h in zip(rows, weather, human)
        ]
        return [self._resolve(future, timeout) for future in futures]

    # ------------------------------------------------------------------
    def health(self, timeout: float | None = None) -> dict:
        """The server's ``health`` payload (status, model, metrics)."""
        return self._call({"op": "health"}, timeout)

    def models(self, timeout: float | None = None) -> list[dict]:
        """Registered model versions, active flagged."""
        return self._call({"op": "models"}, timeout)["models"]

    def activate(self, name: str, timeout: float | None = None) -> dict:
        """Hot-swap the serving model to ``name``.

        Raises:
            ServeError: with code ``unknown_model`` for unknown names.
        """
        return self._call({"op": "activate", "name": name}, timeout)

    def close(self) -> None:
        """Close the connection and release the reader thread."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(5.0)

    def __enter__(self) -> "ServeClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()
