"""The JSON-lines wire protocol of the localization service.

One request or response per line, UTF-8 JSON, newline-delimited — the
shape every log pipeline and load-balancer sidecar already speaks.  Both
ends are Python, so ``NaN`` feature entries (masked sensors from the
streaming runtime) survive the wire via the stdlib's non-strict JSON.

Requests::

    {"id": 7, "op": "localize", "features": [...], "deadline_ms": 2000,
     "weather": {...} | null, "human": {...} | null,
     "inference": "independent" | "crf"}
    {"id": 8, "op": "health"}
    {"id": 9, "op": "models"}
    {"id": 10, "op": "activate", "name": "canary"}

Responses::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "overloaded",
     "message": "...", "retry_after_ms": 12.5}}

Floats round-trip exactly (``json`` emits shortest-repr), so served
probabilities are bit-identical to in-process inference — the
``serve_vs_direct`` oracle in :mod:`repro.verify` holds the service to
that.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..inference import INFERENCE_MODES
from ..observations import Clique, HumanObservation, WeatherObservation

#: Wire-format version, echoed by ``health`` and checked by clients.
PROTOCOL_VERSION = 1

#: Operations a request may name.
OPERATIONS = ("localize", "health", "models", "activate")

# Error codes (the ``code`` field of error payloads).
E_BAD_REQUEST = "bad_request"
E_OVERLOADED = "overloaded"
E_DEADLINE = "deadline_exceeded"
E_DRAINING = "draining"
E_UNKNOWN_MODEL = "unknown_model"
E_INTERNAL = "internal"


def dumps_line(message: dict) -> bytes:
    """Encode one protocol message as a JSON line (with trailing newline)."""
    import json

    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def loads_line(line: bytes | str) -> dict:
    """Decode one protocol line.

    Raises:
        ValueError: when the line is not a JSON object.
    """
    import json

    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ValueError(f"protocol messages are objects, got {type(message).__name__}")
    return message


def error_payload(
    code: str, message: str, retry_after_ms: float | None = None
) -> dict:
    """Build the ``error`` object of a failure response."""
    payload: dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        payload["retry_after_ms"] = round(float(retry_after_ms), 3)
    return payload


# ----------------------------------------------------------------------
# Observation (de)serialization — optional request context for fusion.
def encode_weather(observation: WeatherObservation | None) -> dict | None:
    """Weather evidence as a wire object (None passes through)."""
    if observation is None:
        return None
    return {
        "temperature_f": float(observation.temperature_f),
        "frozen_nodes": sorted(observation.frozen_nodes),
        "p_leak_given_freeze": float(observation.p_leak_given_freeze),
    }


def decode_weather(data: dict | None) -> WeatherObservation | None:
    """Inverse of :func:`encode_weather`.

    Raises:
        ValueError: on a malformed weather object.
    """
    if data is None:
        return None
    if not isinstance(data, dict) or "temperature_f" not in data:
        raise ValueError("weather must be an object with temperature_f")
    return WeatherObservation(
        temperature_f=float(data["temperature_f"]),
        frozen_nodes=frozenset(data.get("frozen_nodes", ())),
        p_leak_given_freeze=float(
            data.get("p_leak_given_freeze", WeatherObservation.p_leak_given_freeze)
        ),
    )


def encode_human(observation: HumanObservation | None) -> dict | None:
    """Human-report cliques as a wire object (None passes through)."""
    if observation is None:
        return None
    return {
        "gamma": float(observation.gamma),
        "cliques": [
            {
                "nodes": list(clique.nodes),
                "centre": [float(clique.centre[0]), float(clique.centre[1])],
                "report_count": int(clique.report_count),
                "confidence": float(clique.confidence),
            }
            for clique in observation.cliques
        ],
    }


def decode_human(data: dict | None) -> HumanObservation | None:
    """Inverse of :func:`encode_human`.

    Raises:
        ValueError: on a malformed human-observation object.
    """
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ValueError("human must be an object with a cliques list")
    cliques = []
    for raw in data.get("cliques", ()):
        try:
            cliques.append(
                Clique(
                    nodes=tuple(raw["nodes"]),
                    centre=(float(raw["centre"][0]), float(raw["centre"][1])),
                    report_count=int(raw["report_count"]),
                    confidence=float(raw["confidence"]),
                )
            )
        except (KeyError, IndexError, TypeError) as error:
            raise ValueError(f"malformed clique object: {error}") from error
    return HumanObservation(
        cliques=tuple(cliques), gamma=float(data.get("gamma", 30.0))
    )


def decode_inference(data: Any) -> str:
    """Validate a request's aggregation mode (absent/None = independent).

    Raises:
        ValueError: for a value outside
            :data:`repro.inference.INFERENCE_MODES`.
    """
    if data is None:
        return "independent"
    if data not in INFERENCE_MODES:
        raise ValueError(
            f"inference must be one of {list(INFERENCE_MODES)}, got {data!r}"
        )
    return data


# ----------------------------------------------------------------------
def decode_features(data: Any, n_features: int) -> np.ndarray:
    """Validate and convert a request's feature vector.

    Raises:
        ValueError: when the payload is not a flat numeric vector of the
            deployment's feature width.
    """
    if data is None:
        raise ValueError("localize requires a features array")
    features = np.asarray(data, dtype=float)
    if features.ndim != 1:
        raise ValueError(
            f"features must be a flat vector, got shape {features.shape}"
        )
    if features.shape[0] != n_features:
        raise ValueError(
            f"expected {n_features} features for this deployment, "
            f"got {features.shape[0]}"
        )
    return features


def encode_result(
    result,
    model_name: str,
    model_etag: str,
    batch_size: int,
    elapsed_ms: float,
    top_k: int = 5,
    queue_wait_ms: float | None = None,
    kernel_ms: float | None = None,
) -> dict:
    """An :class:`~repro.core.InferenceResult` as a wire object.

    Probabilities are emitted in junction order (the order ``models``
    reports for the serving model) so clients can rebuild the full
    posterior; leak nodes and top suspects ride along pre-digested.
    ``queue_wait_ms`` / ``kernel_ms`` split the server-side budget:
    enqueue-to-dispatch hold time vs the shared kernel call of the batch
    the request rode in.
    """
    payload = {
        "probabilities": [float(p) for p in result.probabilities],
        "leak_nodes": sorted(result.leak_nodes),
        "top_suspects": [
            [name, float(p)] for name, p in result.top_suspects(top_k)
        ],
        "energy": float(result.energy),
        "inference": result.inference,
        "bp_iterations": int(result.bp_iterations),
        "bp_converged": bool(result.bp_converged),
        "model": {"name": model_name, "etag": model_etag},
        "batch_size": int(batch_size),
        "elapsed_ms": round(float(elapsed_ms), 3),
    }
    if queue_wait_ms is not None:
        payload["queue_wait_ms"] = round(float(queue_wait_ms), 3)
    if kernel_ms is not None:
        payload["kernel_ms"] = round(float(kernel_ms), 3)
    return payload
