"""The always-on localization service: asyncio TCP + JSON lines.

:class:`LocalizationServer` is the request/response layer over the
two-phase core: it accepts any number of concurrent connections, admits
requests through the :class:`~repro.serve.admission.AdmissionController`,
coalesces admitted ``localize`` calls in the
:class:`~repro.serve.batcher.MicroBatcher` (one
``AquaScale.localize_batch`` kernel call per batch, on a worker thread
pool), and serves ``health`` / ``models`` / ``activate`` inline on the
event loop.  Every stage is instrumented through a
:class:`~repro.stream.metrics.MetricsRegistry` and logged through
:class:`~repro.stream.log.StructuredLogger`.

Lifecycle: ``await start()`` binds the port; ``await serve_forever()``
blocks until :meth:`drain` (installed on SIGTERM/SIGINT where the
platform allows) completes — new requests are refused with ``draining``
while admitted ones finish, then the loop exits cleanly.
:func:`start_in_background` hosts the whole thing on a daemon thread for
tests, examples, and benchmarks.
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import signal
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..core import AquaScale
from ..stream.log import StructuredLogger, get_stream_logger
from ..stream.metrics import MetricsRegistry
from . import protocol
from .admission import AdmissionController
from .batcher import BatcherClosed, MicroBatcher
from .registry import ModelEntry, ModelRegistry


@dataclass
class ServeConfig:
    """Tuning knobs of one server instance.

    Attributes:
        host: bind address.
        port: bind port (0 = ephemeral; read ``server.port`` after start).
        max_batch_size: micro-batch dispatch threshold.
        max_wait_ms: micro-batch hold ceiling after the first request.
        adaptive_batching: scale the hold time with the arrival-rate
            EWMA (dense traffic waits for full batches, sparse traffic
            dispatches immediately); ``False`` restores the fixed TTL.
        arrival_ewma_alpha: smoothing weight of the arrival estimator.
        inference_workers: thread-pool size for kernel calls.
        max_pending: admission window (in-flight request ceiling).
        default_deadline_ms: deadline for requests that name none.
        drain_timeout_s: upper bound on graceful drain.
        gc_freeze: move the startup object graph (model, registry,
            network) into the GC's permanent generation once the socket
            is bound.  Cyclic collections then scan only per-request
            garbage instead of the whole heap — full-heap gen2 passes
            otherwise stall every in-flight request by 100 ms+, which
            is the single largest latency-tail contributor observed.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch_size: int = 8
    max_wait_ms: float = 5.0
    adaptive_batching: bool = True
    arrival_ewma_alpha: float = 0.2
    inference_workers: int = 2
    max_pending: int = 64
    default_deadline_ms: float = 2000.0
    drain_timeout_s: float = 10.0
    gc_freeze: bool = True


class _Pending:
    """One admitted localize request travelling through the batcher.

    Carries the *raw* wire fields: feature extraction and observation
    decoding run on the batcher's worker pool (see
    :meth:`LocalizationServer._run_batch`), keeping NaN-masking and
    array assembly off the asyncio event loop so the loop only parses
    envelopes and writes responses.
    """

    __slots__ = ("raw_features", "raw_weather", "raw_human", "raw_inference",
                 "deadline", "arrival")

    def __init__(self, raw_features, raw_weather, raw_human, raw_inference,
                 deadline, arrival):
        self.raw_features = raw_features
        self.raw_weather = raw_weather
        self.raw_human = raw_human
        self.raw_inference = raw_inference
        self.deadline = deadline
        self.arrival = arrival


class _Expired:
    """Sentinel outcome for requests whose deadline passed in queue."""

    __slots__ = ()


_EXPIRED = _Expired()


class _Rejected:
    """Sentinel outcome for requests whose payload failed to decode."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message


class LocalizationServer:
    """Serve ``localize`` / ``health`` / ``models`` / ``activate`` over TCP.

    Args:
        model: a trained :class:`~repro.core.AquaScale`, or a ready
            :class:`~repro.serve.registry.ModelRegistry` with at least
            one active entry.
        config: server tuning (defaults are test-friendly).
        metrics: shared registry (a fresh one is created when omitted).
        logger: structured logger (default: the ``repro.stream`` logger).
    """

    def __init__(
        self,
        model: AquaScale | ModelRegistry,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        logger: StructuredLogger | None = None,
    ):
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        self.log = logger or get_stream_logger()
        if isinstance(model, ModelRegistry):
            self.registry = model
            self.registry.active  # fail fast when empty
        else:
            self.registry = ModelRegistry()
            self.registry.register("default", model)
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            default_deadline_ms=self.config.default_deadline_ms,
            metrics=self.metrics,
        )
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            workers=self.config.inference_workers,
            adaptive=self.config.adaptive_batching,
            ewma_alpha=self.config.arrival_ewma_alpha,
            metrics=self.metrics,
        )
        self._requests = self.metrics.counter("serve_requests_total")
        self._ok = self.metrics.counter("serve_ok_total")
        self._errors = self.metrics.counter("serve_errors_total")
        self._expired = self.metrics.counter("serve_deadline_expired_total")
        self._connections = self.metrics.gauge("serve_connections")
        self._latency = self.metrics.histogram("serve_latency_seconds")
        self._inference = self.metrics.histogram("serve_inference_seconds")
        self._server: asyncio.base_events.Server | None = None
        self._port: int | None = None
        self._drained = asyncio.Event()
        self._draining = False

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`).

        Raises:
            RuntimeError: before the server has started.
        """
        if self._port is None:
            raise RuntimeError("server is not started")
        return self._port

    async def start(self) -> None:
        """Bind the listening socket and start the micro-batcher."""
        await self.batcher.start()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        # Remembered past close so handles can report where they served.
        self._port = self._server.sockets[0].getsockname()[1]
        if self.config.gc_freeze:
            gc.collect()
            gc.freeze()
        self.log.event(
            "serve.start",
            host=self.config.host,
            port=self.port,
            max_batch=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            model=self.registry.active.name,
        )

    async def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Serve until drained (e.g. by SIGTERM); returns after cleanup.

        Args:
            install_signal_handlers: install SIGTERM/SIGINT → drain
                handlers (skipped automatically off the main thread or
                on loops without signal support).
        """
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            self._install_signal_handlers()
        await self._drained.wait()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda s=signum: asyncio.ensure_future(self.drain(s))
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or unsupported platform: drain stays
                # available programmatically.
                return

    async def drain(self, signum: int | None = None) -> None:
        """Graceful shutdown: refuse new work, finish admitted requests.

        Safe to call more than once; later calls await the first drain.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self.admission.begin_drain()
        self.log.event(
            "serve.drain",
            signal=signum if signum is not None else "(api)",
            pending=self.admission.pending,
        )
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(
                self.batcher.drain(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            self.log.event("serve.drain_timeout", pending=self.admission.pending)
        # Let the response writes scheduled by the final batches reach
        # their sockets before the hosting loop is torn down.
        for _ in range(3):
            await asyncio.sleep(0)
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        self.log.event("serve.stop", metrics_pending=self.admission.pending)
        self._drained.set()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One JSON-lines session; requests may interleave (pipelining)."""
        self._connections.inc()
        tasks: set[asyncio.Task] = set()
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.strip() == b"":
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
            self._connections.dec()

    async def _serve_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        """Decode, dispatch, and answer one request line."""
        request_id = None
        try:
            message = protocol.loads_line(line)
            request_id = message.get("id")
            response = await self._dispatch(message)
        except ValueError as error:
            response = self._error_response(
                request_id, protocol.error_payload(protocol.E_BAD_REQUEST, str(error))
            )
        except Exception as error:  # pragma: no cover - defensive
            response = self._error_response(
                request_id, protocol.error_payload(protocol.E_INTERNAL, repr(error))
            )
        async with write_lock:
            writer.write(protocol.dumps_line(response))
            with contextlib.suppress(ConnectionResetError):
                await writer.drain()

    def _error_response(self, request_id, error: dict) -> dict:
        self._errors.inc()
        return {"id": request_id, "ok": False, "error": error}

    def _ok_response(self, request_id, result: dict) -> dict:
        self._ok.inc()
        return {"id": request_id, "ok": True, "result": result}

    # ------------------------------------------------------------------
    async def _dispatch(self, message: dict) -> dict:
        """Route one decoded request to its endpoint."""
        self._requests.inc()
        request_id = message.get("id")
        op = message.get("op")
        if op == "localize":
            return await self._op_localize(request_id, message)
        if op == "health":
            return self._ok_response(request_id, self._health_payload())
        if op == "models":
            return self._ok_response(request_id, {"models": self.registry.describe()})
        if op == "activate":
            return self._op_activate(request_id, message)
        raise ValueError(
            f"unknown op {op!r}; expected one of {protocol.OPERATIONS}"
        )

    def _health_payload(self) -> dict:
        active = self.registry.active
        return {
            "status": "draining" if self._draining else "serving",
            "protocol_version": protocol.PROTOCOL_VERSION,
            "model": {"name": active.name, "etag": active.etag},
            "pending": self.admission.pending,
            "junction_names": list(active.model.profile.junction_names),
            "n_features": len(active.model.sensors),
            "metrics": self.metrics.snapshot(),
        }

    def _op_activate(self, request_id, message: dict) -> dict:
        name = message.get("name")
        if not isinstance(name, str):
            raise ValueError("activate requires a model name")
        try:
            entry = self.registry.activate(name)
        except KeyError:
            return self._error_response(
                request_id,
                protocol.error_payload(
                    protocol.E_UNKNOWN_MODEL, f"model {name!r} is not registered"
                ),
            )
        self.log.event("serve.activate", model=entry.name, etag=entry.etag)
        return self._ok_response(
            request_id, {"model": {"name": entry.name, "etag": entry.etag}}
        )

    async def _op_localize(self, request_id, message: dict) -> dict:
        arrival = time.monotonic()
        decision = self.admission.admit()
        if not decision.admitted:
            return self._error_response(
                request_id,
                protocol.error_payload(
                    decision.code, decision.message, decision.retry_after_ms
                ),
            )
        try:
            deadline = self.admission.deadline_for(
                message.get("deadline_ms"), now=arrival
            )
            pending = _Pending(
                message.get("features"),
                message.get("weather"),
                message.get("human"),
                message.get("inference"),
                deadline,
                arrival,
            )
            try:
                outcome = await self.batcher.submit(pending)
            except BatcherClosed:
                return self._error_response(
                    request_id,
                    protocol.error_payload(
                        protocol.E_DRAINING, "server is draining; connect elsewhere"
                    ),
                )
            elapsed = time.monotonic() - arrival
            self._latency.observe(elapsed)
            self.admission.observe_service_time(elapsed)
            payload, entry, batch_size, queue_wait_ms, kernel_ms = outcome
            if payload is _EXPIRED:
                self._expired.inc()
                return self._error_response(
                    request_id,
                    protocol.error_payload(
                        protocol.E_DEADLINE,
                        "deadline expired before inference was dispatched",
                    ),
                )
            if isinstance(payload, _Rejected):
                return self._error_response(
                    request_id,
                    protocol.error_payload(protocol.E_BAD_REQUEST, payload.message),
                )
            return self._ok_response(
                request_id,
                protocol.encode_result(
                    payload,
                    model_name=entry.name,
                    model_etag=entry.etag,
                    batch_size=batch_size,
                    elapsed_ms=elapsed * 1000.0,
                    queue_wait_ms=queue_wait_ms,
                    kernel_ms=kernel_ms,
                ),
            )
        finally:
            self.admission.release()

    # ------------------------------------------------------------------
    def _run_batch(self, items: list[_Pending]) -> list[tuple]:
        """Decode payloads and run one kernel call per mode (worker thread).

        Everything per-request and CPU-shaped happens here, off the
        event loop: feature extraction (NaN-masked vectors → float
        arrays), observation decoding, and the kernel calls themselves.
        Expired requests are answered without inference and malformed
        payloads become per-item :class:`_Rejected` outcomes; the rest
        are grouped by their requested ``inference`` mode (a micro-batch
        may mix ``independent`` and ``crf`` requests) and each group is
        stacked into one ``localize_batch`` dispatch against the model
        entry captured *here* — a concurrent hot swap only affects
        batches formed after this point.

        Each outcome is ``(payload, entry, batch_size, queue_wait_ms,
        kernel_ms)``: the queueing-policy hold (arrival to dispatch) vs
        the shared kernel time of the request's mode group.
        """
        entry: ModelEntry = self.registry.active
        n_features = len(entry.model.sensors)
        now = time.monotonic()
        outcomes: list[tuple] = [None] * len(items)
        decoded: dict[int, tuple] = {}
        for i, item in enumerate(items):
            queue_wait_ms = (now - item.arrival) * 1000.0
            if item.deadline <= now:
                outcomes[i] = (_EXPIRED, None, 0, queue_wait_ms, 0.0)
                continue
            try:
                decoded[i] = (
                    protocol.decode_features(item.raw_features, n_features),
                    protocol.decode_weather(item.raw_weather),
                    protocol.decode_human(item.raw_human),
                    protocol.decode_inference(item.raw_inference),
                    queue_wait_ms,
                )
            except ValueError as error:
                outcomes[i] = (_Rejected(str(error)), None, 0, queue_wait_ms, 0.0)
        groups: dict[str, list[int]] = {}
        for i, (_, _, _, mode, _) in decoded.items():
            groups.setdefault(mode, []).append(i)
        for mode, index in groups.items():
            start = time.perf_counter()
            features = np.vstack([decoded[i][0] for i in index])
            results = entry.model.localize_batch(
                features,
                weather=[decoded[i][1] for i in index],
                human=[decoded[i][2] for i in index],
                inference=mode,
            )
            kernel_seconds = time.perf_counter() - start
            self._inference.observe(kernel_seconds)
            for i, result in zip(index, results):
                outcomes[i] = (
                    result, entry, len(index), decoded[i][4], kernel_seconds * 1000.0
                )
        self.log.event(
            "serve.batch",
            size=len(items),
            live=len(decoded),
            model=entry.name,
        )
        return outcomes


# ----------------------------------------------------------------------
class ServerHandle:
    """A running server hosted on a background thread.

    Returned by :func:`start_in_background`; usable as a context
    manager.  ``stop()`` drains gracefully and joins the thread.
    """

    def __init__(self, server: LocalizationServer, loop, thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        """The server's bound TCP port."""
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) for :class:`~repro.serve.client.ServeClient`."""
        return (self.server.config.host, self.server.port)

    def metrics_snapshot(self) -> dict:
        """Point-in-time metrics of the hosted server."""
        return self.server.metrics.snapshot()

    def stop(self, timeout: float | None = None) -> None:
        """Drain the server and join the hosting thread."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(self.server.drain(), self._loop)
            future.result(timeout or self.server.config.drain_timeout_s + 5.0)
        self._thread.join(timeout or 10.0)

    def __enter__(self) -> "ServerHandle":
        """Context-manager entry: the handle itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: graceful stop."""
        self.stop()


def start_in_background(
    model: AquaScale | ModelRegistry,
    config: ServeConfig | None = None,
    metrics: MetricsRegistry | None = None,
    logger: StructuredLogger | None = None,
    startup_timeout: float = 10.0,
) -> ServerHandle:
    """Host a :class:`LocalizationServer` on a daemon thread.

    The in-process deployment used by tests, examples, benchmarks and
    the differential oracle: the caller gets a :class:`ServerHandle`
    once the port is bound.

    Raises:
        Exception: whatever ``server.start()`` raised, re-raised here.
    """
    server = LocalizationServer(model, config=config, metrics=metrics, logger=logger)
    started = threading.Event()
    startup_error: list[BaseException] = []
    loop_holder: list = []

    def host() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder.append(loop)

        async def run() -> None:
            try:
                await server.start()
            except BaseException as error:
                startup_error.append(error)
                return
            finally:
                started.set()
            await server.serve_forever(install_signal_handlers=False)

        try:
            loop.run_until_complete(run())
        finally:
            loop.close()

    thread = threading.Thread(target=host, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise RuntimeError("localization server failed to start in time")
    if startup_error:
        thread.join(5.0)
        raise startup_error[0]
    return ServerHandle(server, loop_holder[0], thread)
