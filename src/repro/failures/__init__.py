"""Pipe-failure modeling: leak events, scenarios, break-rate models."""

from .breaks import (
    COUNTY_MODELS,
    BreakRateModel,
    breaks_by_temperature_bin,
    synthetic_daily_temperatures,
)
from .events import DEFAULT_BETA, DEFAULT_EC_RANGE, LeakEvent, events_to_emitters
from .scenarios import FailureScenario, ScenarioGenerator

__all__ = [
    "BreakRateModel",
    "COUNTY_MODELS",
    "DEFAULT_BETA",
    "DEFAULT_EC_RANGE",
    "FailureScenario",
    "LeakEvent",
    "ScenarioGenerator",
    "breaks_by_temperature_bin",
    "events_to_emitters",
    "synthetic_daily_temperatures",
]
