"""Leak events — the paper's ``e = (l, s, t)`` triple.

An event is identified by its location (a junction name), its size (the
emitter coefficient ``EC`` of Eq. 1 — larger means a more severe leak) and
its starting time slot.  Scenario generators produce sets of these events;
the injector turns them into emitters for the hydraulic solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hydraulics import TimedLeak

#: Default emitter pressure exponent (paper: beta = 0.5).
DEFAULT_BETA = 0.5

#: EC range producing leak flows between roughly 2 and 25 L/s at the
#: 35-75 m pressures of the evaluation networks — severe enough to matter,
#: small enough not to collapse the zone.
DEFAULT_EC_RANGE = (5e-4, 4e-3)


@dataclass(frozen=True)
class LeakEvent:
    """One pipe-failure event.

    Attributes:
        location: junction name (``e.l``); the paper places leaks at nodes
            because pipe joints are the most failure-prone points.
        size: emitter coefficient ``EC`` (``e.s``), SI (m^3/s per m^0.5).
        start_slot: starting time slot index (``e.t``), in units of the
            IoT sampling interval (15 minutes).
        beta: pressure exponent of Eq. (1).
    """

    location: str
    size: float
    start_slot: int = 0
    beta: float = DEFAULT_BETA

    def __post_init__(self) -> None:
        if self.size <= 0.0:
            raise ValueError(f"leak size must be > 0, got {self.size}")
        if self.start_slot < 0:
            raise ValueError(f"start_slot must be >= 0, got {self.start_slot}")

    def to_timed_leak(self, slot_seconds: float = 900.0) -> TimedLeak:
        """Convert to the simulator's timed-leak representation."""
        return TimedLeak(
            node=self.location,
            emitter_coefficient=self.size,
            start_time=self.start_slot * slot_seconds,
            emitter_exponent=self.beta,
        )


def events_to_emitters(events: list[LeakEvent]) -> dict[str, tuple[float, float]]:
    """Merge events into the solver's emitter-override mapping.

    Multiple events at the same node add their coefficients (two breaks on
    joints of the same node leak more).
    """
    emitters: dict[str, tuple[float, float]] = {}
    for event in events:
        previous = emitters.get(event.location, (0.0, event.beta))
        emitters[event.location] = (previous[0] + event.size, event.beta)
    return emitters
