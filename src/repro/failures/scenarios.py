"""Failure-scenario generation.

The paper evaluates two scenario families (Sec. V-A):

* *Single Pipe Failure* — one event per run.
* *Multiple Pipe Failures* / *Pipe Failures due to Low Temperature* —
  U(1, m) concurrent events with identical start slots; in the
  low-temperature use case, leaks concentrate on frozen nodes.

All generation is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hydraulics import WaterNetwork
from .events import DEFAULT_EC_RANGE, LeakEvent


@dataclass(frozen=True)
class FailureScenario:
    """One simulated situation: concurrent leak events + context.

    Attributes:
        events: the concurrent leak events (same ``start_slot``).
        start_slot: shared starting slot (redundant with the events,
            kept for convenient access).
        frozen_nodes: junctions frozen at scenario time (empty unless the
            scenario was driven by low temperature).
        temperature_f: ambient temperature (Fahrenheit) for the scenario.
    """

    events: tuple[LeakEvent, ...]
    start_slot: int
    frozen_nodes: frozenset[str] = field(default_factory=frozenset)
    temperature_f: float = 55.0

    @property
    def leak_nodes(self) -> set[str]:
        return {event.location for event in self.events}

    def label_vector(self, junction_names: list[str]) -> np.ndarray:
        """Binary indicator over ``junction_names`` (the y of Sec. III-B)."""
        leaks = self.leak_nodes
        return np.array([1 if name in leaks else 0 for name in junction_names], dtype=np.int64)


class ScenarioGenerator:
    """Draws failure scenarios for a network.

    Args:
        network: the target network (junction names are sampled from it).
        seed: RNG seed.
        ec_range: (low, high) emitter-coefficient range; sizes are drawn
            log-uniformly so small and large leaks are both represented.
        slots_per_day: time slots per day (96 for 15-minute slots);
            start slots are drawn uniformly over a day so the diurnal
            demand pattern varies across samples.
    """

    def __init__(
        self,
        network: WaterNetwork,
        seed: int = 0,
        ec_range: tuple[float, float] = DEFAULT_EC_RANGE,
        slots_per_day: int = 96,
    ):
        self.network = network
        self.junction_names = network.junction_names()
        self.ec_range = ec_range
        self.slots_per_day = slots_per_day
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _draw_size(self) -> float:
        low, high = self.ec_range
        return float(np.exp(self._rng.uniform(np.log(low), np.log(high))))

    def _draw_slot(self) -> int:
        # Slot 0 has no predecessor to difference against; start at 1.
        return int(self._rng.integers(1, self.slots_per_day))

    # ------------------------------------------------------------------
    def single_failure(self) -> FailureScenario:
        """One leak at a uniformly random junction."""
        slot = self._draw_slot()
        location = str(self._rng.choice(self.junction_names))
        event = LeakEvent(location=location, size=self._draw_size(), start_slot=slot)
        return FailureScenario(events=(event,), start_slot=slot)

    def multi_failure(self, max_events: int = 5) -> FailureScenario:
        """U(1, max_events) concurrent leaks at distinct junctions.

        Matches the paper's dataset: "at least one and at most 5 leak
        events, and the number of events follows U(1,5) ... arbitrary
        locations and sizes but same starting time".
        """
        slot = self._draw_slot()
        count = int(self._rng.integers(1, max_events + 1))
        locations = self._rng.choice(self.junction_names, size=count, replace=False)
        events = tuple(
            LeakEvent(location=str(loc), size=self._draw_size(), start_slot=slot)
            for loc in locations
        )
        return FailureScenario(events=events, start_slot=slot)

    def low_temperature_failure(
        self,
        max_events: int = 5,
        temperature_f: float = 12.0,
        p_freeze: float = 0.8,
        freeze_leak_bias: float = 0.85,
    ) -> FailureScenario:
        """Freeze-driven multi-failure (the paper's WSSC use case).

        Each junction freezes with probability ``p_freeze`` (given the
        sub-20F temperature).  Leak locations are drawn from the frozen
        set with probability ``freeze_leak_bias`` and uniformly otherwise,
        reflecting that ice blockage causes most but not all winter breaks.
        """
        slot = self._draw_slot()
        frozen = frozenset(
            name
            for name in self.junction_names
            if self._rng.random() < p_freeze
        )
        count = int(self._rng.integers(1, max_events + 1))
        chosen: list[str] = []
        frozen_list = sorted(frozen)
        while len(chosen) < count:
            if frozen_list and self._rng.random() < freeze_leak_bias:
                candidate = str(frozen_list[int(self._rng.integers(len(frozen_list)))])
            else:
                candidate = str(self._rng.choice(self.junction_names))
            if candidate not in chosen:
                chosen.append(candidate)
        events = tuple(
            LeakEvent(location=loc, size=self._draw_size(), start_slot=slot)
            for loc in chosen
        )
        return FailureScenario(
            events=events,
            start_slot=slot,
            frozen_nodes=frozen,
            temperature_f=temperature_f,
        )

    # ------------------------------------------------------------------
    def batch(
        self,
        count: int,
        kind: str = "multi",
        max_events: int = 5,
    ) -> list[FailureScenario]:
        """Generate ``count`` scenarios of one kind.

        Args:
            kind: "single", "multi" or "low-temperature".
        """
        if kind == "single":
            return [self.single_failure() for _ in range(count)]
        if kind == "multi":
            return [self.multi_failure(max_events=max_events) for _ in range(count)]
        if kind == "low-temperature":
            return [
                self.low_temperature_failure(max_events=max_events)
                for _ in range(count)
            ]
        raise ValueError(f"unknown scenario kind {kind!r}")

    def weather_driven_stream(
        self,
        n_slots: int,
        base_rate_per_slot: float = 0.002,
        cold_multiplier: float = 8.0,
        weather_seed: int = 0,
    ) -> list[tuple[int, FailureScenario]]:
        """A timeline of failures driven by the Markov weather model.

        Combines two "future work" threads the paper names: the Markov
        chain weather model and temperature-driven failure rates.  Each
        slot of a simulated weather trace draws a failure with a base
        probability that multiplies up during freezing slots; freezing
        slots produce freeze-biased multi-failures, warm slots ordinary
        single failures.

        Args:
            n_slots: timeline length in IoT slots.
            base_rate_per_slot: warm-weather failure probability per slot.
            cold_multiplier: rate multiplier at/below the freeze threshold.
            weather_seed: seed for the weather trace.

        Returns:
            (slot, scenario) pairs, in time order.
        """
        from ..observations.markov_weather import MarkovWeatherModel
        from ..observations.weather import is_freezing

        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        trace = MarkovWeatherModel(seed=weather_seed).simulate(n_slots)
        stream: list[tuple[int, FailureScenario]] = []
        for slot, temperature in enumerate(trace.temperatures_f):
            freezing = is_freezing(float(temperature))
            rate = base_rate_per_slot * (cold_multiplier if freezing else 1.0)
            if self._rng.random() >= rate:
                continue
            if freezing:
                scenario = self.low_temperature_failure(
                    temperature_f=float(temperature)
                )
            else:
                scenario = self.single_failure()
            # Re-stamp the scenario onto the stream's timeline.
            slot_in_day = max(slot % self.slots_per_day, 1)
            events = tuple(
                LeakEvent(
                    location=e.location, size=e.size, start_slot=slot_in_day,
                    beta=e.beta,
                )
                for e in scenario.events
            )
            stream.append(
                (
                    slot,
                    FailureScenario(
                        events=events,
                        start_slot=slot_in_day,
                        frozen_nodes=scenario.frozen_nodes,
                        temperature_f=float(temperature),
                    ),
                )
            )
        return stream
