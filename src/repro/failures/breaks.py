"""Temperature-dependent pipe-break-rate model (paper Fig. 3).

Fig. 3 plots the average number of pipe breaks per day against ambient
temperature for Prince George's and Montgomery counties over 2012-2016:
break rates stay near a flat base above ~50F and rise sharply as the
temperature approaches and passes freezing.  WSSC's break reports are not
public, so this module provides a generative model with exactly that
mechanism — a base rate plus an exponential cold-stress term — and a
synthetic 5-year record generator used by the Fig. 3 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BreakRateModel:
    """Expected pipe breaks/day as a function of temperature.

    ``rate(T) = base_rate + cold_coefficient * exp(-(T - freeze_f) / scale_f)``
    clipped below by ``base_rate``; the exponential term models frost load
    on brittle mains (the paper's "chance of water main breaks rises
    significantly as the temperature drops").

    Attributes:
        base_rate: warm-weather breaks/day (ageing, traffic, corrosion).
        cold_coefficient: breaks/day added at the freezing point.
        freeze_f: temperature (F) where cold stress becomes material.
        scale_f: e-folding scale (F) of the cold-stress term.
    """

    base_rate: float = 1.2
    cold_coefficient: float = 2.5
    freeze_f: float = 32.0
    scale_f: float = 12.0

    def rate(self, temperature_f: float | np.ndarray) -> np.ndarray:
        """Expected breaks/day at the given temperature(s)."""
        t = np.asarray(temperature_f, dtype=float)
        stress = self.cold_coefficient * np.exp(-(t - self.freeze_f) / self.scale_f)
        return self.base_rate + np.minimum(stress, 50.0)

    def sample_daily_breaks(
        self, temperatures_f: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Poisson break counts for a daily temperature series."""
        return rng.poisson(self.rate(temperatures_f))


#: Models for the two counties in Fig. 3 — Prince George's is the larger
#: service area, so it carries a higher base rate.
COUNTY_MODELS = {
    "prince-georges": BreakRateModel(base_rate=1.6, cold_coefficient=3.2),
    "montgomery": BreakRateModel(base_rate=1.1, cold_coefficient=2.4),
}


def synthetic_daily_temperatures(
    n_days: int,
    rng: np.random.Generator,
    mean_f: float = 56.0,
    seasonal_amplitude_f: float = 24.0,
    noise_f: float = 7.0,
) -> np.ndarray:
    """A seasonal daily temperature series (F), Maryland-like.

    Day 0 is January 1st, so winters land at the series boundaries.
    """
    days = np.arange(n_days)
    seasonal = mean_f - seasonal_amplitude_f * np.cos(2.0 * np.pi * days / 365.25)
    return seasonal + rng.normal(0.0, noise_f, size=n_days)


def breaks_by_temperature_bin(
    temperatures_f: np.ndarray,
    breaks: np.ndarray,
    bin_edges: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Average breaks/day per temperature bin — Fig. 3's series.

    Returns:
        (bin_centres, mean breaks/day per bin); empty bins yield NaN.
    """
    temperatures_f = np.asarray(temperatures_f, dtype=float)
    breaks = np.asarray(breaks, dtype=float)
    if temperatures_f.shape != breaks.shape:
        raise ValueError("temperature and break series must align")
    centres = 0.5 * (bin_edges[:-1] + bin_edges[1:])
    means = np.full(len(centres), np.nan)
    indices = np.digitize(temperatures_f, bin_edges) - 1
    for b in range(len(centres)):
        mask = indices == b
        if np.any(mask):
            means[b] = float(np.mean(breaks[mask]))
    return centres, means
