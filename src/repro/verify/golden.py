"""Golden regression gates: committed snapshots with tolerances.

Two families of golden files live in ``src/repro/verify/golden/``:

* ``steady-<network>.json`` — steady-state junction heads and link
  flows for every catalog network, checked to tight per-quantity
  tolerances (heads to 1e-4 m, flows to 1e-6 m^3/s — loose enough to
  survive BLAS/platform differences, tight enough to catch any real
  hydraulic change);
* ``accuracy-<network>.json`` — the Phase-I/Phase-II hamming score of a
  small fixed training/evaluation run, checked to an absolute band that
  flags pipeline regressions without pinning ML floating point exactly;
* ``accuracy-<network>-multi.json`` — a harder multi-leak run with
  coarse human subzones, recording *both* aggregation modes; the check
  additionally requires ``inference="crf"`` to strictly beat the
  paper's independent aggregation (the factor graph earns its place by
  suppressing false-report cliques and flipping the evidence-weighted
  member instead of the most uncertain one).

``repro verify`` checks them; ``repro verify --update-golden``
regenerates them after an *intentional* hydraulic or pipeline change
(see docs/testing.md for the update procedure).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..hydraulics import GGASolver
from ..networks import build_network

#: Head agreement bound for steady goldens (m).
HEAD_TOL = 1e-4
#: Flow agreement bound for steady goldens (m^3/s).
FLOW_TOL = 1e-6
#: Absolute hamming-score band for accuracy goldens.
ACCURACY_TOL = 0.05

#: Fixed configuration of the accuracy-golden pipeline run.  Changing any
#: of these invalidates committed accuracy goldens — regenerate them.
ACCURACY_CONFIG = {
    "classifier": "logistic",
    "iot_percent": 100.0,
    "seed": 0,
    "n_train": 120,
    "n_test": 30,
    "kind": "multi",
    "max_events": 2,
    "sources": "iot",
}

#: Fixed configuration of the multi-leak (two-mode) golden run.  The
#: coarse ``gamma`` makes human subzones span several junctions and lets
#: false reports form cliques — the regime where factor-graph
#: aggregation beats the paper's always-flip greedy tuning.
MULTI_ACCURACY_CONFIG = {
    "classifier": "logistic",
    "iot_percent": 100.0,
    "seed": 0,
    "n_train": 120,
    "n_test": 30,
    "kind": "multi",
    "max_events": 3,
    "elapsed_slots": 3,
    "gamma": 500.0,
    "sources": "all",
    "crf": {"pairwise_strength": 0.1, "clique_penalty_scale": 2.0},
}


def golden_dir() -> Path:
    """Directory holding the committed golden JSON files."""
    return Path(__file__).resolve().parent / "golden"


@dataclass(frozen=True)
class GoldenReport:
    """Outcome of one golden comparison.

    Attributes:
        name: golden identifier (``steady:<net>`` / ``accuracy:<net>``).
        max_abs_diff: worst absolute deviation from the snapshot.
        tolerance: allowed deviation.
        passed: within tolerance and structurally identical.
        detail: what was compared, or why the check failed outright.
    """

    name: str
    max_abs_diff: float
    tolerance: float
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.name:<18s} max diff {self.max_abs_diff:.3e} "
            f"(tol {self.tolerance:.1e})  ({self.detail})"
        )


# ----------------------------------------------------------------------
# steady-state goldens
# ----------------------------------------------------------------------
def _steady_path(network_name: str) -> Path:
    return golden_dir() / f"steady-{network_name}.json"


def _steady_snapshot(network_name: str, linear_solver: str = "auto") -> dict:
    network = build_network(network_name)
    solution = GGASolver(network, linear_solver=linear_solver).solve()
    return {
        "network": network_name,
        "node_head": {k: float(v) for k, v in solution.node_head.items()},
        "link_flow": {k: float(v) for k, v in solution.link_flow.items()},
    }


def update_steady_golden(network_name: str) -> Path:
    """Recompute and write the steady golden for one network."""
    path = _steady_path(network_name)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = _steady_snapshot(network_name)
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    return path


def _compare_mapping(
    golden: dict[str, float], current: dict[str, float]
) -> tuple[float, str | None]:
    """(worst deviation, structural-mismatch message or None)."""
    if set(golden) != set(current):
        missing = sorted(set(golden) - set(current))[:3]
        added = sorted(set(current) - set(golden))[:3]
        return float("inf"), f"key set changed (missing {missing}, added {added})"
    if not golden:
        return 0.0, None
    diffs = [abs(current[k] - golden[k]) for k in golden]
    return float(max(diffs)), None


def check_steady_golden(
    network_name: str,
    head_tol: float = HEAD_TOL,
    flow_tol: float = FLOW_TOL,
    linear_solver: str = "auto",
) -> GoldenReport:
    """Compare a fresh steady solve against the committed snapshot.

    The committed snapshot is always produced by the default (dense,
    below ``DENSE_SOLVE_LIMIT``) path; passing ``linear_solver="sparse"``
    re-solves through the sparse Schur core and holds it to the same
    snapshot and tolerances — the forced-sparse regression gate.
    """
    name = (
        f"steady:{network_name}"
        if linear_solver == "auto"
        else f"steady[{linear_solver}]:{network_name}"
    )
    path = _steady_path(network_name)
    if not path.exists():
        return GoldenReport(
            name=name,
            max_abs_diff=float("inf"),
            tolerance=head_tol,
            passed=False,
            detail=f"no golden at {path}; run `repro verify --update-golden`",
        )
    golden = json.loads(path.read_text())
    current = _steady_snapshot(network_name, linear_solver=linear_solver)
    head_diff, head_err = _compare_mapping(golden["node_head"], current["node_head"])
    flow_diff, flow_err = _compare_mapping(golden["link_flow"], current["link_flow"])
    structural = head_err or flow_err
    if structural:
        return GoldenReport(
            name=name,
            max_abs_diff=float("inf"),
            tolerance=head_tol,
            passed=False,
            detail=structural,
        )
    passed = head_diff <= head_tol and flow_diff <= flow_tol
    return GoldenReport(
        name=name,
        # Report in units of tolerance so head/flow share one number.
        max_abs_diff=max(head_diff, flow_diff),
        tolerance=max(head_tol, flow_tol),
        passed=passed,
        detail=(
            f"{len(golden['node_head'])} heads (diff {head_diff:.2e}, "
            f"tol {head_tol:.0e}), {len(golden['link_flow'])} flows "
            f"(diff {flow_diff:.2e}, tol {flow_tol:.0e})"
        ),
    )


# ----------------------------------------------------------------------
# Phase-I/Phase-II accuracy goldens
# ----------------------------------------------------------------------
def _accuracy_path(network_name: str) -> Path:
    return golden_dir() / f"accuracy-{network_name}.json"


def _accuracy_score(network_name: str) -> float:
    """Run the fixed small train/evaluate pipeline and return its score."""
    from ..core import AquaScale
    from ..datasets import generate_dataset

    config = ACCURACY_CONFIG
    network = build_network(network_name)
    model = AquaScale(
        network,
        iot_percent=config["iot_percent"],
        classifier=config["classifier"],
        seed=config["seed"],
    )
    model.train(
        n_train=config["n_train"],
        kind=config["kind"],
        max_events=config["max_events"],
    )
    test = generate_dataset(
        network,
        config["n_test"],
        kind=config["kind"],
        seed=config["seed"] + 1,
        max_events=config["max_events"],
    )
    return float(model.evaluate(test, sources=config["sources"]))


def update_accuracy_golden(network_name: str) -> Path:
    """Recompute and write the accuracy golden for one network."""
    path = _accuracy_path(network_name)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = {
        "network": network_name,
        "config": ACCURACY_CONFIG,
        "score": _accuracy_score(network_name),
    }
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    return path


def check_accuracy_golden(
    network_name: str, tolerance: float = ACCURACY_TOL
) -> GoldenReport:
    """Re-run the fixed pipeline and compare its score to the snapshot."""
    name = f"accuracy:{network_name}"
    path = _accuracy_path(network_name)
    if not path.exists():
        return GoldenReport(
            name=name,
            max_abs_diff=float("inf"),
            tolerance=tolerance,
            passed=False,
            detail=f"no golden at {path}; run `repro verify --update-golden`",
        )
    golden = json.loads(path.read_text())
    if golden.get("config") != ACCURACY_CONFIG:
        return GoldenReport(
            name=name,
            max_abs_diff=float("inf"),
            tolerance=tolerance,
            passed=False,
            detail="pipeline config changed; regenerate the accuracy golden",
        )
    score = _accuracy_score(network_name)
    diff = abs(score - golden["score"])
    return GoldenReport(
        name=name,
        max_abs_diff=float(diff),
        tolerance=tolerance,
        passed=bool(diff <= tolerance),
        detail=(
            f"hamming score {score:.4f} vs golden {golden['score']:.4f} "
            f"({ACCURACY_CONFIG['classifier']}, {ACCURACY_CONFIG['n_train']} train)"
        ),
    )


# ----------------------------------------------------------------------
# multi-leak two-mode accuracy goldens
# ----------------------------------------------------------------------
def _multi_accuracy_path(network_name: str) -> Path:
    return golden_dir() / f"accuracy-{network_name}-multi.json"


def _multi_accuracy_scores(network_name: str) -> dict[str, float]:
    """Run the fixed multi-leak pipeline in both aggregation modes."""
    from ..core import AquaScale
    from ..datasets import generate_dataset
    from ..inference import CRFConfig

    config = MULTI_ACCURACY_CONFIG
    network = build_network(network_name)
    model = AquaScale(
        network,
        iot_percent=config["iot_percent"],
        classifier=config["classifier"],
        seed=config["seed"],
        gamma=config["gamma"],
        elapsed_slots=config["elapsed_slots"],
        crf_config=CRFConfig(**config["crf"]),
    )
    model.train(
        n_train=config["n_train"],
        kind=config["kind"],
        max_events=config["max_events"],
    )
    test = generate_dataset(
        network,
        config["n_test"],
        kind=config["kind"],
        seed=config["seed"] + 1,
        elapsed_slots=config["elapsed_slots"],
        max_events=config["max_events"],
    )
    return {
        "independent": float(model.evaluate(test, sources=config["sources"])),
        "crf": float(
            model.evaluate(test, sources=config["sources"], inference="crf")
        ),
    }


def update_multi_accuracy_golden(network_name: str) -> Path:
    """Recompute and write the multi-leak golden for one network."""
    path = _multi_accuracy_path(network_name)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = {
        "network": network_name,
        "kind": "multi",
        "config": MULTI_ACCURACY_CONFIG,
        "scores": _multi_accuracy_scores(network_name),
    }
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    return path


def check_multi_accuracy_golden(
    network_name: str, tolerance: float = ACCURACY_TOL
) -> GoldenReport:
    """Re-run the multi-leak pipeline and compare both modes.

    Passes only when each mode's score sits within ``tolerance`` of its
    snapshot *and* the freshly computed CRF score strictly beats the
    independent one — the structural claim the factor graph makes.
    """
    name = f"accuracy-multi:{network_name}"
    path = _multi_accuracy_path(network_name)
    if not path.exists():
        return GoldenReport(
            name=name,
            max_abs_diff=float("inf"),
            tolerance=tolerance,
            passed=False,
            detail=f"no golden at {path}; run `repro verify --update-golden`",
        )
    golden = json.loads(path.read_text())
    if golden.get("config") != MULTI_ACCURACY_CONFIG:
        return GoldenReport(
            name=name,
            max_abs_diff=float("inf"),
            tolerance=tolerance,
            passed=False,
            detail="pipeline config changed; regenerate the multi-leak golden",
        )
    scores = _multi_accuracy_scores(network_name)
    diff = max(
        abs(scores[mode] - golden["scores"][mode]) for mode in ("independent", "crf")
    )
    crf_wins = scores["crf"] > scores["independent"]
    return GoldenReport(
        name=name,
        max_abs_diff=float(diff),
        tolerance=tolerance,
        passed=bool(diff <= tolerance and crf_wins),
        detail=(
            f"independent {scores['independent']:.4f} vs crf {scores['crf']:.4f}"
            f" (golden {golden['scores']['independent']:.4f}/"
            f"{golden['scores']['crf']:.4f}; crf must win"
            f"{'' if crf_wins else ' — IT DID NOT'})"
        ),
    )


__all__ = [
    "ACCURACY_CONFIG",
    "ACCURACY_TOL",
    "FLOW_TOL",
    "GoldenReport",
    "HEAD_TOL",
    "MULTI_ACCURACY_CONFIG",
    "check_accuracy_golden",
    "check_multi_accuracy_golden",
    "check_steady_golden",
    "golden_dir",
    "update_accuracy_golden",
    "update_multi_accuracy_golden",
    "update_steady_golden",
]
