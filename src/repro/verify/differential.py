"""Differential oracles: every fast path must agree with its reference.

PR 2 added four fast paths whose correctness is an *equivalence* claim:

* array-indexed demands/emitters  ≡  name-keyed dicts (bit-identical);
* warm-started Newton             ≡  cold starts (within solver accuracy);
* ``workers=N`` dataset engine    ≡  serial generation (bit-identical);
* ``n_jobs=N`` threaded training  ≡  serial fits (bit-identical).

The shared-binning training engine added three more:

* flattened tree-kernel inference ≡  tree-by-tree recursion
  (bit-identical);
* ``backend="process"`` training  ≡  serial fits (bit-identical);
* hist (pre-binned) training      ≈  exact splits (accuracy within
  tolerance — binning is a controlled approximation, not an identity).

The factor-graph aggregation added one more:

* degenerate CRF (pairwise weight 0, no cliques)  ≡  independent
  aggregation (bit-identical — zero messages pass the unary posterior
  through untouched).

The sparse Schur solver core added one more:

* forced-sparse GGA solves  ≈  forced-dense solves (heads and flows
  within 1e-8 — the cached-factorization/PCG policy must be invisible
  at solver accuracy on every catalog network).

The batched multi-scenario Newton kernel added one more:

* ``BatchedGGASolver.solve_batch``  ≡  per-lane sequential solves
  (bit-identical heads/flows/iteration counts on dense networks; within
  1e-8 on sparse networks, where the shared Schur cache's reuse history
  depends on solve order), including a chunked-lane replay of the same
  stack.

The robustness campaign added one more:

* ``CampaignRunner.run(workers=N)``  ≡  serial cell evaluation
  (bit-identical reports — cells are SeedSequence-pure and the report
  carries no wall-clock content).

Each oracle here runs both sides on a deterministic workload and reports
the worst disagreement.  ``repro verify`` runs them per network; the
acceptance bar is bit-identical where the claim is bit-identity and
within-tolerance where the claim is a shared fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hydraulics import GGASolver, WaterNetwork

#: Warm and cold solves converge to the same fixed point only to solver
#: accuracy; this is the agreement bound (heads in m, flows in m^3/s).
WARM_COLD_TOL = 1e-5

#: Sparse and dense linear solvers must follow the same Newton
#: trajectory to floating-point noise; 1e-8 (heads in m, flows in
#: m^3/s) is orders of magnitude above what either path accumulates.
SPARSE_DENSE_TOL = 1e-8


@dataclass(frozen=True)
class DiffReport:
    """Agreement between a fast path and its reference path.

    Attributes:
        name: oracle identifier.
        max_abs_diff: worst absolute disagreement observed.
        tolerance: allowed disagreement (0 demands bit-identity).
        bit_identical: every compared array was exactly equal.
        passed: bit-identical, or within tolerance.
        detail: workload description.
    """

    name: str
    max_abs_diff: float
    tolerance: float
    bit_identical: bool
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        agreement = (
            "bit-identical"
            if self.bit_identical
            else f"max diff {self.max_abs_diff:.3e} (tol {self.tolerance:.1e})"
        )
        tail = f"  ({self.detail})" if self.detail else ""
        return f"[{status}] {self.name:<18s} {agreement}{tail}"


def _compare(name: str, pairs, tolerance: float, detail: str = "") -> DiffReport:
    """Reduce (reference, candidate) array pairs to one DiffReport."""
    worst = 0.0
    identical = True
    for reference, candidate in pairs:
        reference = np.asarray(reference)
        candidate = np.asarray(candidate)
        if reference.shape != candidate.shape:
            return DiffReport(
                name=name,
                max_abs_diff=float("inf"),
                tolerance=tolerance,
                bit_identical=False,
                passed=False,
                detail=f"shape mismatch {reference.shape} vs {candidate.shape}",
            )
        if not np.array_equal(reference, candidate):
            identical = False
            worst = max(worst, float(np.max(np.abs(reference - candidate))))
    return DiffReport(
        name=name,
        max_abs_diff=worst,
        tolerance=tolerance,
        bit_identical=identical,
        passed=identical or worst <= tolerance,
        detail=detail,
    )


def _leak_emitters(
    solver: GGASolver, seed: int, n_leaks: int = 2
) -> dict[str, tuple[float, float]]:
    """A deterministic small leak set for differential workloads."""
    rng = np.random.default_rng(seed)
    names = solver.junction_names
    chosen = rng.choice(len(names), size=min(n_leaks, len(names)), replace=False)
    return {
        names[int(i)]: (float(rng.uniform(5e-4, 3e-3)), 0.5) for i in chosen
    }


# ----------------------------------------------------------------------
def diff_array_vs_dict(network: WaterNetwork, seed: int = 0) -> DiffReport:
    """Array-indexed demand/emitter fast path vs name-keyed dicts."""
    solver = GGASolver(network)
    names = solver.junction_names
    rng = np.random.default_rng(seed)
    multipliers = rng.uniform(0.7, 1.3, size=len(names))
    demand_array = np.array(
        [network.nodes[n].base_demand for n in names]
    ) * multipliers
    demand_dict = dict(zip(names, demand_array.tolist()))
    emitter_dict = _leak_emitters(solver, seed)
    ec = np.zeros(len(names))
    beta = np.full(len(names), 0.5)
    index = {n: i for i, n in enumerate(names)}
    for name, (coefficient, exponent) in emitter_dict.items():
        ec[index[name]] = coefficient
        beta[index[name]] = exponent
    slow = solver.solve(demands=demand_dict, emitters=emitter_dict)
    fast = solver.solve(demands=demand_array, emitters=(ec, beta))
    return _compare(
        "array_vs_dict",
        [
            (slow.junction_heads, fast.junction_heads),
            (slow.junction_leaks, fast.junction_leaks),
            (slow.link_flows, fast.link_flows),
        ],
        tolerance=0.0,
        detail=f"{network.name}, {len(emitter_dict)} leaks",
    )


def diff_warm_vs_cold(
    network: WaterNetwork,
    seed: int = 0,
    n_scenarios: int = 3,
    tolerance: float = WARM_COLD_TOL,
) -> DiffReport:
    """Warm-started Newton vs cold starts over leak perturbations."""
    solver = GGASolver(network)
    baseline = solver.solve()
    pairs = []
    for k in range(n_scenarios):
        emitters = _leak_emitters(solver, seed + 17 * k)
        cold = solver.solve(emitters=emitters)
        warm = solver.solve(emitters=emitters, warm_start=baseline)
        pairs.append((cold.junction_heads, warm.junction_heads))
        pairs.append((cold.link_flows, warm.link_flows))
    return _compare(
        "warm_vs_cold",
        pairs,
        tolerance=tolerance,
        detail=f"{network.name}, {n_scenarios} leak scenarios",
    )


def diff_sparse_vs_dense(
    network: WaterNetwork,
    seed: int = 0,
    n_scenarios: int = 3,
    tolerance: float = SPARSE_DENSE_TOL,
) -> DiffReport:
    """Forced-sparse GGA solves vs forced-dense, cold and warm-started.

    The sparse Schur core reuses cached factorizations (direct triangular
    solves below :data:`~repro.hydraulics.sparse.TRISOLVE_DRIFT_LIMIT`
    drift, preconditioned CG above it), so its steps are deliberately
    inexact at the 1e-9 level; this oracle checks the resulting heads and
    flows stay within 1e-8 of the dense LAPACK path on the baseline, on
    leak scenarios, and through warm starts — the full reuse policy, not
    just one cold factorization.
    """
    dense = GGASolver(network, linear_solver="dense")
    sparse = GGASolver(network, linear_solver="sparse")
    dense_base = dense.solve()
    sparse_base = sparse.solve()
    pairs = [
        (dense_base.junction_heads, sparse_base.junction_heads),
        (dense_base.link_flows, sparse_base.link_flows),
    ]
    for k in range(n_scenarios):
        emitters = _leak_emitters(dense, seed + 31 * k)
        d = dense.solve(emitters=emitters, warm_start=dense_base)
        s = sparse.solve(emitters=emitters, warm_start=sparse_base)
        pairs.append((d.junction_heads, s.junction_heads))
        pairs.append((d.link_flows, s.link_flows))
    stats = sparse.schur_stats
    return _compare(
        "sparse_vs_dense",
        pairs,
        tolerance=tolerance,
        detail=(
            f"{network.name}, baseline + {n_scenarios} leak scenarios "
            f"({stats.factorizations} factorizations, "
            f"{stats.reuse_solves} reuse, {stats.pcg_solves} pcg)"
        ),
    )


#: Lane chunking changes which lanes share a batch, which on sparse
#: networks perturbs the Schur cache's factorization-reuse history (the
#: dense per-lane LAPACK path is chunking-invariant and stays
#: bit-identical).  Measured worst case on city10k is ~1.4e-14; pinned
#: with the same headroom policy as :data:`SPARSE_DENSE_TOL`.
BATCHED_SEQUENTIAL_TOL = 1e-8


def diff_batched_vs_sequential(
    network: WaterNetwork,
    seed: int = 0,
    n_lanes: int = 6,
) -> DiffReport:
    """``BatchedGGASolver.solve_batch`` vs per-lane sequential solves.

    The batched engine's dense path replays the sequential solver's
    arithmetic element-for-element (ranked scatters reproduce each
    ``np.add.at`` bucket accumulation order; pump curves go through the
    scalar coefficient helper), so on dense networks the claim is
    bit-identity — heads, flows *and* iteration counts.  Sparse
    networks route each lane through the shared ``CachedSchurSolver``,
    whose factorization-reuse history depends on solve order, so the
    claim relaxes to :data:`BATCHED_SEQUENTIAL_TOL`.  A second pass
    re-solves the same stack split into two lane chunks — the dataset
    engine's chunking — and holds it to the same bound.
    """
    from ..hydraulics import BatchedGGASolver, DENSE_SOLVE_LIMIT

    solver = GGASolver(network)
    names = solver.junction_names
    rng = np.random.default_rng(seed)
    base = np.array([network.nodes[name].base_demand for name in names])
    demand_stack = base * rng.uniform(0.7, 1.3, size=(n_lanes, len(names)))
    emitter_rows = [
        _leak_emitters(solver, seed + 7 * k, n_leaks=k % 3)
        for k in range(n_lanes)
    ]
    baseline = solver.solve()
    warm_rows = [baseline if k % 2 else None for k in range(n_lanes)]
    reference = [
        solver.solve(
            demands=demand_stack[k],
            emitters=emitter_rows[k],
            warm_start=warm_rows[k],
        )
        for k in range(n_lanes)
    ]

    def batch_solve(lo: int, hi: int):
        batched = BatchedGGASolver(network)
        result = batched.solve_batch(
            demands=demand_stack[lo:hi],
            emitters=emitter_rows[lo:hi],
            warm_starts=warm_rows[lo:hi],
            package=False,
        )
        error = result.first_error()
        if error is not None:
            raise error
        return result

    full = batch_solve(0, n_lanes)
    half = n_lanes // 2
    chunks = [batch_solve(0, half), batch_solve(half, n_lanes)]
    chunk_heads = np.vstack([chunk.heads for chunk in chunks])
    chunk_flows = np.vstack([chunk.flows for chunk in chunks])
    pairs = []
    for k in range(n_lanes):
        pairs.append((reference[k].junction_heads, full.heads[k]))
        pairs.append((reference[k].link_flows, full.flows[k]))
        pairs.append((reference[k].junction_heads, chunk_heads[k]))
        pairs.append((reference[k].link_flows, chunk_flows[k]))
    dense = len(names) <= DENSE_SOLVE_LIMIT
    if dense:
        pairs.append(
            (
                np.array([s.iterations for s in reference]),
                full.iterations,
            )
        )
    return _compare(
        "batched_vs_serial",
        pairs,
        tolerance=0.0 if dense else BATCHED_SEQUENTIAL_TOL,
        detail=(
            f"{network.name}, {n_lanes} lanes (mixed leaks/warm starts) "
            f"+ 2-chunk replay, {'dense' if dense else 'sparse'} path"
        ),
    )


def diff_workers_dataset(
    network: WaterNetwork,
    seed: int = 0,
    n_samples: int = 16,
    workers: int = 4,
) -> DiffReport:
    """``generate_dataset(workers=N)`` vs the serial engine."""
    from ..datasets import generate_dataset

    serial = generate_dataset(network, n_samples, kind="multi", seed=seed)
    pooled = generate_dataset(
        network, n_samples, kind="multi", seed=seed, workers=workers
    )
    return _compare(
        "workers_vs_serial",
        [(serial.X_candidates, pooled.X_candidates), (serial.Y, pooled.Y)],
        tolerance=0.0,
        detail=f"{network.name}, {n_samples} scenarios, workers={workers}",
    )


def diff_njobs_training(
    network: WaterNetwork,
    seed: int = 0,
    n_samples: int = 40,
    n_jobs: int = 4,
) -> DiffReport:
    """Threaded per-column training vs serial fits on one dataset."""
    from ..datasets import generate_dataset
    from ..ml import LogisticRegression, MultiOutputClassifier

    dataset = generate_dataset(network, n_samples, kind="multi", seed=seed)
    X = dataset.X_candidates

    def fit(jobs: int) -> np.ndarray:
        model = MultiOutputClassifier(
            LogisticRegression(),
            negative_ratio=3.0,
            random_state=seed,
            n_jobs=jobs,
        )
        model.fit(X, dataset.Y)
        return model.predict_proba(X)

    return _compare(
        "njobs_vs_serial",
        [(fit(1), fit(n_jobs))],
        tolerance=0.0,
        detail=f"{network.name}, {n_samples} samples, n_jobs={n_jobs}",
    )


def _busiest_column(Y: np.ndarray) -> np.ndarray:
    """The label column with the most positives (best-conditioned fit)."""
    return Y[:, int(np.argmax(Y.sum(axis=0)))]


def diff_flattened_vs_recursive(
    network: WaterNetwork, seed: int = 0, n_samples: int = 24
) -> DiffReport:
    """Flattened tree-kernel inference vs the tree-by-tree reference.

    The flat kernel accumulates per-tree leaf distributions in the same
    order as the recursive loop, so the claim is bit-identity — for the
    random forest (both splitters) and the boosting raw scores.
    """
    from ..datasets import generate_dataset
    from ..ml import GradientBoostingClassifier, RandomForestClassifier

    dataset = generate_dataset(network, n_samples, kind="multi", seed=seed)
    X = dataset.X_candidates
    y = _busiest_column(dataset.Y)
    pairs = []
    for splitter in ("exact", "hist"):
        rf = RandomForestClassifier(
            n_estimators=8, max_depth=6, splitter=splitter, random_state=seed
        ).fit(X, y)
        pairs.append((rf._predict_proba_recursive(X), rf.predict_proba(X)))
    gb = GradientBoostingClassifier(
        n_estimators=8, max_depth=3, random_state=seed
    ).fit(X, y)
    pairs.append((gb._decision_function_recursive(X), gb.decision_function(X)))
    return _compare(
        "flat_vs_recursive",
        pairs,
        tolerance=0.0,
        detail=f"{network.name}, {n_samples} samples, RF(exact,hist)+GB",
    )


def diff_process_vs_serial(
    network: WaterNetwork,
    seed: int = 0,
    n_samples: int = 24,
    n_jobs: int = 2,
) -> DiffReport:
    """``backend="process"`` per-column training vs serial fits.

    Column models are seeded from per-column ``SeedSequence`` streams, so
    the fitted ensemble must be bit-identical no matter where the column
    ran — this oracle pushes tree training through pickled round-trips.
    """
    from ..datasets import generate_dataset
    from ..ml import MultiOutputClassifier, RandomForestClassifier

    dataset = generate_dataset(network, n_samples, kind="multi", seed=seed)
    X = dataset.X_candidates

    def fit(jobs: int | None, backend: str) -> np.ndarray:
        model = MultiOutputClassifier(
            RandomForestClassifier(
                n_estimators=4, max_depth=5, splitter="hist", random_state=seed
            ),
            negative_ratio=3.0,
            random_state=seed,
            n_jobs=jobs,
            backend=backend,
        )
        model.fit(X, dataset.Y)
        return model.predict_proba(X)

    return _compare(
        "process_vs_serial",
        [(fit(None, "thread"), fit(n_jobs, "process"))],
        tolerance=0.0,
        detail=f"{network.name}, {n_samples} samples, n_jobs={n_jobs}",
    )


#: Binned quantile splits approximate exact splits; train-set accuracy of
#: the two forests may differ by at most this much.
BINNED_ACCURACY_TOL = 0.05


def diff_binned_vs_exact(
    network: WaterNetwork,
    seed: int = 0,
    n_samples: int = 24,
    tolerance: float = BINNED_ACCURACY_TOL,
) -> DiffReport:
    """Shared-binning hist training vs exact splits, as an accuracy claim.

    Binning is a lossy (but controlled) approximation: thresholds snap to
    quantile edges, so fitted trees differ.  The oracle checks the claim
    that matters — hist forests localize as well as exact ones — by
    comparing mean hamming scores on the training scenarios.
    """
    from ..datasets import generate_dataset
    from ..ml import (
        MultiOutputClassifier,
        RandomForestClassifier,
        mean_hamming_score,
    )

    dataset = generate_dataset(network, n_samples, kind="multi", seed=seed)
    X = dataset.X_candidates

    def score(splitter: str) -> float:
        model = MultiOutputClassifier(
            RandomForestClassifier(
                n_estimators=8, max_depth=6, splitter=splitter, random_state=seed
            ),
            negative_ratio=3.0,
            random_state=seed,
        )
        model.fit(X, dataset.Y)
        predictions = (model.predict_proba(X) > 0.5).astype(np.int64)
        return mean_hamming_score(dataset.Y, predictions)

    exact_score, hist_score = score("exact"), score("hist")
    return _compare(
        "binned_vs_exact",
        [(np.array([exact_score]), np.array([hist_score]))],
        tolerance=tolerance,
        detail=(
            f"{network.name}, {n_samples} samples, "
            f"exact={exact_score:.4f} hist={hist_score:.4f}"
        ),
    )


def diff_crf_vs_independent(
    network: WaterNetwork,
    seed: int = 0,
    n_samples: int = 16,
) -> DiffReport:
    """Degenerate-config CRF aggregation vs independent aggregation.

    With ``pairwise_strength=0`` and no human-report cliques every
    max-product message is exactly zero, and the BP kernel passes rows
    with zero message delta through untouched — so the factor-graph path
    must reproduce independent aggregation *bit-identically*, including
    through the Bayes weather-fusion stage.  Any drift here means the
    message kernels leak numerical noise into the no-evidence case.
    """
    from ..core import AquaScale, ObservationFactory
    from ..datasets import generate_dataset
    from ..inference import CRFConfig
    from ..ml import RandomForestClassifier

    dataset = generate_dataset(network, n_samples, kind="multi", seed=seed)
    model = AquaScale(
        network,
        iot_percent=100.0,
        classifier=RandomForestClassifier(
            n_estimators=4, max_depth=4, random_state=seed
        ),
        seed=seed,
        crf_config=CRFConfig(pairwise_strength=0.0),
    )
    model.train(dataset=dataset)
    rows = dataset.features_for(model.sensors)
    weather = [
        ObservationFactory(network, seed=seed).weather_for(scenario)
        for scenario in dataset.scenarios
    ]
    independent = model.localize_batch(rows, weather=weather)
    crf = model.localize_batch(rows, weather=weather, inference="crf")
    return _compare(
        "crf_vs_independent",
        [
            (reference.probabilities, candidate.probabilities)
            for reference, candidate in zip(independent, crf)
        ],
        tolerance=0.0,
        detail=f"{network.name}, {n_samples} samples, pairwise=0, no cliques",
    )


def diff_serve_vs_direct(
    network: WaterNetwork,
    seed: int = 0,
    n_samples: int = 16,
    n_requests: int = 12,
) -> DiffReport:
    """Responses through the serving micro-batcher vs direct ``localize``.

    The service JSON-encodes floats with shortest-repr (exact round-trip)
    and the flattened tree kernel scores each row independently of its
    batch, so the claim is bit-identity: a posterior served through TCP +
    admission + coalescing must equal the in-process single-row call.
    Both aggregation modes are checked — BP freezes each row's messages
    at its own convergence, so ``inference="crf"`` results are also
    independent of micro-batch composition.  The workload pipelines
    every request before reading any reply, so the micro-batcher
    genuinely coalesces (the detail line reports the mean served batch
    size).
    """
    from ..core import AquaScale
    from ..datasets import generate_dataset
    from ..ml import RandomForestClassifier
    from ..serve import ServeClient, ServeConfig, start_in_background

    dataset = generate_dataset(network, n_samples, kind="multi", seed=seed)
    model = AquaScale(
        network,
        iot_percent=100.0,
        classifier=RandomForestClassifier(
            n_estimators=4, max_depth=4, random_state=seed
        ),
        seed=seed,
    )
    model.train(dataset=dataset)
    rows = dataset.features_for(model.sensors)[:n_requests]
    direct = [model.localize(row) for row in rows]
    direct_crf = [model.localize(row, inference="crf") for row in rows]
    config = ServeConfig(max_batch_size=4, max_wait_ms=25.0, inference_workers=1)
    with start_in_background(model, config=config) as handle:
        with ServeClient(*handle.address) as client:
            served = client.localize_many(rows)
            served_crf = client.localize_many(rows, inference="crf")
    mean_batch = float(np.mean([reply.batch_size for reply in served]))
    report = _compare(
        "serve_vs_direct",
        [
            (reference.probabilities, reply.probabilities)
            for reference, reply in zip(direct + direct_crf, served + served_crf)
        ],
        tolerance=0.0,
        detail=(
            f"{network.name}, {len(rows)} requests x 2 modes, "
            f"mean batch {mean_batch:.1f}"
        ),
    )
    sets_agree = all(
        sorted(reference.leak_nodes) == list(reply.leak_nodes)
        for reference, reply in zip(direct + direct_crf, served + served_crf)
    )
    if not sets_agree:
        from dataclasses import replace

        report = replace(
            report, passed=False, detail=report.detail + ", leak sets diverge"
        )
    return report


def diff_cluster_vs_direct(
    network: WaterNetwork,
    seed: int = 0,
    n_samples: int = 16,
    n_requests: int = 12,
) -> DiffReport:
    """Responses through the multi-worker cluster vs direct ``localize``.

    Extends the :func:`diff_serve_vs_direct` claim across the whole
    scale-out stack: the model crosses a ``pickle`` boundary into shared
    memory, each worker process rebuilds its arrays as zero-copy views
    over the segment, and requests travel client → router (raw byte
    relay) → worker.  Tree kernels score rows independently of batch
    composition, so posteriors must still be bit-identical to the
    in-process call in both aggregation modes.
    """
    from ..core import AquaScale
    from ..datasets import generate_dataset
    from ..ml import RandomForestClassifier
    from ..serve import ServeClient, ServeConfig, start_cluster_in_background

    dataset = generate_dataset(network, n_samples, kind="multi", seed=seed)
    model = AquaScale(
        network,
        iot_percent=100.0,
        classifier=RandomForestClassifier(
            n_estimators=4, max_depth=4, random_state=seed
        ),
        seed=seed,
    )
    model.train(dataset=dataset)
    rows = dataset.features_for(model.sensors)[:n_requests]
    direct = [model.localize(row) for row in rows]
    direct_crf = [model.localize(row, inference="crf") for row in rows]
    config = ServeConfig(max_batch_size=4, max_wait_ms=25.0, inference_workers=1)
    with start_cluster_in_background(model, n_workers=2, config=config) as handle:
        with ServeClient(*handle.address) as client:
            served = client.localize_many(rows)
            served_crf = client.localize_many(rows, inference="crf")
    return _compare(
        "cluster_vs_direct",
        [
            (reference.probabilities, reply.probabilities)
            for reference, reply in zip(direct + direct_crf, served + served_crf)
        ],
        tolerance=0.0,
        detail=(
            f"{network.name}, {len(rows)} requests x 2 modes, "
            f"2 shared-memory workers"
        ),
    )


def diff_campaign_workers(network: WaterNetwork, seed: int = 0) -> DiffReport:
    """Robustness campaign through a process pool vs serial execution.

    Campaign cells are SeedSequence-pure (cell ``i`` draws from child
    ``i`` of the campaign seed; each adaptive batch rebuilds its
    substreams by absolute draw index), so fanning cells across worker
    processes must not change a single bit of the report.  The tiny
    config uses ``batch_draws < max_draws`` deliberately: the claim
    covers the batch-boundary substream rebuild, not just one-shot
    cells.  The serialized reports must also be byte-equal — wall-clock
    and worker counts are structurally excluded from the artifact.
    """
    from ..robustness import AxisSpec, CampaignRunner, quick_config, train_campaign_model

    config = quick_config(
        axes=(
            AxisSpec("demand_sigma", (0.1,)),
            AxisSpec("sensor_dropout", (0.25,)),
            AxisSpec("leak_count", (1.0,)),
        ),
        n_train=12,
        min_draws=4,
        max_draws=4,
        batch_draws=2,
    )
    profile = train_campaign_model(network, config, seed=seed)
    serial = CampaignRunner(
        network, profile, config=config, seed=seed, network_name=network.name
    ).run(workers=1)
    pooled = CampaignRunner(
        network, profile, config=config, seed=seed, network_name=network.name
    ).run(workers=2)
    report = _compare(
        "campaign_workers",
        [(np.asarray(serial.grid()), np.asarray(pooled.grid()))],
        tolerance=0.0,
        detail=(
            f"{network.name}, {len(serial.cells())} cells x 4 draws, "
            f"2 batches/cell, workers=2 vs serial"
        ),
    )
    if serial.to_json() != pooled.to_json():
        from dataclasses import replace

        report = replace(
            report,
            passed=False,
            bit_identical=False,
            detail=report.detail + ", serialized reports diverge",
        )
    return report


def run_differential_oracles(
    network: WaterNetwork,
    seed: int = 0,
    quick: bool = False,
    workers: int = 4,
) -> list[DiffReport]:
    """All thirteen differential oracles on one network.

    Quick mode trims the workload (fewer scenarios, 2 workers) so the
    catalog sweep stays CI-sized; the claims checked are identical.
    """
    n_samples = 8 if quick else 24
    n_train = 24 if quick else 60
    pool = 2 if quick else workers
    return [
        diff_array_vs_dict(network, seed=seed),
        diff_warm_vs_cold(network, seed=seed, n_scenarios=2 if quick else 5),
        diff_sparse_vs_dense(network, seed=seed, n_scenarios=2 if quick else 4),
        diff_batched_vs_sequential(network, seed=seed, n_lanes=4 if quick else 8),
        diff_workers_dataset(network, seed=seed, n_samples=n_samples, workers=pool),
        diff_njobs_training(network, seed=seed, n_samples=n_train, n_jobs=pool),
        diff_flattened_vs_recursive(network, seed=seed, n_samples=n_samples),
        diff_process_vs_serial(network, seed=seed, n_samples=n_samples, n_jobs=pool),
        diff_binned_vs_exact(network, seed=seed, n_samples=n_samples),
        diff_crf_vs_independent(network, seed=seed, n_samples=n_samples),
        diff_serve_vs_direct(
            network, seed=seed, n_samples=n_samples, n_requests=8 if quick else 12
        ),
        diff_cluster_vs_direct(
            network, seed=seed, n_samples=n_samples, n_requests=8 if quick else 12
        ),
        diff_campaign_workers(network, seed=seed),
    ]
